//! A tour of the paper's two elevation-profile representations
//! (Figs. 5–7): discretization, text encoding, n-gram vocabulary, and
//! the colored line-graph image, on a single real generated activity.
//!
//! ```sh
//! cargo run --release --example representation_tour
//! ```

use elevation_privacy::attack::defense::Defense;
use imgrep::{render, ImageConfig};
use routegen::AthleteSimulator;
use terrain::{CityId, SyntheticTerrain};
use textrep::{Discretizer, FeatureSelection, TextPipeline, ValueCodebook, Vocabulary};

fn main() {
    // One activity from a simulated athlete in San Francisco.
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(3), 5);
    let activity = sim.generate_one(CityId::SanFrancisco);
    let profile = activity.elevation_profile();
    println!(
        "activity: {} GPS points, elevation {:.1}–{:.1} m",
        profile.len(),
        profile.iter().copied().fold(f64::INFINITY, f64::min),
        profile.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );

    // The GPX the fitness app would export.
    let gpx = activity.gpx.to_xml();
    println!("GPX export: {} bytes, starts with {:?}…\n", gpx.len(), &gpx[..45]);

    // — Text-like representation (Fig. 5) —
    let discretizer = Discretizer::Floor;
    let discrete = discretizer.apply(&profile);
    let codebook = ValueCodebook::fit([discrete.as_slice()]);
    println!("① discretization: {} values → {} unique", discrete.len(), codebook.unique_values());
    println!("② word size: w = ⌈log₂₆ {}⌉ = {}", codebook.unique_values(), codebook.word_size());
    let encoded = codebook.encode_signal(&discrete);
    println!("③ text encoding: {:?}…", &encoded[..30.min(encoded.len())]);
    let vocab = Vocabulary::build(std::slice::from_ref(&encoded), codebook.word_size(), 3);
    println!("④ vocabulary: {} unique 1–3-grams (Fig. 6 windows)", vocab.len());

    let pipeline = TextPipeline::fit(
        discretizer,
        8,
        FeatureSelection::keep_all(),
        std::slice::from_ref(&profile),
    );
    let features = pipeline.transform(&profile);
    let nonzero = features.iter().filter(|&&v| v > 0.0).count();
    println!("   bag-of-words: {} features, {} nonzero, sum = 1\n", features.len(), nonzero);

    // — Image-like representation (Fig. 7 input) —
    let img = render(&profile, &ImageConfig::default());
    println!("image: 3×32×32, band {} colour, {:.0}% pixels lit", img.band, img.coverage() * 100.0);
    // ASCII rendering of the line graph.
    for y in 0..img.height {
        let mut line = String::new();
        for x in 0..img.width {
            let p = img.pixel(x, y);
            line.push(if p.r > 0.0 || p.g > 0.0 || p.b > 0.0 { '█' } else { '·' });
        }
        println!("  {line}");
    }

    // What the defenses would share instead.
    println!("\nsummary-only sharing (the paper's future-work defense):");
    let stats = Defense::SummaryOnly { bins: 4 }.apply(&profile);
    for (i, pair) in stats.chunks(2).enumerate() {
        println!("  segment {i}: ascent {:.1} m, descent {:.1} m", pair[0], pair[1]);
    }
}
