//! TM-3: identifying the *city* of an elevation profile with no prior
//! knowledge of the target.
//!
//! ```sh
//! cargo run --release --example city_profiling
//! ```
//!
//! The adversary profiles city elevations from public sources — here,
//! by mining training segments per city through the Fig. 4 pipeline —
//! then classifies a stranger's shared elevation profile among the ten
//! paper cities.

use datasets::{city_level, split};
use elevation_privacy::attack::text::{evaluate_text, TextAttackConfig, TextModel};
use terrain::CityId;
use textrep::Discretizer;

fn main() {
    // Mine a scaled-down city-level dataset (Table II shape).
    let counts: Vec<(CityId, usize)> = city_level::TABLE_II
        .iter()
        .map(|&(c, n)| (c, (n / 12).max(10)))
        .collect();
    let ds = city_level::build_with_counts(42, &counts);
    println!("mined {} segments across {} cities", ds.len(), ds.n_classes());

    // The paper's balanced protocol: top-C classes, downsampled.
    let keep: Vec<u32> = ds.classes_by_size().into_iter().take(10).collect();
    let filtered = ds.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let balanced = split::balanced_downsample(&filtered, s, 1);
    println!("balanced to {s} samples per city\n");

    // Evaluate the three text-side classifiers with 5-fold CV.
    let cfg = TextAttackConfig { folds: 5, mlp_epochs: 40, ..Default::default() };
    println!("{:<6} {:>8} {:>8} {:>8}", "model", "A", "recall", "F1");
    for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
        let o = evaluate_text(&balanced, Discretizer::mined(), model, &cfg).outcome();
        println!(
            "{:<6} {:>7.1}% {:>7.1}% {:>7.1}%",
            model.to_string(),
            o.ovr_accuracy * 100.0,
            o.recall * 100.0,
            o.f1 * 100.0
        );
    }
    println!();
    println!("cities with distinct elevation signatures (Miami vs Colorado Springs)");
    println!("are trivially separable; the confusion concentrates among coastal");
    println!("cities — exactly the paper's TM-3 finding.");
}
