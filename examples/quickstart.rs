//! Quickstart: the elevation-profile location-inference attack in ~40
//! lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small user-specific dataset (a simulated athlete's workout
//! archive), fits the TM-1 text attacker, and deanonymizes elevation
//! profiles the model has never seen.

use datasets::user_specific;
use elevation_privacy::attack::attacker::TextAttacker;
use elevation_privacy::attack::text::{TextAttackConfig, TextModel};
use terrain::CityId;
use textrep::Discretizer;

fn main() {
    // 1. The adversary's prior: the target's workout history.
    //    (Scaled-down Table I counts so the example runs in seconds.)
    let (history, mut athlete) = user_specific::build_with_simulator(
        7,
        &[
            (CityId::WashingtonDc, 60),
            (CityId::Orlando, 40),
            (CityId::NewYorkCity, 25),
            (CityId::SanDiego, 10),
        ],
    );
    println!(
        "adversary's corpus: {} activities across {} regions (overlap {:.0}%)",
        history.len(),
        history.n_classes(),
        history.mean_overlap_ratio() * 100.0
    );

    // 2. Fit the TM-1 attacker (text-like representation + MLP).
    let mut attacker = TextAttacker::fit(
        &history,
        Discretizer::Floor,
        TextModel::Mlp,
        &TextAttackConfig { mlp_epochs: 40, ..Default::default() },
    );

    // 3. The target keeps training and shares new workouts: map hidden,
    //    elevation public. The simulator continues the same athlete's
    //    habits (anchors, favourite routes) beyond the training archive.
    let mut correct = 0;
    let probes = 10;
    for i in 0..probes {
        let metro = [CityId::WashingtonDc, CityId::Orlando][i % 2];
        let activity = athlete.generate_one(metro);
        let guess = attacker.predict_name(&activity.elevation_profile()).to_owned();
        let hit = guess == metro.name();
        correct += hit as u32;
        println!("shared profile from {:>13} → predicted {guess:>13} {}", metro.name(),
            if hit { "✓" } else { "✗" });
    }
    println!("\n{correct}/{probes} fresh activities located from elevation alone.");
    println!("Hiding the map is not enough — this is the paper's cautionary tale.");
}
