//! Evaluating the paper's future-work defenses: how much attack
//! accuracy do coarsening, Laplace noise, and summary-only sharing
//! remove, and what utility (roughness information) survives?
//!
//! ```sh
//! cargo run --release --example defense_evaluation
//! ```

use datasets::{city_level, split};
use elevation_privacy::attack::defense::Defense;
use elevation_privacy::attack::text::{evaluate_text, TextAttackConfig, TextModel};
use terrain::CityId;
use textrep::Discretizer;

fn main() {
    let counts: Vec<(CityId, usize)> = city_level::TABLE_II
        .iter()
        .take(5)
        .map(|&(c, n)| (c, (n / 15).max(15)))
        .collect();
    let ds = city_level::build_with_counts(11, &counts);
    let keep: Vec<u32> = ds.classes_by_size().into_iter().take(5).collect();
    let filtered = ds.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().unwrap();
    let balanced = split::balanced_downsample(&filtered, s, 2);
    println!(
        "TM-3 victim corpus: {} profiles, {} cities, {} per class\n",
        balanced.len(),
        balanced.n_classes(),
        s
    );

    let cfg = TextAttackConfig { folds: 5, mlp_epochs: 40, ..Default::default() };
    let attack = |ds: &datasets::Dataset| {
        evaluate_text(ds, Discretizer::mined(), TextModel::Mlp, &cfg)
            .outcome()
            .accuracy
    };

    let baseline = attack(&balanced);
    println!("{:<28} {:>10} {:>10}", "shared data", "attack acc", "vs baseline");
    println!("{:<28} {:>9.1}% {:>10}", "raw elevation profile", baseline * 100.0, "—");

    let defenses = [
        Defense::Coarsen { step_m: 5.0 },
        Defense::Coarsen { step_m: 25.0 },
        Defense::LaplaceNoise { scale_m: 2.0, seed: 1 },
        Defense::LaplaceNoise { scale_m: 10.0, seed: 1 },
        Defense::SummaryOnly { bins: 8 },
        Defense::RelativeProfile,
    ];
    for d in defenses {
        let defended = d.apply_to_dataset(&balanced);
        let acc = attack(&defended);
        println!(
            "{:<28} {:>9.1}% {:>9.1}pp",
            d.to_string(),
            acc * 100.0,
            (acc - baseline) * 100.0
        );
    }
    let chance = 1.0 / balanced.n_classes() as f64;
    println!("\nchance level: {:.1}%", chance * 100.0);
    println!("summary-only sharing shows the paper's proposed direction: roughness");
    println!("statistics preserve workout bragging rights while collapsing the");
    println!("absolute-elevation signal the attack feeds on.");
}
