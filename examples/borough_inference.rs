//! TM-2: the adversary knows the target's city and infers the borough
//! of an activity whose map is hidden — using the image-side CNN.
//!
//! ```sh
//! cargo run --release --example borough_inference
//! ```

use datasets::borough_level;
use elevation_privacy::attack::image::{evaluate_image, ImageAttackConfig, ImageMethod};
use terrain::{BoroughId, CityId};

fn main() {
    // The target is known to live in San Francisco (public profile).
    let city = CityId::SanFrancisco;
    let counts: Vec<(BoroughId, usize)> = borough_level::TABLE_III
        .iter()
        .filter(|(b, _)| b.city() == city)
        .map(|&(b, n)| (b, (n / 8).max(12)))
        .collect();
    let ds = borough_level::build_with_counts(9, &counts);
    println!(
        "borough-level dataset for {}: {} segments, {} boroughs",
        city.name(),
        ds.len(),
        ds.n_classes()
    );
    for (name, count) in ds.label_names().iter().zip(ds.class_counts()) {
        println!("  {name:<12} {count}");
    }
    println!();

    // Compare the paper's three imbalance remedies on the Fig. 7 CNN.
    let cfg = ImageAttackConfig { epochs: 6, ..Default::default() };
    println!("{:<22} {:>8} {:>8} {:>8}", "method", "A", "recall", "F1");
    let mut wl_confusion = None;
    for method in [
        ImageMethod::UnweightedLoss,
        ImageMethod::WeightedLoss,
        ImageMethod::FineTune,
    ] {
        let out = evaluate_image(&ds, method, &cfg);
        let m = &out.confusion;
        println!(
            "{:<22} {:>7.1}% {:>7.1}% {:>7.1}%",
            method.to_string(),
            m.ovr_accuracy() * 100.0,
            m.macro_recall() * 100.0,
            m.macro_f1() * 100.0
        );
        if method == ImageMethod::WeightedLoss {
            wl_confusion = Some(out.confusion.clone());
        }
    }
    println!("\nper-borough breakdown (weighted loss):");
    let report = evalkit::ClassificationReport::new(
        &wl_confusion.expect("WL evaluated"),
        ds.label_names(),
    );
    println!("{report}");
    println!();
    println!("weighted loss keeps minority boroughs visible; the unweighted baseline");
    println!("is biased toward the biggest borough (paper §IV-B).");
}
