#!/usr/bin/env sh
# Full verification gate: build, lint, test, determinism, and a
# quick-scale end-to-end smoke of the experiment suite.
#
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== determinism across thread counts =="
cargo test -q --test determinism

echo "== thread-count invariance (table4_tm1_text, quick scale) =="
t1="$(mktemp)"; t4="$(mktemp)"
trap 'rm -f "$t1" "$t4"' EXIT
# Strip the banner (line 2 reports the thread count itself); every
# result byte must match across thread counts.
ELEV_SCALE=quick ELEV_THREADS=1 ./target/release/table4_tm1_text | sed 2d > "$t1"
ELEV_SCALE=quick ELEV_THREADS=4 ./target/release/table4_tm1_text | sed 2d > "$t4"
diff "$t1" "$t4"

echo "== kernel bench smoke (BENCH_QUICK=1) =="
saved=""
if [ -f BENCH_kernels.json ]; then
    saved="$(mktemp)"
    cp BENCH_kernels.json "$saved"
fi
BENCH_QUICK=1 cargo bench -q -p bench --bench kernels
test -s BENCH_kernels.json
if command -v jq >/dev/null 2>&1; then
    jq -e '.suite == "kernels" and (.benches | length > 0)' BENCH_kernels.json >/dev/null
else
    python3 -c 'import json; r = json.load(open("BENCH_kernels.json")); assert r["suite"] == "kernels" and r["benches"]'
fi
# The smoke overwrites the committed full-mode numbers; restore them.
if [ -n "$saved" ]; then
    mv "$saved" BENCH_kernels.json
fi

echo "== quick-scale smoke (run_all) =="
ELEV_SCALE=quick cargo run --release -p bench --bin run_all

echo "verify: OK"
