#!/usr/bin/env sh
# Full verification gate: build, lint, test, determinism, and a
# quick-scale end-to-end smoke of the experiment suite.
#
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== determinism across thread counts =="
cargo test -q --test determinism

echo "== thread-count invariance (table4_tm1_text, quick scale) =="
t1="$(mktemp)"; t4="$(mktemp)"
trap 'rm -f "$t1" "$t4"' EXIT
# Strip the banner (line 2 reports the thread count itself); every
# result byte must match across thread counts.
ELEV_SCALE=quick ELEV_THREADS=1 ./target/release/table4_tm1_text | sed 2d > "$t1"
ELEV_SCALE=quick ELEV_THREADS=4 ./target/release/table4_tm1_text | sed 2d > "$t4"
diff "$t1" "$t4"

echo "== quick-scale smoke (run_all) =="
ELEV_SCALE=quick cargo run --release -p bench --bin run_all

echo "verify: OK"
