#!/usr/bin/env sh
# Full verification gate — a thin wrapper over the workspace's own
# test surface. The hand-rolled byte-identical baseline diffs that
# used to live here (thread-count invariance, zero-rate fault
# invariance, quarantine accounting) are now `cargo test -p
# conformance`: the golden-artifact registry, the metamorphic
# invariant suite, and the deterministic fuzz driver.
#
# Usage: scripts/verify.sh [tier...]
#   tiers: build clippy test conformance bench smoke (default: all)
set -eu

cd "$(dirname "$0")/.."

tiers="${*:-build clippy test conformance bench smoke}"

has() {
    case " $tiers " in *" $1 "*) return 0 ;; *) return 1 ;; esac
}

if has build; then
    echo "== build (release) =="
    cargo build --workspace --release
fi

if has clippy; then
    echo "== clippy (deny warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
fi

if has test; then
    echo "== tests =="
    cargo test -q --workspace
fi

if has conformance; then
    echo "== conformance (goldens + metamorphic + fuzz) =="
    # Release mode: the golden digests are opt-level independent (pure
    # IEEE arithmetic), and the 10k-iteration fuzz campaign is fastest
    # here. Regenerate pins after an intentional output change with
    #   UPDATE_GOLDENS=1 cargo test -p conformance --test golden
    cargo test -q --release -p conformance
    ./target/release/conformance_stages
fi

if has bench; then
    echo "== bench smoke (BENCH_QUICK=1) =="
    for suite in kernels train; do
        json="BENCH_$suite.json"
        saved=""
        if [ -f "$json" ]; then
            saved="$(mktemp)"
            cp "$json" "$saved"
        fi
        BENCH_QUICK=1 cargo bench -q -p bench --bench "$suite"
        test -s "$json"
        if command -v jq >/dev/null 2>&1; then
            jq -e --arg s "$suite" \
                '.suite == $s and (.benches | length > 0)' "$json" >/dev/null
        else
            suite="$suite" json="$json" python3 -c 'import json, os
r = json.load(open(os.environ["json"]))
assert r["suite"] == os.environ["suite"] and r["benches"]'
        fi
        # The smoke overwrites the committed full-mode numbers; restore.
        if [ -n "$saved" ]; then
            mv "$saved" "$json"
        fi
    done
fi

if has smoke; then
    echo "== quick-scale smoke (run_all) =="
    ELEV_SCALE=quick cargo run --release -p bench --bin run_all
fi

echo "verify: OK ($tiers)"
