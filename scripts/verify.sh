#!/usr/bin/env sh
# Full verification gate: build, lint, test, determinism, and a
# quick-scale end-to-end smoke of the experiment suite.
#
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== determinism across thread counts =="
cargo test -q --test determinism

echo "== thread-count invariance (table4_tm1_text, quick scale) =="
t1="$(mktemp)"; t4="$(mktemp)"
tf="$(mktemp)"; rb1="$(mktemp)"; rb8="$(mktemp)"
trap 'rm -f "$t1" "$t4" "$tf" "$rb1" "$rb8"' EXIT
# Strip the banner (line 2 reports the thread count itself); every
# result byte must match across thread counts.
ELEV_SCALE=quick ELEV_THREADS=1 ./target/release/table4_tm1_text | sed 2d > "$t1"
ELEV_SCALE=quick ELEV_THREADS=4 ./target/release/table4_tm1_text | sed 2d > "$t4"
diff "$t1" "$t4"

echo "== zero-rate fault invariance (clean path unperturbed) =="
# With the fault substrate explicitly disabled, clean-path output must
# be byte-identical to a run without any ELEV_FAULT_* set.
ELEV_SCALE=quick ELEV_THREADS=4 ELEV_FAULT_RATE=0 \
    ./target/release/table4_tm1_text | sed 2d > "$tf"
diff "$t4" "$tf"

echo "== fault-injection smoke (20% corruption) =="
# A corrupted quick run must exit 0, be bit-identical across thread
# counts (wall-time lines aside), and emit parseable quarantine
# reports that account for every track.
ELEV_SCALE=quick ELEV_THREADS=1 ELEV_FAULT_RATE=0.2 \
    ./target/release/robustness_sweep | sed 2d | grep -v "wall time" > "$rb1"
ELEV_SCALE=quick ELEV_THREADS=8 ELEV_FAULT_RATE=0.2 \
    ./target/release/robustness_sweep | sed 2d | grep -v "wall time" > "$rb8"
diff "$rb1" "$rb8"
python3 - "$rb1" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
marks = [i for i, l in enumerate(lines) if l.startswith("quarantine-report-json")]
assert marks, "no quarantine report emitted"
reports = [json.loads(lines[i + 1]) for i in marks]
for r in reports:
    assert r["tracks"] == r["clean"] + r["repaired"] + r["quarantined"], r
assert any(r["quarantined"] > 0 for r in reports), "20% corruption should quarantine"
EOF

echo "== kernel bench smoke (BENCH_QUICK=1) =="
saved=""
if [ -f BENCH_kernels.json ]; then
    saved="$(mktemp)"
    cp BENCH_kernels.json "$saved"
fi
BENCH_QUICK=1 cargo bench -q -p bench --bench kernels
test -s BENCH_kernels.json
if command -v jq >/dev/null 2>&1; then
    jq -e '.suite == "kernels" and (.benches | length > 0)' BENCH_kernels.json >/dev/null
else
    python3 -c 'import json; r = json.load(open("BENCH_kernels.json")); assert r["suite"] == "kernels" and r["benches"]'
fi
# The smoke overwrites the committed full-mode numbers; restore them.
if [ -n "$saved" ]; then
    mv "$saved" BENCH_kernels.json
fi

echo "== quick-scale smoke (run_all) =="
ELEV_SCALE=quick cargo run --release -p bench --bin run_all

echo "verify: OK"
