#!/usr/bin/env sh
# Full verification gate — a thin wrapper over the workspace's own
# test surface. The hand-rolled byte-identical baseline diffs that
# used to live here (thread-count invariance, zero-rate fault
# invariance, quarantine accounting) are now `cargo test -p
# conformance`: the golden-artifact registry, the metamorphic
# invariant suite, and the deterministic fuzz driver.
#
# Usage: scripts/verify.sh [tier...]
#   tiers: build clippy test conformance serve overload bench scale smoke
#   (default: all)
set -eu

cd "$(dirname "$0")/.."

tiers="${*:-build clippy test conformance serve overload bench scale smoke}"

has() {
    case " $tiers " in *" $1 "*) return 0 ;; *) return 1 ;; esac
}

if has build; then
    echo "== build (release) =="
    cargo build --workspace --release
fi

if has clippy; then
    echo "== clippy (deny warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
fi

if has test; then
    echo "== tests =="
    cargo test -q --workspace
fi

if has conformance; then
    echo "== conformance (goldens + metamorphic + fuzz) =="
    # Release mode: the golden digests are opt-level independent (pure
    # IEEE arithmetic), and the 10k-iteration fuzz campaign is fastest
    # here. Regenerate pins after an intentional output change with
    #   UPDATE_GOLDENS=1 cargo test -p conformance --test golden
    cargo test -q --release -p conformance
    ./target/release/conformance_stages
fi

if has serve; then
    echo "== serve (registry bootstrap + live smoke) =="
    # Bootstrap a versioned registry, serve it, and require the live
    # HTTP report to byte-match the offline --smoke report for the
    # same upload — the end-to-end determinism contract, from shell.
    dir="$(mktemp -d)"
    ./target/release/elev-serve --bootstrap --model-dir "$dir"
    test -s "$dir/manifest.txt"

    # A small deterministic upload; its content only matters in that
    # the served bytes must equal the offline bytes.
    gpx="$dir/upload.gpx"
    {
        printf '<?xml version="1.0" encoding="UTF-8"?>\n'
        printf '<gpx version="1.1" creator="verify">\n<trk><trkseg>\n'
        i=0
        while [ "$i" -lt 40 ]; do
            printf '<trkpt lat="38.%04d" lon="-77.0353"><ele>%d.5</ele></trkpt>\n' \
                "$i" $((100 + i))
            i=$((i + 1))
        done
        printf '</trkseg></trk></gpx>\n'
    } > "$gpx"
    ./target/release/elev-serve --model-dir "$dir" --smoke "$gpx" \
        | tail -n 1 > "$dir/offline.json"

    ./target/release/elev-serve --model-dir "$dir" --workers 2 \
        --port-file "$dir/port" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
    i=0
    while [ ! -s "$dir/port" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    test -s "$dir/port"

    port="$(cat "$dir/port")" gpx="$gpx" out="$dir/served.json" python3 -c '
import http.client, os
c = http.client.HTTPConnection("127.0.0.1", int(os.environ["port"]), timeout=10)
c.request("GET", "/healthz")
r = c.getresponse(); body = r.read()
assert r.status == 200 and body == b"{\"status\": \"ok\"}", (r.status, body)
c.request("POST", "/v1/report", open(os.environ["gpx"], "rb").read())
r = c.getresponse(); body = r.read()
assert r.status == 200, (r.status, body)
open(os.environ["out"], "wb").write(body + b"\n")
'
    cmp "$dir/offline.json" "$dir/served.json"

    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - EXIT
    rm -rf "$dir"
    echo "serve: live report byte-matches offline report"
fi

if has overload; then
    echo "== overload (4x burst: bounded latency + shed accounting) =="
    # A deliberately starved server (1 worker, queue depth 2) under a
    # 4x fresh-connection burst: accepted requests must stay bounded
    # by the deadline, the excess must come back 503 + Retry-After,
    # and /v1/health's shed counters must match the client ledger.
    dir="$(mktemp -d)"
    ./target/release/elev-serve --bootstrap --model-dir "$dir"
    gpx="$dir/upload.gpx"
    {
        printf '<?xml version="1.0" encoding="UTF-8"?>\n'
        printf '<gpx version="1.1" creator="verify">\n<trk><trkseg>\n'
        i=0
        while [ "$i" -lt 40 ]; do
            printf '<trkpt lat="38.%04d" lon="-77.0353"><ele>%d.5</ele></trkpt>\n' \
                "$i" $((100 + i))
            i=$((i + 1))
        done
        printf '</trkseg></trk></gpx>\n'
    } > "$gpx"

    ./target/release/elev-serve --model-dir "$dir" --workers 1 \
        --queue-depth 2 --port-file "$dir/port" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
    i=0
    while [ ! -s "$dir/port" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    test -s "$dir/port"

    port="$(cat "$dir/port")" gpx="$gpx" python3 -c '
import http.client, json, os, socket, threading, time

port = int(os.environ["port"])
body = open(os.environ["gpx"], "rb").read()
head = ("POST /v1/report HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
        "Content-Length: %d\r\n\r\n" % len(body)).encode()
lock = threading.Lock()
served, shed, resets, latencies = [0], [0], [0], []

def client(n_requests):
    for _ in range(n_requests):
        t = time.monotonic()
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=10)
            s.sendall(head + body)
            buf = b""
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                buf += chunk
            s.close()
        except OSError:
            buf = b""
        status = buf.split(b" ", 2)[1] if buf.startswith(b"HTTP/1.1 ") else b""
        with lock:
            if status == b"503":
                assert b"\r\nRetry-After: 1\r\n" in buf, buf[:200]
                shed[0] += 1
            elif status:
                assert status == b"200", buf[:200]
                served[0] += 1
                latencies.append(time.monotonic() - t)
            else:
                resets[0] += 1

threads = [threading.Thread(target=client, args=(25,)) for _ in range(4)]
for t in threads: t.start()
for t in threads: t.join()

assert served[0] + shed[0] + resets[0] == 100
assert served[0] > 0, "burst starved every request"
assert shed[0] + resets[0] > 0, "4x burst into queue depth 2 never shed"
latencies.sort()
p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
assert p99 < 5.0, "accepted p99 %.3fs blew the 5s deadline" % p99

c = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
c.request("GET", "/v1/health")
r = c.getresponse()
health = json.loads(r.read())
assert r.status == 200, health
observed = shed[0] + resets[0]
counted = health["shed_queue"] + health["shed_ip_cap"]
assert counted == observed, (counted, observed, health)
assert health["accepted"] == served[0] + 1, (health["accepted"], served[0])
assert health["worker_panics"] == 0 and health["workers_restarted"] == 0, health
print("overload: %d served (p99 %.1f ms), %d shed (503=%d, reset=%d), "
      "health ledger exact" % (served[0], p99 * 1e3, observed, shed[0], resets[0]))
'
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - EXIT
    rm -rf "$dir"
fi

if has bench; then
    echo "== bench smoke (BENCH_QUICK=1) =="
    for suite in kernels train serve; do
        json="BENCH_$suite.json"
        saved=""
        if [ -f "$json" ]; then
            saved="$(mktemp)"
            cp "$json" "$saved"
        fi
        BENCH_QUICK=1 cargo bench -q -p bench --bench "$suite"
        test -s "$json"
        if command -v jq >/dev/null 2>&1; then
            jq -e --arg s "$suite" \
                '.suite == $s and (.benches | length > 0)' "$json" >/dev/null
            if [ "$suite" = kernels ]; then
                # The streaming-ingestion pair must be present and paired
                # (a baseline time alongside the optimized time).
                jq -e '[.benches[]
                        | select(.name | startswith("ingest_throughput_"))
                        | select(.baseline_s != null and .speedup != null)]
                       | length >= 2' "$json" >/dev/null
                # The scale-corpus entries: population-shard generation
                # and feature-store streaming, both with MB/s in the note.
                jq -e '([.benches[]
                         | select(.name | startswith("corpus_gen"))
                         | select(.note | test("MB/s"))]
                        | length == 1)
                       and ([.benches[]
                             | select(.name | startswith("featstore_read"))
                             | select(.baseline_s != null)
                             | select(.note | test("MB/s"))]
                            | length == 1)' "$json" >/dev/null
                # The probe-matching pair: exact full scan vs the IVF
                # index, paired, with recall@3 and candidate-pair
                # accounting in the note.
                jq -e '[.benches[]
                        | select(.name | startswith("ann_match_"))
                        | select(.baseline_s != null and .speedup != null)
                        | select(.note | test("recall@3"))
                        | select(.note | test("candidate pairs"))]
                       | length == 1' "$json" >/dev/null
            fi
            if [ "$suite" = serve ]; then
                # The overload entries are part of the CI artifact: a
                # bounded accepted-p99 and a nonzero shed rate.
                jq -e '([.benches[] | select(.name == "served_overload_4x_p99")]
                        | length == 1)
                       and ([.benches[]
                             | select(.name == "served_overload_4x_shed_rate")
                             | select(.optimized_s > 0)]
                            | length == 1)' "$json" >/dev/null
            fi
        else
            suite="$suite" json="$json" python3 -c 'import json, os
r = json.load(open(os.environ["json"]))
assert r["suite"] == os.environ["suite"] and r["benches"]
if os.environ["suite"] == "kernels":
    pairs = [b for b in r["benches"]
             if b["name"].startswith("ingest_throughput_")
             and b["baseline_s"] is not None and b["speedup"] is not None]
    assert len(pairs) >= 2, "missing ingest_throughput bench pairs"
    gen = [b for b in r["benches"]
           if b["name"].startswith("corpus_gen") and "MB/s" in b["note"]]
    assert len(gen) == 1, "missing corpus_gen MB/s entry"
    fst = [b for b in r["benches"]
           if b["name"].startswith("featstore_read")
           and b["baseline_s"] is not None and "MB/s" in b["note"]]
    assert len(fst) == 1, "missing featstore_read MB/s entry"
    ann = [b for b in r["benches"]
           if b["name"].startswith("ann_match_")
           and b["baseline_s"] is not None and b["speedup"] is not None
           and "recall@3" in b["note"] and "candidate pairs" in b["note"]]
    assert len(ann) == 1, "missing ann_match exact-vs-IVF pair"
if os.environ["suite"] == "serve":
    names = {b["name"]: b for b in r["benches"]}
    assert "served_overload_4x_p99" in names, "missing overload p99 entry"
    shed = names.get("served_overload_4x_shed_rate")
    assert shed and shed["optimized_s"] > 0, "missing/zero overload shed rate"'
        fi
        # The smoke overwrites the committed full-mode numbers; restore.
        if [ -n "$saved" ]; then
            mv "$saved" "$json"
        fi
    done
fi

if has scale; then
    echo "== scale (10^4-athlete quick slice: shard digests + sweep artifact) =="
    dir="$(mktemp -d)"
    export ELEV_POP_SIZE=10000 ELEV_SHARD_SIZE=1024 ELEV_STORE_DIR="$dir/featstore"
    cargo build -q --release -p bench --bin scale_sweep

    # Every shard digest must be bit-identical at 1 vs 4 worker threads
    # and under out-of-order (reversed) regeneration.
    ELEV_THREADS=4 ./target/release/scale_sweep --digests > "$dir/digests_t4.txt"
    ELEV_THREADS=1 ./target/release/scale_sweep --digests > "$dir/digests_t1.txt"
    ELEV_THREADS=1 ./target/release/scale_sweep --digests --reverse > "$dir/digests_rev.txt"
    cmp "$dir/digests_t4.txt" "$dir/digests_t1.txt"
    cmp "$dir/digests_t4.txt" "$dir/digests_rev.txt"
    n_shards="$(wc -l < "$dir/digests_t4.txt")"
    echo "scale: $n_shards shard digests identical at 1/4 threads and reversed order"

    # The sweep itself: must emit the JSON artifact with at least 4
    # population sizes, each carrying both threat-model accuracies.
    ./target/release/scale_sweep
    json="results/scale_population.json"
    test -s "$json"
    if command -v jq >/dev/null 2>&1; then
        jq -e '.suite == "scale_population"
               and (.points | length >= 4)
               and (.points
                    | all(has("tm1_top1") and has("tm1_top3") and has("tm3_top1")))
               and ([.points[].athletes] as $s | $s == ($s | sort))' \
            "$json" >/dev/null
    else
        json="$json" python3 -c 'import json, os
r = json.load(open(os.environ["json"]))
assert r["suite"] == "scale_population"
pts = r["points"]
assert len(pts) >= 4, "sweep must cover >= 4 population sizes"
assert all("tm1_top1" in p and "tm1_top3" in p and "tm3_top1" in p for p in pts)
sizes = [p["athletes"] for p in pts]
assert sizes == sorted(sizes), "population sizes must ascend"'
    fi
    echo "scale: sweep artifact OK ($json)"

    # ANN mode: the IVF sweep must be bit-identical at 1 vs 4 worker
    # threads, hold recall@3 >= 0.95 against the exact scan at every
    # pool size, and rescore a sublinear fraction of candidate pairs.
    ELEV_ANN=1 ELEV_THREADS=4 ./target/release/scale_sweep > /dev/null
    cp "$json" "$dir/ann_t4.json"
    ELEV_ANN=1 ELEV_THREADS=1 ./target/release/scale_sweep > /dev/null
    cmp "$dir/ann_t4.json" "$json"
    if command -v jq >/dev/null 2>&1; then
        jq -e '.ann != null
               and ((.ann.recall3 | length) == (.points | length))
               and (.ann.recall3 | all(. >= 0.95))
               and (.ann.rows_scanned * 2 < .ann.rows_total)' \
            "$json" >/dev/null
    else
        json="$json" python3 -c 'import json, os
r = json.load(open(os.environ["json"]))
ann = r["ann"]
assert len(ann["recall3"]) == len(r["points"])
assert all(v >= 0.95 for v in ann["recall3"]), "recall@3 below 0.95 floor"
assert ann["rows_scanned"] * 2 < ann["rows_total"], "IVF scan not sublinear"'
    fi
    echo "scale: ANN sweep thread-invariant, recall@3 >= 0.95 at every pool size"
    unset ELEV_POP_SIZE ELEV_SHARD_SIZE ELEV_STORE_DIR
    rm -rf "$dir"
fi

if has smoke; then
    echo "== quick-scale smoke (run_all) =="
    ELEV_SCALE=quick cargo run --release -p bench --bin run_all
fi

echo "verify: OK ($tiers)"
