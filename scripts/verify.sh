#!/usr/bin/env sh
# Full verification gate — a thin wrapper over the workspace's own
# test surface. The hand-rolled byte-identical baseline diffs that
# used to live here (thread-count invariance, zero-rate fault
# invariance, quarantine accounting) are now `cargo test -p
# conformance`: the golden-artifact registry, the metamorphic
# invariant suite, and the deterministic fuzz driver.
#
# Usage: scripts/verify.sh [tier...]
#   tiers: build clippy test conformance serve bench smoke (default: all)
set -eu

cd "$(dirname "$0")/.."

tiers="${*:-build clippy test conformance serve bench smoke}"

has() {
    case " $tiers " in *" $1 "*) return 0 ;; *) return 1 ;; esac
}

if has build; then
    echo "== build (release) =="
    cargo build --workspace --release
fi

if has clippy; then
    echo "== clippy (deny warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
fi

if has test; then
    echo "== tests =="
    cargo test -q --workspace
fi

if has conformance; then
    echo "== conformance (goldens + metamorphic + fuzz) =="
    # Release mode: the golden digests are opt-level independent (pure
    # IEEE arithmetic), and the 10k-iteration fuzz campaign is fastest
    # here. Regenerate pins after an intentional output change with
    #   UPDATE_GOLDENS=1 cargo test -p conformance --test golden
    cargo test -q --release -p conformance
    ./target/release/conformance_stages
fi

if has serve; then
    echo "== serve (registry bootstrap + live smoke) =="
    # Bootstrap a versioned registry, serve it, and require the live
    # HTTP report to byte-match the offline --smoke report for the
    # same upload — the end-to-end determinism contract, from shell.
    dir="$(mktemp -d)"
    ./target/release/elev-serve --bootstrap --model-dir "$dir"
    test -s "$dir/manifest.txt"

    # A small deterministic upload; its content only matters in that
    # the served bytes must equal the offline bytes.
    gpx="$dir/upload.gpx"
    {
        printf '<?xml version="1.0" encoding="UTF-8"?>\n'
        printf '<gpx version="1.1" creator="verify">\n<trk><trkseg>\n'
        i=0
        while [ "$i" -lt 40 ]; do
            printf '<trkpt lat="38.%04d" lon="-77.0353"><ele>%d.5</ele></trkpt>\n' \
                "$i" $((100 + i))
            i=$((i + 1))
        done
        printf '</trkseg></trk></gpx>\n'
    } > "$gpx"
    ./target/release/elev-serve --model-dir "$dir" --smoke "$gpx" \
        | tail -n 1 > "$dir/offline.json"

    ./target/release/elev-serve --model-dir "$dir" --workers 2 \
        --port-file "$dir/port" &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
    i=0
    while [ ! -s "$dir/port" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    test -s "$dir/port"

    port="$(cat "$dir/port")" gpx="$gpx" out="$dir/served.json" python3 -c '
import http.client, os
c = http.client.HTTPConnection("127.0.0.1", int(os.environ["port"]), timeout=10)
c.request("GET", "/healthz")
r = c.getresponse(); body = r.read()
assert r.status == 200 and body == b"{\"status\": \"ok\"}", (r.status, body)
c.request("POST", "/v1/report", open(os.environ["gpx"], "rb").read())
r = c.getresponse(); body = r.read()
assert r.status == 200, (r.status, body)
open(os.environ["out"], "wb").write(body + b"\n")
'
    cmp "$dir/offline.json" "$dir/served.json"

    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - EXIT
    rm -rf "$dir"
    echo "serve: live report byte-matches offline report"
fi

if has bench; then
    echo "== bench smoke (BENCH_QUICK=1) =="
    for suite in kernels train serve; do
        json="BENCH_$suite.json"
        saved=""
        if [ -f "$json" ]; then
            saved="$(mktemp)"
            cp "$json" "$saved"
        fi
        BENCH_QUICK=1 cargo bench -q -p bench --bench "$suite"
        test -s "$json"
        if command -v jq >/dev/null 2>&1; then
            jq -e --arg s "$suite" \
                '.suite == $s and (.benches | length > 0)' "$json" >/dev/null
            if [ "$suite" = kernels ]; then
                # The streaming-ingestion pair must be present and paired
                # (a baseline time alongside the optimized time).
                jq -e '[.benches[]
                        | select(.name | startswith("ingest_throughput_"))
                        | select(.baseline_s != null and .speedup != null)]
                       | length >= 2' "$json" >/dev/null
            fi
        else
            suite="$suite" json="$json" python3 -c 'import json, os
r = json.load(open(os.environ["json"]))
assert r["suite"] == os.environ["suite"] and r["benches"]
if os.environ["suite"] == "kernels":
    pairs = [b for b in r["benches"]
             if b["name"].startswith("ingest_throughput_")
             and b["baseline_s"] is not None and b["speedup"] is not None]
    assert len(pairs) >= 2, "missing ingest_throughput bench pairs"'
        fi
        # The smoke overwrites the committed full-mode numbers; restore.
        if [ -n "$saved" ]; then
            mv "$saved" "$json"
        fi
    done
fi

if has smoke; then
    echo "== quick-scale smoke (run_all) =="
    ELEV_SCALE=quick cargo run --release -p bench --bin run_all
fi

echo "verify: OK ($tiers)"
