//! `elevation-privacy` — the attack as a command-line tool.
//!
//! ```text
//! elevation-privacy generate --metro ORL --count 20 --out-dir data/orlando
//! elevation-privacy attack --train data --target mystery.gpx --model mlp
//! elevation-privacy survey --n 60 --seed 42
//! elevation-privacy demo
//! ```
//!
//! `attack` trains on a directory of labelled GPX files
//! (`<train>/<label>/*.gpx`) and predicts the label of target GPX
//! files from their **elevation profiles only** — exactly the paper's
//! adversary. `generate` produces synthetic labelled GPX corpora for
//! trying the tool end to end without real data.

use datasets::{Dataset, Sample};
use elev_core::attacker::TextAttacker;
use elev_core::text::{TextAttackConfig, TextModel};
use gpxfile::Gpx;
use routegen::AthleteSimulator;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use terrain::{CityId, SyntheticTerrain};
use textrep::Discretizer;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("attack") => cmd_attack(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("survey") => cmd_survey(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; see `elevation-privacy help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
elevation-privacy — elevation-profile location inference (ICDCS 2020 reproduction)

USAGE:
  elevation-privacy attack --train <dir> --target <gpx>... [--model svm|rfc|mlp]
                           [--ngram <n>] [--seed <u64>] [--save <file>]
  elevation-privacy attack --load <file> --target <gpx>...
      Train on <dir>/<label>/*.gpx (or reload a model saved with --save)
      and predict each target's label from its elevation profile alone
      (the route map is never read).

  elevation-privacy generate --metro <abbrev> --count <n> --out-dir <dir>
                             [--seed <u64>]
      Generate synthetic labelled GPX activities (metros: NYC WDC SF COS
      MSP LA NJ DLH MIA TPA ORL SD).

  elevation-privacy survey [--n <participants>] [--seed <u64>]
      Regenerate the paper's Fig. 1 survey statistics.

  elevation-privacy demo
      End-to-end demonstration on synthetic data.
";

/// Parsed `--key value` flags.
type Flags = Vec<(String, String)>;

/// Tiny flag parser: `--key value` pairs plus positionals.
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} expects a value"))?;
            flags.push((key.to_owned(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a Flags, key: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn parse_seed(flags: &Flags) -> Result<u64, String> {
    match flag(flags, "seed") {
        Some(s) => s.parse().map_err(|_| format!("bad --seed {s:?}")),
        None => Ok(42),
    }
}

fn metro_by_abbrev(s: &str) -> Result<CityId, String> {
    CityId::ALL
        .into_iter()
        .find(|c| c.abbrev().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            format!(
                "unknown metro {s:?}; choose from {}",
                CityId::ALL.map(|c| c.abbrev()).join(" ")
            )
        })
}

fn cmd_attack(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let mut targets: Vec<String> = positional;
    if let Some(t) = flag(&flags, "target") {
        targets.insert(0, t.to_owned());
    }
    if targets.is_empty() {
        return Err("at least one --target <gpx> is required".into());
    }

    let mut attacker = if let Some(model_file) = flag(&flags, "load") {
        let json = std::fs::read_to_string(model_file)
            .map_err(|e| format!("cannot read {model_file}: {e}"))?;
        let attacker = TextAttacker::from_json(&json)?;
        eprintln!("loaded model with labels: {}", attacker.label_names().join(", "));
        attacker
    } else {
        let train_dir =
            flag(&flags, "train").ok_or("--train <dir> or --load <file> is required")?;
        let model = match flag(&flags, "model").unwrap_or("mlp") {
            "svm" => TextModel::Svm,
            "rfc" => TextModel::Rfc,
            "mlp" => TextModel::Mlp,
            other => return Err(format!("unknown model {other:?} (svm|rfc|mlp)")),
        };
        let ngram: usize = flag(&flags, "ngram")
            .map(|s| s.parse().map_err(|_| format!("bad --ngram {s:?}")))
            .transpose()?
            .unwrap_or(8);
        let seed = parse_seed(&flags)?;
        let ds = load_gpx_tree(Path::new(train_dir))?;
        eprintln!(
            "trained corpus: {} activities, {} labels: {}",
            ds.len(),
            ds.n_classes(),
            ds.label_names().join(", ")
        );
        let cfg = TextAttackConfig { ngram, seed, ..Default::default() };
        TextAttacker::fit(&ds, Discretizer::Floor, model, &cfg)
    };
    if let Some(save) = flag(&flags, "save") {
        std::fs::write(save, attacker.to_json()).map_err(|e| e.to_string())?;
        eprintln!("model saved to {save}");
    }

    for target in &targets {
        let text = std::fs::read_to_string(target)
            .map_err(|e| format!("cannot read {target}: {e}"))?;
        let gpx = Gpx::parse(&text).map_err(|e| format!("{target}: {e}"))?;
        let profile = gpx.elevation_profile();
        if profile.is_empty() {
            return Err(format!("{target}: no elevation data in GPX"));
        }
        let label = attacker.predict_name(&profile).to_owned();
        println!("{target}: {label}");
    }
    Ok(())
}

/// Loads `<root>/<label>/*.gpx` into a labelled dataset.
fn load_gpx_tree(root: &Path) -> Result<Dataset, String> {
    let mut labels: Vec<(String, Vec<PathBuf>)> = Vec::new();
    let entries =
        std::fs::read_dir(root).map_err(|e| format!("cannot read {}: {e}", root.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let label = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or("non-utf8 directory name")?
            .to_owned();
        let mut files: Vec<PathBuf> = std::fs::read_dir(&path)
            .map_err(|e| e.to_string())?
            .filter_map(|f| f.ok().map(|f| f.path()))
            .filter(|p| p.extension().is_some_and(|e| e.eq_ignore_ascii_case("gpx")))
            .collect();
        files.sort();
        if !files.is_empty() {
            labels.push((label, files));
        }
    }
    labels.sort();
    if labels.len() < 2 {
        return Err(format!(
            "{} must contain at least two label subdirectories with .gpx files",
            root.display()
        ));
    }
    let mut ds = Dataset::new(labels.iter().map(|(l, _)| l.clone()).collect());
    for (i, (label, files)) in labels.iter().enumerate() {
        for file in files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let gpx = Gpx::parse(&text).map_err(|e| format!("{}: {e}", file.display()))?;
            let elevation = gpx.elevation_profile();
            if elevation.is_empty() {
                eprintln!("warning: {} has no elevation data, skipped", file.display());
                continue;
            }
            ds.push(Sample { elevation, label: i as u32, path: None })
                .map_err(|e| format!("{label}: {e}"))?;
        }
    }
    Ok(ds)
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let metro = metro_by_abbrev(flag(&flags, "metro").ok_or("--metro <abbrev> is required")?)?;
    let count: usize = flag(&flags, "count")
        .map(|s| s.parse().map_err(|_| format!("bad --count {s:?}")))
        .transpose()?
        .unwrap_or(10);
    let out_dir = PathBuf::from(flag(&flags, "out-dir").ok_or("--out-dir <dir> is required")?);
    let seed = parse_seed(&flags)?;

    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(seed), seed ^ 0xCAFE);
    for i in 0..count {
        let act = sim.generate_one(metro);
        let path = out_dir.join(format!("{}-{i:03}.gpx", metro.abbrev().to_lowercase()));
        std::fs::write(&path, act.gpx.to_xml()).map_err(|e| e.to_string())?;
    }
    println!("wrote {count} activities for {} to {}", metro.name(), out_dir.display());
    Ok(())
}

fn cmd_survey(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let n: usize = flag(&flags, "n")
        .map(|s| s.parse().map_err(|_| format!("bad --n {s:?}")))
        .transpose()?
        .unwrap_or(surveysim::PAPER_N);
    let seed = parse_seed(&flags)?;
    let survey = surveysim::Survey::sample(n, seed);
    let start = survey.start_point_percentages();
    let end = survey.end_point_percentages();
    let privacy = survey.privacy_belief_percentages();
    println!("survey of {n} participants (seed {seed}):");
    println!("  start: home {:.1}% school {:.1}% work {:.1}% other {:.1}%", start[0], start[1], start[2], start[3]);
    println!("  end:   home {:.1}% school {:.1}% work {:.1}% other {:.1}%", end[0], end[1], end[2], end[3]);
    println!("  'no location = privacy': yes {:.1}% / uncertain {:.1}% / no {:.1}%", privacy[0], privacy[1], privacy[2]);
    println!("  chi-square vs paper marginals: {:.2} (99% critical: {:.2})",
        survey.start_point_chi_square(), surveysim::Survey::CHI2_3DF_99);
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("elevation-privacy-demo-{}", std::process::id()));
    let make = |metro: &str, n: usize| -> Result<(), String> {
        cmd_generate(&[
            "--metro".into(),
            metro.into(),
            "--count".into(),
            n.to_string(),
            "--out-dir".into(),
            dir.join("train").join(metro).display().to_string(),
        ])
    };
    eprintln!("generating a synthetic labelled corpus under {}...", dir.display());
    make("WDC", 25)?;
    make("ORL", 20)?;
    make("COS", 15)?;
    // One unlabeled target per metro.
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(42), 0xDEE5);
    let mut targets = Vec::new();
    for metro in [CityId::WashingtonDc, CityId::Orlando, CityId::ColoradoSprings] {
        let act = sim.generate_one(metro);
        let path = dir.join(format!("mystery-{}.gpx", metro.abbrev().to_lowercase()));
        std::fs::write(&path, act.gpx.to_xml()).map_err(|e| e.to_string())?;
        targets.push(path.display().to_string());
    }
    let mut args: Vec<String> =
        vec!["--train".into(), dir.join("train").display().to_string()];
    args.extend(targets);
    cmd_attack(&args)?;
    eprintln!("(demo files left in {})", dir.display());
    Ok(())
}
