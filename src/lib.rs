//! # elevation-privacy
//!
//! A Rust reproduction of *Understanding the Potential Risks of Sharing
//! Elevation Information on Fitness Applications* (ICDCS 2020).
//!
//! The paper demonstrates that the **elevation profile** of a workout —
//! often shared publicly even when the route map is hidden — suffices to
//! infer the athlete's region, borough, or city with 59.59%–95.83%
//! accuracy. This crate re-exports the whole reproduction stack:
//!
//! - substrates: [`geoprim`], [`terrain`], [`gpxfile`], [`routegen`],
//! - data: [`datasets`], [`textrep`], [`imgrep`],
//! - learners: [`tensorlite`], [`neuralnet`], [`classicml`], [`evalkit`],
//! - the attack itself: [`attack`] (crate `elev_core`),
//! - the survey reproduction: [`surveysim`].
//!
//! See `examples/quickstart.rs` for an end-to-end attack in ~40 lines,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use classicml;
pub use datasets;
pub use elev_core as attack;
pub use evalkit;
pub use geoprim;
pub use gpxfile;
pub use imgrep;
pub use neuralnet;
pub use routegen;
pub use surveysim;
pub use tensorlite;
pub use terrain;
pub use textrep;
