//! Pins the entity codec's copy-on-write contract: when the input
//! contains nothing to decode or escape, `decode_entities` /
//! `encode_entities` return the input borrowed and perform exactly
//! zero heap allocations. Same counting-allocator pattern as
//! `crates/serve/tests/zero_alloc.rs`: its own integration-test binary
//! so the process-wide counter sees only this file's work.

use gpxfile::stream::parse_f64;
use gpxfile::xml::{decode_entities, encode_entities};
use std::alloc::{GlobalAlloc, Layout, System};
use std::borrow::Cow;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn entity_fast_paths_allocate_nothing() {
    // Realistic no-entity payloads: timestamps, names, numbers — what
    // almost every GPX value is.
    let inputs =
        ["2020-01-11T08:00:00Z", "38.8895", "-77.0353", "morning run", "", "plain text value"];

    // The counter is warm from test-harness startup; measure a tight
    // window around the codec alone.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        for s in inputs {
            let decoded = decode_entities(black_box(s)).expect("no entities to fail on");
            assert!(matches!(decoded, Cow::Borrowed(_)));
            black_box(&decoded);
            let encoded = encode_entities(black_box(s));
            assert!(matches!(encoded, Cow::Borrowed(_)));
            black_box(&encoded);
            // The fast float path is allocation-free too.
            let _ = black_box(parse_f64(black_box(s)));
        }
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "no-entity codec fast path allocated {allocs} times over 600 round trips"
    );

    // Sanity: the slow path still decodes (and is allowed to allocate).
    assert_eq!(decode_entities("a &amp; b").unwrap(), "a & b");
    assert_eq!(encode_entities("a & b"), "a &amp; b");
}
