//! Bit-identity coverage for the streaming reader's fast float parser:
//! `gpxfile::stream::parse_f64` must agree with `str::parse::<f64>` on
//! every input — same bits on success, error exactly when `str::parse`
//! errors.

use gpxfile::stream::parse_f64;
use proptest::prelude::*;

/// Asserts the two parsers agree on one literal.
fn assert_agrees(s: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let want = s.parse::<f64>();
    let got = parse_f64(s);
    match (&want, &got) {
        (Ok(w), Ok(g)) => {
            prop_assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "bit mismatch on {:?}: std {:?} vs fast {:?}",
                s,
                w,
                g
            );
        }
        (Err(_), Err(_)) => {}
        _ => prop_assert!(false, "Ok/Err disagreement on {:?}: std {:?} vs fast {:?}", s, want, got),
    }
    Ok(())
}

#[test]
fn adversarial_literals_are_bit_identical() {
    for s in [
        // Signs, zeros, and the negative-zero bit.
        "0", "-0", "+0", "0.0", "-0.0", "+0.0", "-0.000e7", "-0e-22",
        // Leading '+' and bare fraction forms std accepts.
        "+38.8895", "+.5", "-.5", ".5", "1.", "5.e2",
        // Typical GPX coordinates/elevations.
        "38.8895", "-77.0353", "123.4", "18.0", "1609.344", "12.5000000", "00012.5",
        // Exact fast-path boundary cases: 15 vs 16 significant digits,
        // exponent edges ±22.
        "999999999999999", "9999999999999999", "123456789012345", "1234567890123456",
        "1e22", "1e-22", "1e23", "1e-23", "5e22", "5e-22",
        // Overlong fractions (fall back, must stay identical).
        "38.123456789012345678901234567890", "0.30000000000000004", "2.225073858507201e-308",
        // Subnormals and extremes.
        "5e-324", "4.9406564584124654e-324", "2.2250738585072014e-308",
        "1.7976931348623157e308", "1e308", "-1e308", "1e309", "-1e309", "1e-309",
        "0.000000000000000000001",
        // Huge explicit exponents (saturating fallback).
        "1e99999", "1e-99999", "1e2147483648",
        // Things std accepts that look odd.
        "inf", "-inf", "+inf", "infinity", "NaN", "nan", "-NaN",
        // Syntax errors.
        "", "+", "-", ".", "e5", "1e", "1e+", "1..2", "1.2.3", "--1", "1,5", " 1", "1 ",
        "0x10", "1_000",
    ] {
        assert_agrees(s).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Round-trip: any finite f64, formatted every way Rust formats
    /// floats, re-parses to the same bits through both parsers.
    #[test]
    fn formatted_f64_roundtrips(bits in 0u64..u64::MAX) {
        let v = f64::from_bits(bits);
        for s in [format!("{v}"), format!("{v:?}"), format!("{v:e}"), format!("{v:.7}"), format!("{v:.1}")] {
            assert_agrees(&s)?;
        }
    }

    /// Grammar-driven literals: digits around an optional dot with an
    /// optional exponent, covering the fast path and every fallback.
    #[test]
    fn constructed_literals_agree(
        sign in 0u32..3,
        int_digits in prop::collection::vec(0u32..10, 0..22),
        frac in prop::option::of(prop::collection::vec(0u32..10, 0..22)),
        exp in prop::option::of((0u32..3, 0u32..400)),
    ) {
        let mut s = String::new();
        match sign {
            1 => s.push('-'),
            2 => s.push('+'),
            _ => {}
        }
        for d in &int_digits {
            s.push(char::from(b'0' + *d as u8));
        }
        if let Some(frac) = &frac {
            s.push('.');
            for d in frac {
                s.push(char::from(b'0' + *d as u8));
            }
        }
        if let Some((esign, emag)) = exp {
            s.push('e');
            match esign {
                1 => s.push('-'),
                2 => s.push('+'),
                _ => {}
            }
            s.push_str(&emag.to_string());
        }
        assert_agrees(&s)?;
    }
}
