//! Regression corpus of hand-written malformed GPX documents.
//!
//! Every fixture under `tests/corpus/` is a document a real pipeline
//! has to survive — truncated exports, bad numbers, mangled bytes.
//! Each must come back as a structured `GpxError`, never a panic, and
//! the error *class* is pinned so refactors can't silently downgrade a
//! precise diagnosis into a catch-all.

use gpxfile::{Gpx, GpxError};

/// Coarse expected-error class for a fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Xml,
    BadTrackPoint,
    NotGpx,
    InvalidUtf8,
}

fn classify(e: &GpxError) -> Expect {
    match e {
        GpxError::Xml(_) => Expect::Xml,
        GpxError::BadTrackPoint { .. } => Expect::BadTrackPoint,
        GpxError::NotGpx => Expect::NotGpx,
        GpxError::InvalidUtf8 { .. } => Expect::InvalidUtf8,
        other => panic!("unexpected error variant: {other:?}"),
    }
}

const CORPUS: &[(&str, &[u8], Expect)] = &[
    (
        "truncated_mid_tag",
        include_bytes!("corpus/truncated_mid_tag.gpx"),
        Expect::Xml,
    ),
    (
        "truncated_attribute",
        include_bytes!("corpus/truncated_attribute.gpx"),
        Expect::Xml,
    ),
    ("not_gpx_root", include_bytes!("corpus/not_gpx_root.gpx"), Expect::NotGpx),
    (
        "out_of_range_lat",
        include_bytes!("corpus/out_of_range_lat.gpx"),
        Expect::BadTrackPoint,
    ),
    (
        "bad_elevation_text",
        include_bytes!("corpus/bad_elevation_text.gpx"),
        Expect::BadTrackPoint,
    ),
    ("unknown_entity", include_bytes!("corpus/unknown_entity.gpx"), Expect::Xml),
    ("mismatched_tags", include_bytes!("corpus/mismatched_tags.gpx"), Expect::Xml),
    ("stray_close", include_bytes!("corpus/stray_close.gpx"), Expect::Xml),
    ("empty", include_bytes!("corpus/empty.gpx"), Expect::NotGpx),
    ("invalid_utf8", include_bytes!("corpus/invalid_utf8.gpx"), Expect::InvalidUtf8),
    ("missing_lon", include_bytes!("corpus/missing_lon.gpx"), Expect::BadTrackPoint),
    ("nan_latitude", include_bytes!("corpus/nan_latitude.gpx"), Expect::BadTrackPoint),
    (
        "infinite_elevation",
        include_bytes!("corpus/infinite_elevation.gpx"),
        Expect::BadTrackPoint,
    ),
    (
        "attr_missing_equals",
        include_bytes!("corpus/attr_missing_equals.gpx"),
        Expect::Xml,
    ),
    // `fuzz_*` fixtures are minimized finds from the deterministic
    // fuzz driver (`cargo run -p bench --bin conformance_stages --
    // --emit-corpus`, seed 42). fuzz_quarantine_too_corrupt.gpx also
    // lives in this directory but parses successfully — its class is
    // pinned by the conformance crate, which owns the ingest layer.
    (
        "fuzz_gpx_bad_trkpt",
        include_bytes!("corpus/fuzz_gpx_bad_trkpt.gpx"),
        Expect::BadTrackPoint,
    ),
    (
        "fuzz_xml_entity",
        include_bytes!("corpus/fuzz_xml_entity.gpx"),
        Expect::Xml,
    ),
    (
        "fuzz_xml_mismatch",
        include_bytes!("corpus/fuzz_xml_mismatch.gpx"),
        Expect::Xml,
    ),
];

#[test]
fn every_fixture_errors_with_the_pinned_class() {
    for &(name, bytes, expect) in CORPUS {
        let err = Gpx::parse_bytes(bytes)
            .expect_err(&format!("fixture {name} must fail to parse"));
        assert_eq!(classify(&err), expect, "fixture {name} produced {err:?}");
        // Error display must be usable in a quarantine report.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn fixtures_fail_identically_under_catch_unwind() {
    // Belt and braces: none of the corpus may panic either.
    for &(name, bytes, _) in CORPUS {
        let outcome = std::panic::catch_unwind(|| Gpx::parse_bytes(bytes).is_err());
        assert_eq!(outcome.ok(), Some(true), "fixture {name} panicked");
    }
}

#[test]
fn parse_bytes_matches_parse_on_valid_utf8() {
    let src = r#"<gpx creator="c"><trk><trkseg>
        <trkpt lat="1" lon="2"><ele>3.5</ele></trkpt>
    </trkseg></trk></gpx>"#;
    assert_eq!(Gpx::parse_bytes(src.as_bytes()), Gpx::parse(src));
}
