//! Property tests: `Gpx::parse` / `Gpx::parse_bytes` never panic —
//! they return `Ok` or a structured `Err` for *any* input, including
//! randomly truncated and mutated real documents.

use gpxfile::Gpx;
use proptest::prelude::*;

/// A realistic well-formed document to mutate (mutations of valid
/// input explore much deeper parser states than pure noise).
const SEED_DOC: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<gpx version="1.1" creator="fuzz &amp; co" xmlns="http://www.topografix.com/GPX/1/1">
  <metadata><name>seed</name></metadata>
  <trk>
    <name>morning run</name>
    <trkseg>
      <trkpt lat="38.8951100" lon="-77.0363700"><ele>21.5000</ele><time>2020-01-11T08:00:00Z</time></trkpt>
      <trkpt lat="38.8961100" lon="-77.0353700"><ele>23.0000</ele><time>2020-01-11T08:00:01Z</time></trkpt>
      <trkpt lat="38.8971100" lon="-77.0343700"/>
      <trkpt lat="38.8981100" lon="-77.0333700"><ele>24.2500</ele></trkpt>
    </trkseg>
  </trk>
</gpx>
"#;

/// Parsing must return, not panic. The call itself is the assertion —
/// a panic fails the property with the offending input printed.
fn assert_total(bytes: &[u8]) {
    let _ = Gpx::parse_bytes(bytes);
    if let Ok(text) = std::str::from_utf8(bytes) {
        let _ = Gpx::parse(text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn truncation_never_panics(cut in 0usize..SEED_DOC.len()) {
        assert_total(&SEED_DOC.as_bytes()[..cut]);
    }

    #[test]
    fn byte_mutations_never_panic(
        edits in prop::collection::vec((0usize..SEED_DOC.len(), 0u32..=255), 1..24),
    ) {
        let mut bytes = SEED_DOC.as_bytes().to_vec();
        for &(at, byte) in &edits {
            bytes[at] = byte as u8;
        }
        assert_total(&bytes);
    }

    #[test]
    fn truncate_then_mutate_never_panics(
        cut in 8usize..SEED_DOC.len(),
        edits in prop::collection::vec((0usize..SEED_DOC.len(), 0u32..=255), 0..12),
    ) {
        let mut bytes = SEED_DOC.as_bytes()[..cut].to_vec();
        for &(at, byte) in &edits {
            let len = bytes.len();
            bytes[at % len] = byte as u8;
        }
        assert_total(&bytes);
    }

    #[test]
    fn random_noise_never_panics(bytes in prop::collection::vec(0u32..=255, 0..512)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        assert_total(&bytes);
    }

    #[test]
    fn random_tag_soup_never_panics(
        parts in prop::collection::vec(0usize..TOKENS.len(), 0..40),
    ) {
        let soup: String = parts.iter().map(|&i| TOKENS[i]).collect();
        assert_total(soup.as_bytes());
    }

    #[test]
    fn duplicated_slices_never_panic(
        start in 0usize..SEED_DOC.len(),
        len in 1usize..64,
        at in 0usize..SEED_DOC.len(),
    ) {
        // Splice a copy of one slice into another position — models
        // interleaved/duplicated writes from a crashing exporter.
        let src = SEED_DOC.as_bytes();
        let end = (start + len).min(src.len());
        let mut bytes = Vec::with_capacity(src.len() + len);
        bytes.extend_from_slice(&src[..at]);
        bytes.extend_from_slice(&src[start..end]);
        bytes.extend_from_slice(&src[at..]);
        assert_total(&bytes);
    }
}

/// Building blocks for structured tag soup: valid-looking fragments
/// assembled in invalid orders.
const TOKENS: &[&str] = &[
    "<gpx creator=\"x\">",
    "</gpx>",
    "<trk>",
    "</trk>",
    "<trkseg>",
    "</trkseg>",
    "<trkpt lat=\"1\" lon=\"2\">",
    "<trkpt lat=\"91\" lon=\"2\"/>",
    "</trkpt>",
    "<ele>5.0</ele>",
    "<ele>NaN</ele>",
    "<time>2020-01-11T08:00:00Z</time>",
    "&amp;",
    "&bogus;",
    "&#x41;",
    "&#99999999999;",
    "<!-- c -->",
    "<?xml version=\"1.0\"?>",
    "<![CDATA[x]]>",
    "]]>",
    "<a",
    "\"",
    "'",
    "<",
    ">",
    "/>",
    "=",
    " lat=\"3",
    "\u{fffd}",
    "é",
];
