//! Streaming-vs-DOM parity over every committed GPX fixture: for each
//! corpus file, `PointBuf::fill_from_bytes` (the DOM-free walk) must
//! produce either the exact same error as `Gpx::parse_bytes` or the
//! exact same flattened point sequence — coordinates and elevations
//! compared by `to_bits`, timestamps byte-for-byte.

use gpxfile::stream::PointBuf;
use gpxfile::Gpx;
use std::path::Path;

fn assert_parity(name: &str, bytes: &[u8]) {
    let dom = Gpx::parse_bytes(bytes);
    let mut buf = PointBuf::default();
    let stream = buf.fill_from_bytes(bytes);
    match (dom, stream) {
        (Err(d), Err(s)) => assert_eq!(d, s, "{name}: error class diverged"),
        (Ok(gpx), Ok(())) => {
            let dom_points: Vec<_> = gpx
                .tracks
                .iter()
                .flat_map(|t| &t.segments)
                .flat_map(|s| &s.points)
                .collect();
            assert_eq!(
                buf.points().len(),
                dom_points.len(),
                "{name}: flattened point count diverged"
            );
            for (i, (f, p)) in buf.points().iter().zip(&dom_points).enumerate() {
                assert_eq!(
                    f.coord.lat.to_bits(),
                    p.coord.lat.to_bits(),
                    "{name}: lat bits diverged at point {i}"
                );
                assert_eq!(
                    f.coord.lon.to_bits(),
                    p.coord.lon.to_bits(),
                    "{name}: lon bits diverged at point {i}"
                );
                assert_eq!(
                    f.elevation_m.map(f64::to_bits),
                    p.elevation_m.map(f64::to_bits),
                    "{name}: elevation bits diverged at point {i}"
                );
                assert_eq!(
                    buf.time_str(f),
                    p.time.as_deref(),
                    "{name}: timestamp diverged at point {i}"
                );
            }
        }
        (dom, stream) => {
            panic!("{name}: DOM {dom:?} vs streaming {stream:?} disagree on acceptance")
        }
    }
}

#[test]
fn every_committed_fixture_is_bit_identical_across_paths() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seen = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&corpus)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("gpx") {
            continue;
        }
        let bytes = std::fs::read(&path).expect("fixture readable");
        assert_parity(&path.file_name().unwrap().to_string_lossy(), &bytes);
        seen += 1;
    }
    assert!(seen >= 18, "expected the committed corpus (≥18 fixtures), found {seen}");
}

#[test]
fn reused_buffer_keeps_parity_across_fixtures() {
    // One PointBuf across the whole corpus: reuse must not leak state
    // from a previous document (the StreamingIngest usage pattern).
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&corpus)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    let mut buf = PointBuf::default();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("gpx") {
            continue;
        }
        let bytes = std::fs::read(&path).expect("fixture readable");
        let dom = Gpx::parse_bytes(&bytes);
        let stream = buf.fill_from_bytes(&bytes);
        assert_eq!(dom.is_ok(), stream.is_ok(), "{path:?}: acceptance diverged under reuse");
        if let Ok(gpx) = dom {
            let dom_profile: Vec<u64> =
                gpx.elevation_profile().iter().map(|e| e.to_bits()).collect();
            let stream_profile: Vec<u64> = buf
                .points()
                .iter()
                .filter_map(|p| p.elevation_m)
                .map(f64::to_bits)
                .collect();
            assert_eq!(dom_profile, stream_profile, "{path:?}: profile diverged under reuse");
        }
    }
}
