//! Property-based round-trip tests for the GPX codec.

use geoprim::LatLon;
use gpxfile::{Gpx, Track, TrackPoint, TrackSegment};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = TrackPoint> {
    (
        -85.0f64..85.0,
        -179.0f64..179.0,
        prop::option::of(-100.0f64..4000.0),
        prop::option::of("[ -~&&[^<>&\"']]{0,20}"),
    )
        .prop_map(|(lat, lon, ele, time)| TrackPoint {
            coord: LatLon::new(lat, lon),
            elevation_m: ele,
            time,
        })
}

fn arb_gpx() -> impl Strategy<Value = Gpx> {
    (
        "[ -~]{0,24}",
        prop::collection::vec(
            (
                prop::option::of("[ -~]{0,24}"),
                prop::collection::vec(
                    prop::collection::vec(arb_point(), 0..16).prop_map(|points| TrackSegment {
                        points,
                    }),
                    0..3,
                ),
            )
                .prop_map(|(name, segments)| Track { name, segments }),
            0..3,
        ),
    )
        .prop_map(|(creator, tracks)| Gpx { creator, tracks })
}

proptest! {
    #[test]
    fn write_parse_roundtrip(gpx in arb_gpx()) {
        let xml = gpx.to_xml();
        let parsed = Gpx::parse(&xml).unwrap();
        prop_assert_eq!(&parsed.creator, &gpx.creator);
        prop_assert_eq!(parsed.point_count(), gpx.point_count());
        // Elevations survive to 1e-4 precision.
        let e1 = gpx.elevation_profile();
        let e2 = parsed.elevation_profile();
        prop_assert_eq!(e1.len(), e2.len());
        for (a, b) in e1.iter().zip(&e2) {
            prop_assert!((a - b).abs() < 1e-3);
        }
        // Coordinates survive to 1e-7 precision.
        for (a, b) in gpx.trajectory().iter().zip(parsed.trajectory()) {
            prop_assert!((a.lat - b.lat).abs() < 1e-6);
            prop_assert!((a.lon - b.lon).abs() < 1e-6);
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(src in "[ -~<>&\"']{0,200}") {
        let _ = Gpx::parse(&src);
    }

    #[test]
    fn track_names_roundtrip(name in "[a-zA-Z0-9 <>&\"']{1,30}") {
        let mut g = Gpx::new("t");
        g.tracks.push(Track { name: Some(name.trim().to_owned()), segments: vec![] });
        let parsed = Gpx::parse(&g.to_xml()).unwrap();
        prop_assert_eq!(parsed.tracks[0].name.as_deref(), Some(name.trim()));
    }
}
