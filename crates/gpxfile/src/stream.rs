//! Zero-copy streaming GPX reading.
//!
//! [`StreamReader`] is the borrowing twin of [`crate::xml::XmlReader`]:
//! the same tokenizer over the same GPX subset, but every event borrows
//! tag names, attribute slices, and character data straight from the
//! input buffer — no `String` is allocated on the happy path. Entity
//! references are *validated* in place as the tag is scanned (so the
//! error lattice — variants, reasons, byte offsets, and ordering — is
//! identical to the DOM reader's) and only decoded, via
//! [`crate::xml::decode_entities`]'s copy-on-write path, when a caller
//! actually consumes the value.
//!
//! On top of the reader sit the pieces the streaming ingestion pipeline
//! consumes directly:
//!
//! - [`parse_f64`], a fast float parser bit-identical to
//!   `str::parse::<f64>` (exact fast path, `str::parse` fallback);
//! - [`FlatPoint`]/[`PointBuf`], the flattened trackpoint sequence with
//!   timestamps interned into a reusable arena, filled either from the
//!   event stream ([`PointBuf::fill_from_bytes`], DOM-free) or from an
//!   already-parsed document ([`PointBuf::fill_from_gpx`]).
//!
//! The point walk replicates `Gpx::parse`'s state machine decision for
//! decision (dropped segments, swallowed `<ele>` errors, unconditional
//! `take()`s), so the flattened sequence is identical to flattening the
//! DOM — the property the conformance parity campaign pins.

use crate::model::Gpx;
use crate::xml::{check_entities, decode_entities, XmlError};
use crate::GpxError;
use geoprim::LatLon;
use std::borrow::Cow;

/// One borrowed parsing event.
///
/// `'a` is the input buffer; `'r` is the reader borrow carrying the
/// attribute scratch slice (valid until the next [`StreamReader::next_event`]
/// call). Attribute values and text are **raw**: entity references have
/// been validated but not decoded — pass them through
/// [`crate::xml::decode_entities`] to materialize (copy-free when no
/// `&` is present).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent<'r, 'a> {
    /// `<name attr="v" ...>` — for self-closing tags, a matching
    /// [`StreamEvent::End`] is synthesized immediately after.
    Start {
        /// The element name (namespace prefixes kept verbatim).
        name: &'a str,
        /// Attributes in document order, values raw (undecoded).
        attrs: &'r [(&'a str, &'a str)],
    },
    /// `</name>`.
    End {
        /// The element name.
        name: &'a str,
    },
    /// Character data between tags, raw (entity-validated, undecoded).
    /// Whitespace-only text is *not* suppressed; callers decide.
    Text(&'a str),
}

/// A pull parser yielding borrowed [`StreamEvent`]s over a `&str`.
///
/// # Examples
///
/// ```
/// use gpxfile::stream::{StreamEvent, StreamReader};
///
/// let mut r = StreamReader::new("<a x=\"1\"><b/>hi &amp; bye</a>");
/// let mut names = Vec::new();
/// while let Some(event) = r.next_event()? {
///     if let StreamEvent::Start { name, .. } = event {
///         names.push(name);
///     }
/// }
/// assert_eq!(names, ["a", "b"]);
/// # Ok::<(), gpxfile::xml::XmlError>(())
/// ```
#[derive(Debug)]
pub struct StreamReader<'a> {
    /// The document. Slicing this (rather than re-running
    /// `str::from_utf8` on byte ranges) is what keeps the scan a single
    /// pass: every delimiter the scanner stops at is ASCII, so every
    /// cut is a char boundary of the already-validated input.
    text: &'a str,
    src: &'a [u8],
    pos: usize,
    /// Stack of open element names (for well-formedness checking).
    stack: Vec<&'a str>,
    /// Attribute scratch for the most recent start tag.
    attrs: Vec<(&'a str, &'a str)>,
    /// Synthesized `End` event pending after a self-closing tag.
    pending_end: Option<&'a str>,
}

impl<'a> StreamReader<'a> {
    /// Creates a reader over an XML document.
    pub fn new(src: &'a str) -> Self {
        Self {
            text: src,
            src: src.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            attrs: Vec::new(),
            pending_end: None,
        }
    }

    /// Current byte offset (for diagnostics).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Returns the next event, or `None` at end of a well-formed document.
    ///
    /// # Errors
    ///
    /// Any [`XmlError`]; after an error, the reader state is unspecified.
    pub fn next_event(&mut self) -> Result<Option<StreamEvent<'_, 'a>>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Some(StreamEvent::End { name }));
        }
        loop {
            if self.pos >= self.src.len() {
                if self.stack.pop().is_some() {
                    return Err(XmlError::UnexpectedEof { context: "unclosed element" });
                }
                return Ok(None);
            }
            if self.src[self.pos] == b'<' {
                // One byte decides the construct — cheaper than probing
                // each prefix in turn on the hot tag path.
                match self.src.get(self.pos + 1) {
                    Some(b'?') => {
                        self.skip_until("?>")?;
                        continue;
                    }
                    Some(b'!') => {
                        if self.starts_with("<!--") {
                            self.skip_until("-->")?;
                        } else {
                            // DOCTYPE etc. — skip to the matching '>'.
                            self.skip_until(">")?;
                        }
                        continue;
                    }
                    Some(b'/') => return self.parse_end_tag().map(Some),
                    _ => return self.parse_start_tag().map(Some),
                }
            }
            // Text node: one SWAR sweep finds the next '<' and whether
            // any '&' precedes it, so entity-free runs (the usual case)
            // skip the `check_entities` pass entirely.
            let start = self.pos;
            let (len, has_amp) = scan_text_run(&self.src[start..]);
            self.pos = start + len;
            let raw = &self.text[start..self.pos];
            if self.stack.is_empty() && raw.trim().is_empty() {
                continue; // whitespace between prolog and root
            }
            if has_amp {
                check_entities(raw)?;
            }
            return Ok(Some(StreamEvent::Text(raw)));
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        let hay = &self.src[self.pos..];
        match find_sub(hay, end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof { context: "markup" }),
        }
    }

    fn parse_end_tag(&mut self) -> Result<StreamEvent<'_, 'a>, XmlError> {
        self.pos += 2; // consume "</"
        let name = self.read_name()?;
        self.skip_ws();
        if self.pos >= self.src.len() || self.src[self.pos] != b'>' {
            return Err(XmlError::Malformed { offset: self.pos, reason: "expected '>'" });
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(StreamEvent::End { name }),
            Some(open) => Err(XmlError::MismatchedTag {
                expected: open.to_owned(),
                found: name.to_owned(),
            }),
            None => Err(XmlError::Malformed {
                offset: self.pos,
                reason: "closing tag with no open element",
            }),
        }
    }

    fn parse_start_tag(&mut self) -> Result<StreamEvent<'_, 'a>, XmlError> {
        self.pos += 1; // consume '<'
        let name = self.read_name()?;
        self.attrs.clear();
        loop {
            self.skip_ws();
            let Some(&b) = self.src.get(self.pos) else {
                return Err(XmlError::UnexpectedEof { context: "start tag" });
            };
            match b {
                b'>' => {
                    self.pos += 1;
                    self.stack.push(name);
                    return Ok(StreamEvent::Start { name, attrs: &self.attrs });
                }
                b'/' => {
                    if !self.starts_with("/>") {
                        return Err(XmlError::Malformed {
                            offset: self.pos,
                            reason: "expected '/>'",
                        });
                    }
                    self.pos += 2;
                    self.stack.push(name);
                    self.pending_end = Some(name);
                    return Ok(StreamEvent::Start { name, attrs: &self.attrs });
                }
                _ => {
                    let key = self.read_name()?;
                    self.skip_ws();
                    if self.src.get(self.pos) != Some(&b'=') {
                        return Err(XmlError::Malformed {
                            offset: self.pos,
                            reason: "expected '=' in attribute",
                        });
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.src.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        None => {
                            return Err(XmlError::UnexpectedEof { context: "attribute value" })
                        }
                        _ => {
                            return Err(XmlError::Malformed {
                                offset: self.pos,
                                reason: "expected quoted attribute value",
                            })
                        }
                    };
                    self.pos += 1;
                    let start = self.pos;
                    let Some(end) = find_byte(&self.src[start..], quote) else {
                        self.pos = self.src.len();
                        return Err(XmlError::UnexpectedEof { context: "attribute value" });
                    };
                    self.pos = start + end;
                    let raw = &self.text[start..self.pos];
                    self.pos += 1; // closing quote
                    // Validate entities now — the DOM reader decodes (and
                    // so can fail) mid-tag, and error ordering is pinned.
                    if find_byte(raw.as_bytes(), b'&').is_some() {
                        check_entities(raw)?;
                    }
                    self.attrs.push((key, raw));
                }
            }
        }
    }

    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while self.pos < self.src.len() && is_name_byte(self.src[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Malformed { offset: start, reason: "expected a name" });
        }
        Ok(&self.text[start..self.pos])
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

/// Name-byte membership as a table lookup — `read_name` runs once per
/// tag and attribute, so the branchy character-class test shows up.
static NAME_BYTE: [bool; 256] = {
    let mut t = [false; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        t[b] = c.is_ascii_alphanumeric()
            || matches!(c, b':' | b'_' | b'-' | b'.');
        b += 1;
    }
    t
};

fn is_name_byte(b: u8) -> bool {
    NAME_BYTE[b as usize]
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;

/// A word whose bytes have their high bit set exactly where the
/// corresponding byte of `w` is zero (the classic `haszero` trick).
#[inline]
fn zero_bytes(w: u64) -> u64 {
    w.wrapping_sub(SWAR_LO) & !w & SWAR_HI
}

/// `memchr` without the dependency: SWAR over 8-byte words, safe code
/// only. The scanner's inner loops all funnel through here, which is
/// what moves the tokenizer from byte-at-a-time to word-at-a-time.
#[inline]
pub(crate) fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let pat = SWAR_LO * u64::from(needle);
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for c in &mut chunks {
        let hit = zero_bytes(u64::from_le_bytes(c.try_into().expect("8-byte chunk")) ^ pat);
        if hit != 0 {
            return Some(base + (hit.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks.remainder().iter().position(|&b| b == needle).map(|i| base + i)
}

/// Scans a text run: returns the length up to (not including) the next
/// `'<'` (or end of input) and whether any `'&'` occurs within the run
/// — both from the same pass over the bytes.
#[inline]
fn scan_text_run(hay: &[u8]) -> (usize, bool) {
    let lt = SWAR_LO * u64::from(b'<');
    let amp = SWAR_LO * u64::from(b'&');
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    let mut seen_amp = 0u64;
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        let lt_hit = zero_bytes(w ^ lt);
        let amp_hit = zero_bytes(w ^ amp);
        if lt_hit != 0 {
            let end = lt_hit.trailing_zeros();
            // Only '&'s strictly before the '<' belong to this run.
            let mask = (1u64 << end) - 1;
            return (base + (end / 8) as usize, (seen_amp | (amp_hit & mask)) != 0);
        }
        seen_amp |= amp_hit;
        base += 8;
    }
    let mut has_amp = seen_amp != 0;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b == b'<' {
            return (base + i, has_amp);
        }
        has_amp |= b == b'&';
    }
    (hay.len(), has_amp)
}

/// Exactly representable powers of ten: `10^0 ..= 10^22`.
const POW10: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// Parses an `f64`, bit-identical to `str::parse::<f64>`.
///
/// The fast path applies when the literal has at most 15 significant
/// digits and an effective decimal exponent in `[-22, 22]`: the
/// mantissa then fits a `u64` below `2^53` and the power of ten is
/// exactly representable, so one IEEE multiply (or divide) yields the
/// correctly rounded result — the same value `str::parse` computes.
/// Everything else (subnormals, `1e308`, 16+ digit mantissas, `inf`,
/// `NaN`, syntax errors) falls through to `str::parse` itself, making
/// bit-identity hold by construction on every input.
///
/// # Errors
///
/// Exactly when `str::parse::<f64>` errors (the fallback produces the
/// error).
///
/// # Examples
///
/// ```
/// assert_eq!(gpxfile::stream::parse_f64("38.8895").unwrap(), 38.8895);
/// assert_eq!(
///     gpxfile::stream::parse_f64("-77.0353").unwrap().to_bits(),
///     "-77.0353".parse::<f64>().unwrap().to_bits()
/// );
/// assert!(gpxfile::stream::parse_f64("tall").is_err());
/// ```
pub fn parse_f64(s: &str) -> Result<f64, std::num::ParseFloatError> {
    let b = s.as_bytes();
    let mut i = 0usize;
    let mut neg = false;
    match b.first() {
        Some(b'+') => i = 1,
        Some(b'-') => {
            neg = true;
            i = 1;
        }
        _ => {}
    }
    let mut mant: u64 = 0;
    let mut sig = 0u32; // significant digits accumulated into `mant`
    let mut any_digits = false;
    let mut too_long = false;
    while let Some(&c) = b.get(i) {
        if !c.is_ascii_digit() {
            break;
        }
        any_digits = true;
        if mant == 0 && c == b'0' {
            // Leading integer zeros contribute nothing.
        } else if sig < 15 {
            mant = mant * 10 + u64::from(c - b'0');
            sig += 1;
        } else {
            too_long = true;
        }
        i += 1;
    }
    let mut exp10: i32 = 0;
    if b.get(i) == Some(&b'.') {
        i += 1;
        while let Some(&c) = b.get(i) {
            if !c.is_ascii_digit() {
                break;
            }
            any_digits = true;
            if mant == 0 && c == b'0' {
                exp10 -= 1; // leading fractional zero: pure scaling
            } else if sig < 15 {
                mant = mant * 10 + u64::from(c - b'0');
                sig += 1;
                exp10 -= 1;
            } else {
                too_long = true;
            }
            i += 1;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        let mut eneg = false;
        match b.get(i) {
            Some(b'+') => i += 1,
            Some(b'-') => {
                eneg = true;
                i += 1;
            }
            _ => {}
        }
        let mut any_exp = false;
        let mut e: i32 = 0;
        while let Some(&c) = b.get(i) {
            if !c.is_ascii_digit() {
                break;
            }
            any_exp = true;
            if e < 10_000 {
                e = e * 10 + i32::from(c - b'0');
            }
            i += 1;
        }
        if !any_exp {
            return s.parse(); // "1e" and friends: syntax handled there
        }
        exp10 += if eneg { -e } else { e };
    }
    if i != b.len() || !any_digits || too_long || !(-22..=22).contains(&exp10) {
        return s.parse();
    }
    let v = mant as f64;
    let v = if exp10 >= 0 { v * POW10[exp10 as usize] } else { v / POW10[(-exp10) as usize] };
    Ok(if neg { -v } else { v })
}

/// One flattened track point: the plain-data mirror of
/// [`crate::TrackPoint`] with the timestamp interned into the owning
/// [`PointBuf`]'s arena — `Copy`, allocation-free, reusable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatPoint {
    /// The WGS-84 coordinate.
    pub coord: LatLon,
    /// Elevation in metres (`<ele>`), if recorded.
    pub elevation_m: Option<f64>,
    /// Timestamp as a `(start, end)` byte range into the arena, kept
    /// verbatim as the (decoded, trimmed) ISO-8601 text.
    pub time: Option<(u32, u32)>,
}

/// The flattened trackpoint sequence of one document, with all
/// timestamp text interned into a single reusable arena.
///
/// This is the streaming pipeline's working set: filling it allocates
/// nothing once `points` and `arena` have grown to corpus size, which
/// is what lets [`elev_core`-style] ingest loops run per-upload with
/// zero steady-state allocation on the parse side.
#[derive(Debug, Clone, Default)]
pub struct PointBuf {
    points: Vec<FlatPoint>,
    arena: String,
    /// Staging for the current `<trkseg>` during a walk.
    seg: Vec<FlatPoint>,
    /// Staging for the current `<trk>` during a walk.
    trk: Vec<FlatPoint>,
    /// Accumulated character data of the current element.
    text: String,
}

impl PointBuf {
    /// The flattened points, in document order.
    pub fn points(&self) -> &[FlatPoint] {
        &self.points
    }

    /// The timestamp text a point's arena range refers to.
    pub fn time_str(&self, p: &FlatPoint) -> Option<&str> {
        p.time.map(|(a, b)| &self.arena[a as usize..b as usize])
    }

    /// Mutable points together with the (read-only) arena they index
    /// into — the split borrow repair passes need to sort/dedup by
    /// timestamp in place.
    pub fn parts_mut(&mut self) -> (&mut Vec<FlatPoint>, &str) {
        (&mut self.points, &self.arena)
    }

    fn reset(&mut self) {
        self.points.clear();
        self.arena.clear();
        self.seg.clear();
        self.trk.clear();
        self.text.clear();
    }

    fn intern(arena: &mut String, s: &str) -> (u32, u32) {
        let start = arena.len() as u32;
        arena.push_str(s);
        (start, arena.len() as u32)
    }

    /// Flattens an already-parsed document (the DOM path).
    pub fn fill_from_gpx(&mut self, gpx: &Gpx) {
        self.reset();
        for track in &gpx.tracks {
            for seg in &track.segments {
                for p in &seg.points {
                    let time =
                        p.time.as_deref().map(|t| Self::intern(&mut self.arena, t));
                    self.points.push(FlatPoint {
                        coord: p.coord,
                        elevation_m: p.elevation_m,
                        time,
                    });
                }
            }
        }
    }

    /// Streams a GPX document's track points out of raw bytes with no
    /// intermediate DOM, validating UTF-8 first (same precedence as
    /// [`Gpx::parse_bytes`]).
    ///
    /// # Errors
    ///
    /// Exactly the errors (variant, message, offset) that
    /// [`Gpx::parse_bytes`] would produce for the same input.
    pub fn fill_from_bytes(&mut self, src: &[u8]) -> Result<(), GpxError> {
        let text = std::str::from_utf8(src)
            .map_err(|e| GpxError::InvalidUtf8 { offset: e.valid_up_to() })?;
        self.fill_from_slice(text)
    }

    /// Streams a GPX document's track points out of a `&str` with no
    /// intermediate DOM.
    ///
    /// The walk mirrors [`Gpx::parse`]'s state machine exactly —
    /// including which malformed constructs error, which are silently
    /// skipped, and which segments/points get dropped — so the
    /// flattened sequence equals flattening the parsed document.
    ///
    /// # Errors
    ///
    /// Exactly the errors that [`Gpx::parse`] would produce.
    pub fn fill_from_slice(&mut self, src: &str) -> Result<(), GpxError> {
        self.reset();
        let mut reader = StreamReader::new(src);
        let mut saw_root = false;
        let mut path: Vec<&str> = Vec::new();
        // The three Option slots of the DOM builder; the point data
        // lives in the staging buffers instead of owned Track values.
        let mut in_track = false;
        let mut in_segment = false;
        let mut cur_point: Option<FlatPoint> = None;
        // Character data of the current element. The common shape — one
        // entity-free text run per element — stays a borrow of `src`;
        // only decoded entities or split runs (comment in the middle)
        // spill into the `self.text` accumulator.
        enum Txt<'s> {
            Empty,
            One(&'s str),
            Buf,
        }
        let mut txt = Txt::Empty;

        while let Some(event) = reader.next_event()? {
            match event {
                StreamEvent::Start { name, attrs } => {
                    if path.is_empty() {
                        if name != "gpx" {
                            return Err(GpxError::NotGpx);
                        }
                        saw_root = true;
                    } else {
                        match (path_tail(&path), name) {
                            ("gpx", "trk") => {
                                in_track = true;
                                self.trk.clear();
                            }
                            ("trk", "trkseg") => {
                                in_segment = true;
                                self.seg.clear();
                            }
                            ("trkseg", "trkpt") => {
                                cur_point = Some(parse_trkpt_flat(attrs)?);
                            }
                            _ => {}
                        }
                    }
                    path.push(name);
                    txt = Txt::Empty;
                }
                StreamEvent::Text(t) => {
                    let decoded = decode_entities(t)?;
                    txt = match (txt, decoded) {
                        (Txt::Empty, Cow::Borrowed(s)) => Txt::One(s),
                        (Txt::Empty, Cow::Owned(s)) => {
                            self.text.clear();
                            self.text.push_str(&s);
                            Txt::Buf
                        }
                        (Txt::One(prev), d) => {
                            self.text.clear();
                            self.text.push_str(prev);
                            self.text.push_str(&d);
                            Txt::Buf
                        }
                        (Txt::Buf, d) => {
                            self.text.push_str(&d);
                            Txt::Buf
                        }
                    };
                }
                StreamEvent::End { name } => {
                    let cur: &str = match txt {
                        Txt::Empty => "",
                        Txt::One(s) => s,
                        Txt::Buf => &self.text,
                    };
                    match name {
                        "ele" if path_parent(&path) == "trkpt" => {
                            if let Some(p) = cur_point.as_mut() {
                                let v = parse_f64(cur.trim()).map_err(|_| {
                                    GpxError::BadTrackPoint {
                                        reason: format!("unparsable <ele>: {:?}", cur.trim()),
                                    }
                                })?;
                                if !v.is_finite() {
                                    return Err(GpxError::BadTrackPoint {
                                        reason: format!("non-finite <ele>: {v}"),
                                    });
                                }
                                p.elevation_m = Some(v);
                            }
                        }
                        "time" if path_parent(&path) == "trkpt" => {
                            if let Some(p) = cur_point.as_mut() {
                                p.time = Some(Self::intern(&mut self.arena, cur.trim()));
                            }
                        }
                        "trkpt" => {
                            if let Some(p) = cur_point.take() {
                                if in_segment {
                                    self.seg.push(p);
                                }
                            }
                        }
                        "trkseg" if in_segment => {
                            in_segment = false;
                            if in_track {
                                self.trk.append(&mut self.seg);
                            } else {
                                self.seg.clear();
                            }
                        }
                        "trk" if in_track => {
                            in_track = false;
                            self.points.append(&mut self.trk);
                        }
                        _ => {}
                    }
                    path.pop();
                    txt = Txt::Empty;
                }
            }
        }
        if saw_root {
            Ok(())
        } else {
            Err(GpxError::NotGpx)
        }
    }
}

fn path_tail<'p>(path: &[&'p str]) -> &'p str {
    path.last().copied().unwrap_or("")
}

/// The name of the element *containing* the element currently being
/// closed (the path still includes the closing element itself).
fn path_parent<'p>(path: &[&'p str]) -> &'p str {
    if path.len() >= 2 {
        path[path.len() - 2]
    } else {
        ""
    }
}

fn parse_trkpt_flat(attrs: &[(&str, &str)]) -> Result<FlatPoint, GpxError> {
    let get = |key: &str| {
        attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| GpxError::BadTrackPoint { reason: format!("missing {key}") })
    };
    let lat: f64 = parse_f64(&decode_entities(get("lat")?)?)
        .map_err(|_| GpxError::BadTrackPoint { reason: "unparsable lat".into() })?;
    let lon: f64 = parse_f64(&decode_entities(get("lon")?)?)
        .map_err(|_| GpxError::BadTrackPoint { reason: "unparsable lon".into() })?;
    let coord = LatLon::validated(lat, lon)
        .map_err(|e| GpxError::BadTrackPoint { reason: e.to_string() })?;
    Ok(FlatPoint { coord, elevation_m: None, time: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(src: &str) -> Result<Vec<String>, XmlError> {
        let mut r = StreamReader::new(src);
        let mut out = Vec::new();
        while let Some(e) = r.next_event()? {
            out.push(match e {
                StreamEvent::Start { name, attrs } => {
                    format!("<{name} {attrs:?}>")
                }
                StreamEvent::End { name } => format!("</{name}>"),
                StreamEvent::Text(t) => format!("#{t}"),
            });
        }
        Ok(out)
    }

    #[test]
    fn borrows_without_decoding() {
        let ev = collect(r#"<a t="x &amp; y">1 &lt; 2</a>"#).unwrap();
        // Raw (undecoded) values are surfaced; decode is the caller's.
        assert_eq!(ev, ["<a [(\"t\", \"x &amp; y\")]>", "#1 &lt; 2", "</a>"]);
    }

    #[test]
    fn validates_entities_during_scan() {
        assert!(matches!(
            collect(r#"<a t="&bogus;"><b"#),
            Err(XmlError::UnknownEntity { .. })
        ));
        assert!(matches!(collect("<a>&nope;</a>"), Err(XmlError::UnknownEntity { .. })));
    }

    #[test]
    fn self_closing_synthesizes_end() {
        let ev = collect("<a><b/></a>").unwrap();
        assert_eq!(ev, ["<a []>", "<b []>", "</b>", "</a>"]);
    }

    #[test]
    fn fast_float_agrees_on_common_literals() {
        for s in [
            "0", "-0", "0.0", "-0.0", "+0.0", "1", "-1", "38.8895", "-77.0353", "123.4",
            "1e3", "1E3", "1e-3", "1e+3", "0.005", "1.", ".5", "+.5", "-.5", "9999999999999999",
            "1e308", "1e-308", "5e-324", "1.7976931348623157e308", "2.2250738585072014e-308",
            "1e400", "-1e400", "inf", "-inf", "NaN", "0.000000000000000000001",
            "38.123456789012345678", "00012.5", "12.5000000",
        ] {
            let want = s.parse::<f64>();
            let got = parse_f64(s);
            match (want, got) {
                (Ok(w), Ok(g)) => {
                    assert_eq!(w.to_bits(), g.to_bits(), "mismatch on {s:?}")
                }
                (Err(_), Err(_)) => {}
                (w, g) => panic!("disagreement on {s:?}: {w:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn fast_float_rejects_what_std_rejects() {
        for s in ["", "+", "-", ".", "1.5x", "e5", "1e", "1e+", "--1", "1..2", "1.2.3"] {
            assert_eq!(s.parse::<f64>().is_err(), parse_f64(s).is_err(), "on {s:?}");
        }
    }

    #[test]
    fn point_walk_matches_dom_flatten() {
        let src = r#"<?xml version="1.0"?>
<gpx version="1.1" creator="stream-test">
  <trk><name>t</name><trkseg>
    <trkpt lat="38.89" lon="-77.05"><ele>21.5</ele><time> 2020-01-11T08:00:00Z </time></trkpt>
    <trkpt lat="38.90" lon="-77.04"><ele>23.0</ele></trkpt>
    <trkpt lat="38.91" lon="-77.03"/>
  </trkseg></trk>
</gpx>"#;
        let gpx = Gpx::parse(src).unwrap();
        let mut buf = PointBuf::default();
        buf.fill_from_slice(src).unwrap();
        let dom: Vec<_> = gpx
            .tracks
            .iter()
            .flat_map(|t| &t.segments)
            .flat_map(|s| &s.points)
            .collect();
        assert_eq!(buf.points().len(), dom.len());
        for (f, p) in buf.points().iter().zip(&dom) {
            assert_eq!(f.coord, p.coord);
            assert_eq!(
                f.elevation_m.map(f64::to_bits),
                p.elevation_m.map(f64::to_bits)
            );
            assert_eq!(buf.time_str(f), p.time.as_deref());
        }
    }

    #[test]
    fn dropped_segments_drop_their_points() {
        // trkseg directly under gpx: points parse but are dropped, in
        // both the DOM builder and the streaming walk.
        let src = r#"<gpx creator="x"><trkseg><trkpt lat="1" lon="2"><ele>5</ele></trkpt></trkseg>
            <trk><trkseg><trkpt lat="3" lon="4"><ele>7</ele></trkpt></trkseg></trk></gpx>"#;
        let gpx = Gpx::parse(src).unwrap();
        let mut buf = PointBuf::default();
        buf.fill_from_slice(src).unwrap();
        assert_eq!(gpx.elevation_profile(), vec![7.0]);
        let profile: Vec<f64> =
            buf.points().iter().filter_map(|p| p.elevation_m).collect();
        assert_eq!(profile, vec![7.0]);
    }

    #[test]
    fn walk_errors_match_dom_errors() {
        for src in [
            "<kml></kml>",
            "",
            "<gpx><trk>",
            r#"<gpx creator="x"><trk><trkseg><trkpt lon="1"/></trkseg></trk></gpx>"#,
            r#"<gpx creator="x"><trk><trkseg><trkpt lat="99" lon="1"/></trkseg></trk></gpx>"#,
            r#"<gpx creator="x"><trk><trkseg><trkpt lat="1" lon="1"><ele>tall</ele></trkpt></trkseg></trk></gpx>"#,
            "<gpx>&bad;</gpx>",
            "<gpx></bad>",
        ] {
            let dom = Gpx::parse(src).err();
            let mut buf = PointBuf::default();
            let stream = buf.fill_from_slice(src).err();
            assert_eq!(dom, stream, "error divergence on {src:?}");
        }
    }

    #[test]
    fn buffer_reuse_is_clean() {
        let mut buf = PointBuf::default();
        buf.fill_from_slice(
            r#"<gpx creator="x"><trk><trkseg><trkpt lat="1" lon="2"><ele>5</ele><time>2020-01-01T00:00:00Z</time></trkpt></trkseg></trk></gpx>"#,
        )
        .unwrap();
        assert_eq!(buf.points().len(), 1);
        buf.fill_from_slice(r#"<gpx creator="y"></gpx>"#).unwrap();
        assert!(buf.points().is_empty());
        assert!(buf.arena.is_empty());
    }
}
