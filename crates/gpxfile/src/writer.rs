//! GPX serialization.

use crate::model::{Gpx, TrackPoint};
use crate::xml::encode_entities;
use std::fmt::Write as _;

impl Gpx {
    /// Serializes the document as GPX 1.1 XML.
    ///
    /// The output round-trips through [`Gpx::parse`]: coordinates are
    /// written with 7 decimal places (~1 cm) and elevations with 4
    /// (~0.1 mm), well beyond sensor precision.
    pub fn to_xml(&self) -> String {
        let mut out = String::with_capacity(128 + self.point_count() * 96);
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        let _ = writeln!(
            out,
            "<gpx version=\"1.1\" creator=\"{}\" xmlns=\"http://www.topografix.com/GPX/1/1\">",
            encode_entities(&self.creator)
        );
        for track in &self.tracks {
            out.push_str("  <trk>\n");
            if let Some(name) = &track.name {
                let _ = writeln!(out, "    <name>{}</name>", encode_entities(name));
            }
            for seg in &track.segments {
                out.push_str("    <trkseg>\n");
                for p in &seg.points {
                    write_point(&mut out, p);
                }
                out.push_str("    </trkseg>\n");
            }
            out.push_str("  </trk>\n");
        }
        out.push_str("</gpx>\n");
        out
    }
}

fn write_point(out: &mut String, p: &TrackPoint) {
    let _ = write!(
        out,
        "      <trkpt lat=\"{:.7}\" lon=\"{:.7}\"",
        p.coord.lat, p.coord.lon
    );
    match (&p.elevation_m, &p.time) {
        (None, None) => out.push_str("/>\n"),
        (ele, time) => {
            out.push('>');
            if let Some(e) = ele {
                let _ = write!(out, "<ele>{e:.4}</ele>");
            }
            if let Some(t) = time {
                let _ = write!(out, "<time>{}</time>", encode_entities(t));
            }
            out.push_str("</trkpt>\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Track, TrackSegment};
    use geoprim::LatLon;

    #[test]
    fn writes_expected_shape() {
        let mut g = Gpx::new("unit <&> test");
        g.tracks.push(Track {
            name: Some("run & ride".into()),
            segments: vec![TrackSegment {
                points: vec![
                    TrackPoint::with_elevation(LatLon::new(38.1234567, -77.7654321), 12.5),
                    TrackPoint::new(LatLon::new(38.2, -77.8)),
                ],
            }],
        });
        let xml = g.to_xml();
        assert!(xml.contains("creator=\"unit &lt;&amp;&gt; test\""));
        assert!(xml.contains("<name>run &amp; ride</name>"));
        assert!(xml.contains("<ele>12.5000</ele>"));
        assert!(xml.contains("lat=\"38.1234567\""));
        assert!(xml.contains("<trkpt lat=\"38.2000000\" lon=\"-77.8000000\"/>"));
    }
}
