//! GPX parsing on top of the [`crate::stream`] borrowing event reader.
//!
//! `Gpx::parse` is now a thin tree-builder: it drives the zero-copy
//! [`StreamReader`] and only materializes the `String`s the document
//! model actually keeps (creator, track names, timestamps) — element
//! names, attribute scans, and numeric literals never allocate.

use crate::model::{Gpx, Track, TrackPoint, TrackSegment};
use crate::stream::{parse_f64, StreamEvent, StreamReader};
use crate::xml::decode_entities;
use crate::GpxError;
use geoprim::LatLon;

impl Gpx {
    /// Parses a GPX 1.1 document.
    ///
    /// Unknown elements (extensions, metadata, waypoints, routes) are
    /// skipped, matching how the paper's pipeline only consumes track
    /// points. Namespace prefixes on the recognized element names are
    /// not supported (fitness exports emit unprefixed GPX).
    ///
    /// # Errors
    ///
    /// - [`GpxError::Xml`] for malformed XML,
    /// - [`GpxError::NotGpx`] when the root element is not `<gpx>`,
    /// - [`GpxError::BadTrackPoint`] when a `<trkpt>` lacks valid
    ///   `lat`/`lon` attributes or its `<ele>` is not a number.
    pub fn parse(src: &str) -> Result<Gpx, GpxError> {
        let mut reader = StreamReader::new(src);
        let mut gpx: Option<Gpx> = None;
        // Explicit element path, e.g. ["gpx", "trk", "trkseg", "trkpt"].
        let mut path: Vec<&str> = Vec::new();
        let mut cur_track: Option<Track> = None;
        let mut cur_segment: Option<TrackSegment> = None;
        let mut cur_point: Option<TrackPoint> = None;
        let mut text = String::new();

        while let Some(event) = reader.next_event()? {
            match event {
                StreamEvent::Start { name, attrs } => {
                    if path.is_empty() {
                        if name != "gpx" {
                            return Err(GpxError::NotGpx);
                        }
                        let creator = match attrs.iter().find(|(k, _)| *k == "creator") {
                            Some(&(_, v)) => decode_entities(v)?.into_owned(),
                            None => String::new(),
                        };
                        gpx = Some(Gpx::new(creator));
                    } else {
                        match (path_tail(&path), name) {
                            ("gpx", "trk") => cur_track = Some(Track::default()),
                            ("trk", "trkseg") => cur_segment = Some(TrackSegment::default()),
                            ("trkseg", "trkpt") => {
                                cur_point = Some(parse_trkpt(attrs)?);
                            }
                            _ => {}
                        }
                    }
                    path.push(name);
                    text.clear();
                }
                StreamEvent::Text(t) => {
                    text.push_str(&decode_entities(t)?);
                }
                StreamEvent::End { name } => {
                    match name {
                        "ele" if path_parent(&path) == "trkpt" => {
                            if let Some(p) = cur_point.as_mut() {
                                let v: f64 = parse_f64(text.trim()).map_err(|_| {
                                    GpxError::BadTrackPoint {
                                        reason: format!("unparsable <ele>: {:?}", text.trim()),
                                    }
                                })?;
                                if !v.is_finite() {
                                    return Err(GpxError::BadTrackPoint {
                                        reason: format!("non-finite <ele>: {v}"),
                                    });
                                }
                                p.elevation_m = Some(v);
                            }
                        }
                        "time" if path_parent(&path) == "trkpt" => {
                            if let Some(p) = cur_point.as_mut() {
                                p.time = Some(text.trim().to_owned());
                            }
                        }
                        "name" if path_parent(&path) == "trk" => {
                            if let Some(t) = cur_track.as_mut() {
                                t.name = Some(text.trim().to_owned());
                            }
                        }
                        "trkpt" => {
                            if let (Some(seg), Some(p)) = (cur_segment.as_mut(), cur_point.take())
                            {
                                seg.points.push(p);
                            }
                        }
                        "trkseg" => {
                            if let (Some(trk), Some(seg)) = (cur_track.as_mut(), cur_segment.take())
                            {
                                trk.segments.push(seg);
                            }
                        }
                        "trk" => {
                            if let (Some(g), Some(trk)) = (gpx.as_mut(), cur_track.take()) {
                                g.tracks.push(trk);
                            }
                        }
                        _ => {}
                    }
                    path.pop();
                    text.clear();
                }
            }
        }
        gpx.ok_or(GpxError::NotGpx)
    }

    /// Parses a GPX document from raw bytes.
    ///
    /// This is the entry point for untrusted input (uploads, mangled
    /// exports): it validates UTF-8 first instead of assuming a `&str`
    /// already exists.
    ///
    /// # Errors
    ///
    /// [`GpxError::InvalidUtf8`] for undecodable bytes, otherwise
    /// everything [`Gpx::parse`] can return.
    pub fn parse_bytes(src: &[u8]) -> Result<Gpx, GpxError> {
        let text = std::str::from_utf8(src)
            .map_err(|e| GpxError::InvalidUtf8 { offset: e.valid_up_to() })?;
        Gpx::parse(text)
    }
}

fn path_tail<'p>(path: &[&'p str]) -> &'p str {
    path.last().copied().unwrap_or("")
}

/// The name of the element *containing* the element currently being
/// closed (the path still includes the closing element itself).
fn path_parent<'p>(path: &[&'p str]) -> &'p str {
    if path.len() >= 2 {
        path[path.len() - 2]
    } else {
        ""
    }
}

fn parse_trkpt(attrs: &[(&str, &str)]) -> Result<TrackPoint, GpxError> {
    let get = |key: &str| {
        attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| GpxError::BadTrackPoint { reason: format!("missing {key}") })
    };
    let lat: f64 = parse_f64(&decode_entities(get("lat")?)?)
        .map_err(|_| GpxError::BadTrackPoint { reason: "unparsable lat".into() })?;
    let lon: f64 = parse_f64(&decode_entities(get("lon")?)?)
        .map_err(|_| GpxError::BadTrackPoint { reason: "unparsable lon".into() })?;
    let coord = LatLon::validated(lat, lon)
        .map_err(|e| GpxError::BadTrackPoint { reason: e.to_string() })?;
    Ok(TrackPoint::new(coord))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<gpx version="1.1" creator="unit" xmlns="http://www.topografix.com/GPX/1/1">
  <metadata><name>ignored</name></metadata>
  <trk>
    <name>morning</name>
    <trkseg>
      <trkpt lat="38.89" lon="-77.05"><ele>21.5</ele><time>2020-01-11T08:00:00Z</time></trkpt>
      <trkpt lat="38.90" lon="-77.04"><ele>23.0</ele></trkpt>
      <trkpt lat="38.91" lon="-77.03"/>
    </trkseg>
  </trk>
</gpx>"#;

    #[test]
    fn parses_sample() {
        let g = Gpx::parse(SAMPLE).unwrap();
        assert_eq!(g.creator, "unit");
        assert_eq!(g.tracks.len(), 1);
        assert_eq!(g.tracks[0].name.as_deref(), Some("morning"));
        assert_eq!(g.point_count(), 3);
        assert_eq!(g.elevation_profile(), vec![21.5, 23.0]);
        assert_eq!(
            g.tracks[0].segments[0].points[0].time.as_deref(),
            Some("2020-01-11T08:00:00Z")
        );
    }

    #[test]
    fn metadata_name_does_not_leak_into_track() {
        let g = Gpx::parse(SAMPLE).unwrap();
        assert_eq!(g.tracks[0].name.as_deref(), Some("morning"));
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = Gpx::parse(SAMPLE).unwrap();
        let g2 = Gpx::parse(&g.to_xml()).unwrap();
        assert_eq!(g.point_count(), g2.point_count());
        assert_eq!(g.elevation_profile(), g2.elevation_profile());
        for (a, b) in g.trajectory().iter().zip(g2.trajectory()) {
            assert!(a.degree_distance(b) < 1e-6);
        }
    }

    #[test]
    fn rejects_non_gpx_root() {
        assert_eq!(Gpx::parse("<kml></kml>"), Err(GpxError::NotGpx));
    }

    #[test]
    fn rejects_missing_lat() {
        let src = r#"<gpx creator="x"><trk><trkseg><trkpt lon="1"/></trkseg></trk></gpx>"#;
        assert!(matches!(Gpx::parse(src), Err(GpxError::BadTrackPoint { .. })));
    }

    #[test]
    fn rejects_out_of_range_coordinate() {
        let src = r#"<gpx creator="x"><trk><trkseg><trkpt lat="99" lon="1"/></trkseg></trk></gpx>"#;
        assert!(matches!(Gpx::parse(src), Err(GpxError::BadTrackPoint { .. })));
    }

    #[test]
    fn rejects_bad_elevation() {
        let src = r#"<gpx creator="x"><trk><trkseg>
            <trkpt lat="1" lon="1"><ele>tall</ele></trkpt>
        </trkseg></trk></gpx>"#;
        assert!(matches!(Gpx::parse(src), Err(GpxError::BadTrackPoint { .. })));
    }

    #[test]
    fn rejects_malformed_xml() {
        assert!(matches!(Gpx::parse("<gpx><trk>"), Err(GpxError::Xml(_))));
    }

    #[test]
    fn empty_gpx_is_valid() {
        let g = Gpx::parse(r#"<gpx creator="c"></gpx>"#).unwrap();
        assert_eq!(g.creator, "c");
        assert!(g.tracks.is_empty());
    }

    #[test]
    fn skips_unknown_elements() {
        let src = r#"<gpx creator="x"><wpt lat="1" lon="2"><ele>5</ele></wpt>
            <trk><trkseg><trkpt lat="3" lon="4"><ele>7</ele></trkpt></trkseg></trk></gpx>"#;
        let g = Gpx::parse(src).unwrap();
        assert_eq!(g.elevation_profile(), vec![7.0]);
    }

    #[test]
    fn decodes_entities_in_creator() {
        let g = Gpx::parse(r#"<gpx creator="a &amp; b"></gpx>"#).unwrap();
        assert_eq!(g.creator, "a & b");
    }
}
