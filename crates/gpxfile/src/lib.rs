//! GPX 1.1 reading and writing.
//!
//! The paper converts every collected activity "to our intermediate
//! format, the GPS Exchange Format (GPX)" before labelling and feature
//! extraction. This crate implements that intermediate format from
//! scratch: a [`xml`] pull parser sized for the GPX subset, the
//! [`Gpx`]/[`Track`]/[`TrackPoint`] document model, a writer, and the
//! trajectory/elevation-profile extraction the pipeline consumes.
//!
//! # Examples
//!
//! ```
//! use gpxfile::{Gpx, Track, TrackPoint, TrackSegment};
//! use geoprim::LatLon;
//!
//! let mut gpx = Gpx::new("elevation-privacy");
//! gpx.tracks.push(Track {
//!     name: Some("morning run".into()),
//!     segments: vec![TrackSegment {
//!         points: vec![
//!             TrackPoint::with_elevation(LatLon::new(38.89, -77.05), 21.5),
//!             TrackPoint::with_elevation(LatLon::new(38.90, -77.04), 23.0),
//!         ],
//!     }],
//! });
//! let text = gpx.to_xml();
//! let parsed = Gpx::parse(&text)?;
//! assert_eq!(parsed.trajectory().len(), 2);
//! assert_eq!(parsed.elevation_profile(), vec![21.5, 23.0]);
//! # Ok::<(), gpxfile::GpxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;
pub mod xml;

mod model;
mod parser;
mod writer;

pub use model::{Gpx, Track, TrackPoint, TrackSegment};

/// Errors produced while parsing GPX documents.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpxError {
    /// The underlying XML was malformed.
    Xml(xml::XmlError),
    /// A `<trkpt>` was missing its `lat`/`lon` attributes or they failed
    /// to parse as finite numbers.
    BadTrackPoint {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// The document's root element was not `<gpx>`.
    NotGpx,
    /// The input bytes were not valid UTF-8 (mangled exports, partial
    /// downloads). Only produced by [`Gpx::parse_bytes`].
    InvalidUtf8 {
        /// Byte offset where decoding failed.
        offset: usize,
    },
}

impl std::fmt::Display for GpxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpxError::Xml(e) => write!(f, "malformed xml: {e}"),
            GpxError::BadTrackPoint { reason } => write!(f, "bad trkpt: {reason}"),
            GpxError::NotGpx => write!(f, "root element is not <gpx>"),
            GpxError::InvalidUtf8 { offset } => {
                write!(f, "invalid utf-8 at byte {offset}")
            }
        }
    }
}

impl std::error::Error for GpxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpxError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xml::XmlError> for GpxError {
    fn from(e: xml::XmlError) -> Self {
        GpxError::Xml(e)
    }
}
