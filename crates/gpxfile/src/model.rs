//! The GPX document model and derived views.

use geoprim::LatLon;
use serde::{Deserialize, Serialize};

/// A track point: coordinate, optional elevation, optional timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// The WGS-84 coordinate.
    pub coord: LatLon,
    /// Elevation in metres (`<ele>`), if recorded.
    pub elevation_m: Option<f64>,
    /// Timestamp (`<time>`), kept verbatim as ISO-8601 text.
    pub time: Option<String>,
}

impl TrackPoint {
    /// A point with no elevation or time.
    pub fn new(coord: LatLon) -> Self {
        Self { coord, elevation_m: None, time: None }
    }

    /// A point with an elevation.
    pub fn with_elevation(coord: LatLon, elevation_m: f64) -> Self {
        Self { coord, elevation_m: Some(elevation_m), time: None }
    }
}

/// A contiguous run of track points (`<trkseg>`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrackSegment {
    /// Points in recording order.
    pub points: Vec<TrackPoint>,
}

/// A named track (`<trk>`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Track {
    /// Optional `<name>`.
    pub name: Option<String>,
    /// The track's segments.
    pub segments: Vec<TrackSegment>,
}

/// A GPX document (`<gpx>` root).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpx {
    /// The `creator` attribute.
    pub creator: String,
    /// All tracks in the document.
    pub tracks: Vec<Track>,
}

impl Gpx {
    /// An empty document with the given creator.
    pub fn new(creator: impl Into<String>) -> Self {
        Self { creator: creator.into(), tracks: Vec::new() }
    }

    /// All coordinates across all tracks/segments, in document order.
    ///
    /// This is the *location trajectory* the paper encapsulates in a
    /// tight rectangle for labelling.
    pub fn trajectory(&self) -> Vec<LatLon> {
        self.tracks
            .iter()
            .flat_map(|t| &t.segments)
            .flat_map(|s| &s.points)
            .map(|p| p.coord)
            .collect()
    }

    /// All recorded elevations, in document order, skipping points
    /// without an `<ele>` element.
    ///
    /// This is the *elevation profile* — the only signal the paper's
    /// adversary observes.
    pub fn elevation_profile(&self) -> Vec<f64> {
        self.tracks
            .iter()
            .flat_map(|t| &t.segments)
            .flat_map(|s| &s.points)
            .filter_map(|p| p.elevation_m)
            .collect()
    }

    /// Total number of track points.
    pub fn point_count(&self) -> usize {
        self.tracks.iter().flat_map(|t| &t.segments).map(|s| s.points.len()).sum()
    }
}

impl Default for Gpx {
    fn default() -> Self {
        Self::new("elevation-privacy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Gpx {
        let mut g = Gpx::new("test");
        g.tracks.push(Track {
            name: Some("t1".into()),
            segments: vec![
                TrackSegment {
                    points: vec![
                        TrackPoint::with_elevation(LatLon::new(1.0, 2.0), 10.0),
                        TrackPoint::new(LatLon::new(1.1, 2.1)),
                    ],
                },
                TrackSegment {
                    points: vec![TrackPoint::with_elevation(LatLon::new(1.2, 2.2), 12.0)],
                },
            ],
        });
        g
    }

    #[test]
    fn trajectory_flattens_in_order() {
        let g = sample();
        let t = g.trajectory();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], LatLon::new(1.0, 2.0));
        assert_eq!(t[2], LatLon::new(1.2, 2.2));
    }

    #[test]
    fn elevation_profile_skips_missing() {
        assert_eq!(sample().elevation_profile(), vec![10.0, 12.0]);
    }

    #[test]
    fn point_count_counts_all() {
        assert_eq!(sample().point_count(), 3);
    }

    #[test]
    fn empty_document() {
        let g = Gpx::default();
        assert!(g.trajectory().is_empty());
        assert!(g.elevation_profile().is_empty());
        assert_eq!(g.point_count(), 0);
    }
}
