//! A minimal, dependency-free XML pull parser.
//!
//! Supports the subset of XML that GPX documents use: the XML
//! declaration, comments, elements with attributes, self-closing tags,
//! character data, and the five predefined entities. It does **not**
//! support DTDs, CDATA sections, processing instructions beyond the
//! declaration, or namespaces beyond treating prefixed names opaquely —
//! none of which occur in fitness-tracker GPX exports.
//!
//! The tokenizer itself lives in [`crate::stream`] and yields events
//! borrowing from the input buffer; [`XmlReader`] is the owned-event
//! convenience layer on top of it (decoded `String` names, attributes,
//! and text), with an error lattice identical to the borrowing reader's.

use crate::stream::{find_byte, StreamEvent, StreamReader};
use std::borrow::Cow;

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` — for self-closing tags, an [`XmlEvent::End`]
    /// with the same name is synthesized immediately after.
    Start {
        /// The element name (namespace prefixes are kept verbatim).
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
    },
    /// `</name>`.
    End {
        /// The element name.
        name: String,
    },
    /// Character data between tags, entity-decoded. Whitespace-only text
    /// is *not* suppressed; callers decide.
    Text(String),
}

/// Errors from the XML tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// Document ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of.
        context: &'static str,
    },
    /// A malformed construct at the given byte offset.
    Malformed {
        /// Byte offset in the source.
        offset: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// An unknown `&entity;` reference.
    UnknownEntity {
        /// The entity name (without `&`/`;`).
        entity: String,
    },
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// Name that was open.
        expected: String,
        /// Name that was found.
        found: String,
    },
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => write!(f, "unexpected eof in {context}"),
            XmlError::Malformed { offset, reason } => {
                write!(f, "{reason} at byte {offset}")
            }
            XmlError::UnknownEntity { entity } => write!(f, "unknown entity &{entity};"),
            XmlError::MismatchedTag { expected, found } => {
                write!(f, "mismatched tag: expected </{expected}>, found </{found}>")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// A pull parser yielding owned [`XmlEvent`]s over a `&str`.
///
/// This is a thin decoding wrapper over [`StreamReader`]: every event
/// the borrowing reader yields is materialized into owned `String`s
/// with entities decoded. Use [`StreamReader`] directly when the
/// allocations matter.
///
/// # Examples
///
/// ```
/// use gpxfile::xml::{XmlEvent, XmlReader};
///
/// let mut r = XmlReader::new("<a x=\"1\"><b/>hi &amp; bye</a>");
/// let mut names = Vec::new();
/// while let Some(event) = r.next_event()? {
///     if let XmlEvent::Start { name, .. } = event {
///         names.push(name);
///     }
/// }
/// assert_eq!(names, ["a", "b"]);
/// # Ok::<(), gpxfile::xml::XmlError>(())
/// ```
#[derive(Debug)]
pub struct XmlReader<'a> {
    inner: StreamReader<'a>,
}

impl<'a> XmlReader<'a> {
    /// Creates a reader over an XML document.
    pub fn new(src: &'a str) -> Self {
        Self { inner: StreamReader::new(src) }
    }

    /// Current byte offset (for diagnostics).
    pub fn offset(&self) -> usize {
        self.inner.offset()
    }

    /// Returns the next event, or `None` at end of a well-formed document.
    ///
    /// # Errors
    ///
    /// Any [`XmlError`]; after an error, the reader state is unspecified.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        Ok(match self.inner.next_event()? {
            None => None,
            Some(StreamEvent::Start { name, attrs }) => {
                let attributes = attrs
                    .iter()
                    .map(|&(k, v)| Ok((k.to_owned(), decode_entities(v)?.into_owned())))
                    .collect::<Result<Vec<_>, XmlError>>()?;
                Some(XmlEvent::Start { name: name.to_owned(), attributes })
            }
            Some(StreamEvent::End { name }) => Some(XmlEvent::End { name: name.to_owned() }),
            Some(StreamEvent::Text(t)) => Some(XmlEvent::Text(decode_entities(t)?.into_owned())),
        })
    }
}

/// Resolves one entity body (the text between `&` and `;`) to its
/// character, or `None` when the reference is unknown/invalid.
fn resolve_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ if entity.starts_with("#x") || entity.starts_with("#X") => {
            u32::from_str_radix(&entity[2..], 16).ok().and_then(char::from_u32)
        }
        _ if entity.starts_with('#') => entity[1..].parse::<u32>().ok().and_then(char::from_u32),
        _ => None,
    }
}

/// Validates every `&entity;` reference in `s` without building the
/// decoded text — the streaming reader's scan-time half of
/// [`decode_entities`], producing the identical errors.
///
/// # Errors
///
/// [`XmlError::UnknownEntity`] exactly when [`decode_entities`] would
/// fail on the same input.
pub fn check_entities(s: &str) -> Result<(), XmlError> {
    let mut rest = s;
    while let Some(i) = find_byte(rest.as_bytes(), b'&') {
        rest = &rest[i + 1..];
        let Some(j) = rest.find(';') else {
            return Err(XmlError::UnknownEntity { entity: rest.chars().take(8).collect() });
        };
        let entity = &rest[..j];
        if resolve_entity(entity).is_none() {
            return Err(XmlError::UnknownEntity { entity: entity.to_owned() });
        }
        rest = &rest[j + 1..];
    }
    Ok(())
}

/// Decodes the five predefined entities plus decimal/hex character
/// refs. Returns the input borrowed (no allocation) when it contains no
/// `&` at all.
///
/// # Errors
///
/// [`XmlError::UnknownEntity`] for unresolvable references.
pub fn decode_entities(s: &str) -> Result<Cow<'_, str>, XmlError> {
    if find_byte(s.as_bytes(), b'&').is_none() {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = find_byte(rest.as_bytes(), b'&') {
        out.push_str(&rest[..i]);
        rest = &rest[i + 1..];
        let Some(j) = rest.find(';') else {
            return Err(XmlError::UnknownEntity { entity: rest.chars().take(8).collect() });
        };
        let entity = &rest[..j];
        match resolve_entity(entity) {
            Some(c) => out.push(c),
            None => return Err(XmlError::UnknownEntity { entity: entity.to_owned() }),
        }
        rest = &rest[j + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

/// Encodes text content for embedding in XML. Returns the input
/// borrowed (no allocation) when nothing needs escaping.
pub fn encode_entities(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Result<Vec<XmlEvent>, XmlError> {
        let mut r = XmlReader::new(src);
        let mut out = Vec::new();
        while let Some(e) = r.next_event()? {
            out.push(e);
        }
        Ok(out)
    }

    #[test]
    fn parses_simple_document() {
        let ev = events(r#"<?xml version="1.0"?><a x="1"><b/>text</a>"#).unwrap();
        assert_eq!(ev.len(), 5);
        assert!(matches!(&ev[0], XmlEvent::Start { name, attributes }
            if name == "a" && attributes == &[("x".to_owned(), "1".to_owned())]));
        assert!(matches!(&ev[1], XmlEvent::Start { name, .. } if name == "b"));
        assert!(matches!(&ev[2], XmlEvent::End { name } if name == "b"));
        assert!(matches!(&ev[3], XmlEvent::Text(t) if t == "text"));
        assert!(matches!(&ev[4], XmlEvent::End { name } if name == "a"));
    }

    #[test]
    fn skips_comments_and_doctype() {
        let ev = events("<!DOCTYPE gpx><!-- hi --><a></a>").unwrap();
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn decodes_entities_in_text_and_attrs() {
        let ev = events(r#"<a t="&lt;&amp;&gt;">x &#65;&#x42; y</a>"#).unwrap();
        assert!(matches!(&ev[0], XmlEvent::Start { attributes, .. }
            if attributes[0].1 == "<&>"));
        assert!(matches!(&ev[1], XmlEvent::Text(t) if t == "x AB y"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(events("<a><b></a></b>"), Err(XmlError::MismatchedTag { .. })));
    }

    #[test]
    fn rejects_truncated_document() {
        assert!(matches!(events("<a><b>"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(events("<a x="), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(matches!(events("<a>&nope;</a>"), Err(XmlError::UnknownEntity { .. })));
    }

    #[test]
    fn rejects_stray_close() {
        assert!(events("</a>").is_err());
    }

    #[test]
    fn entity_roundtrip() {
        let original = r#"5 < 6 & "quotes" 'apos' > 4"#;
        assert_eq!(decode_entities(&encode_entities(original)).unwrap(), original);
    }

    #[test]
    fn attributes_allow_single_quotes() {
        let ev = events("<a x='1 2'/>").unwrap();
        assert!(matches!(&ev[0], XmlEvent::Start { attributes, .. }
            if attributes[0].1 == "1 2"));
    }

    #[test]
    fn codec_borrows_when_nothing_to_do() {
        assert!(matches!(decode_entities("plain text").unwrap(), Cow::Borrowed(_)));
        assert!(matches!(encode_entities("plain text"), Cow::Borrowed(_)));
        assert!(matches!(decode_entities("a &amp; b").unwrap(), Cow::Owned(_)));
        assert!(matches!(encode_entities("a & b"), Cow::Owned(_)));
    }

    #[test]
    fn check_matches_decode() {
        for s in ["plain", "a &amp; b", "&bogus;", "&unterminated", "&#65;", "&#x4G;", "&#xffffffff;"] {
            assert_eq!(check_entities(s).err(), decode_entities(s).err(), "on {s:?}");
        }
    }
}
