//! A minimal, dependency-free XML pull parser.
//!
//! Supports the subset of XML that GPX documents use: the XML
//! declaration, comments, elements with attributes, self-closing tags,
//! character data, and the five predefined entities. It does **not**
//! support DTDs, CDATA sections, processing instructions beyond the
//! declaration, or namespaces beyond treating prefixed names opaquely —
//! none of which occur in fitness-tracker GPX exports.

/// One parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" ...>` — for self-closing tags, an [`XmlEvent::End`]
    /// with the same name is synthesized immediately after.
    Start {
        /// The element name (namespace prefixes are kept verbatim).
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
    },
    /// `</name>`.
    End {
        /// The element name.
        name: String,
    },
    /// Character data between tags, entity-decoded. Whitespace-only text
    /// is *not* suppressed; callers decide.
    Text(String),
}

/// Errors from the XML tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// Document ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of.
        context: &'static str,
    },
    /// A malformed construct at the given byte offset.
    Malformed {
        /// Byte offset in the source.
        offset: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// An unknown `&entity;` reference.
    UnknownEntity {
        /// The entity name (without `&`/`;`).
        entity: String,
    },
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// Name that was open.
        expected: String,
        /// Name that was found.
        found: String,
    },
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => write!(f, "unexpected eof in {context}"),
            XmlError::Malformed { offset, reason } => {
                write!(f, "{reason} at byte {offset}")
            }
            XmlError::UnknownEntity { entity } => write!(f, "unknown entity &{entity};"),
            XmlError::MismatchedTag { expected, found } => {
                write!(f, "mismatched tag: expected </{expected}>, found </{found}>")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// A pull parser yielding [`XmlEvent`]s over a `&str`.
///
/// # Examples
///
/// ```
/// use gpxfile::xml::{XmlEvent, XmlReader};
///
/// let mut r = XmlReader::new("<a x=\"1\"><b/>hi &amp; bye</a>");
/// let mut names = Vec::new();
/// while let Some(event) = r.next_event()? {
///     if let XmlEvent::Start { name, .. } = event {
///         names.push(name);
///     }
/// }
/// assert_eq!(names, ["a", "b"]);
/// # Ok::<(), gpxfile::xml::XmlError>(())
/// ```
#[derive(Debug)]
pub struct XmlReader<'a> {
    src: &'a [u8],
    pos: usize,
    /// Stack of open element names (for well-formedness checking).
    stack: Vec<String>,
    /// Synthesized `End` event pending after a self-closing tag.
    pending_end: Option<String>,
}

impl<'a> XmlReader<'a> {
    /// Creates a reader over an XML document.
    pub fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, stack: Vec::new(), pending_end: None }
    }

    /// Current byte offset (for diagnostics).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Returns the next event, or `None` at end of a well-formed document.
    ///
    /// # Errors
    ///
    /// Any [`XmlError`]; after an error, the reader state is unspecified.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Some(XmlEvent::End { name }));
        }
        loop {
            if self.pos >= self.src.len() {
                if self.stack.pop().is_some() {
                    return Err(XmlError::UnexpectedEof { context: "unclosed element" });
                }
                return Ok(None);
            }
            if self.src[self.pos] == b'<' {
                if self.starts_with("<?") {
                    self.skip_until("?>")?;
                    continue;
                }
                if self.starts_with("<!--") {
                    self.skip_until("-->")?;
                    continue;
                }
                if self.starts_with("<!") {
                    // DOCTYPE etc. — skip to the matching '>'.
                    self.skip_until(">")?;
                    continue;
                }
                if self.starts_with("</") {
                    return self.parse_end_tag().map(Some);
                }
                return self.parse_start_tag().map(Some);
            }
            // Text node.
            let start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos] != b'<' {
                self.pos += 1;
            }
            let raw = std::str::from_utf8(&self.src[start..self.pos])
                .map_err(|_| XmlError::Malformed { offset: start, reason: "invalid utf-8" })?;
            if self.stack.is_empty() && raw.trim().is_empty() {
                continue; // whitespace between prolog and root
            }
            return Ok(Some(XmlEvent::Text(decode_entities(raw)?)));
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        let hay = &self.src[self.pos..];
        match find_sub(hay, end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof { context: "markup" }),
        }
    }

    fn parse_end_tag(&mut self) -> Result<XmlEvent, XmlError> {
        self.pos += 2; // consume "</"
        let name = self.read_name()?;
        self.skip_ws();
        if self.pos >= self.src.len() || self.src[self.pos] != b'>' {
            return Err(XmlError::Malformed { offset: self.pos, reason: "expected '>'" });
        }
        self.pos += 1;
        match self.stack.pop() {
            Some(open) if open == name => Ok(XmlEvent::End { name }),
            Some(open) => Err(XmlError::MismatchedTag { expected: open, found: name }),
            None => Err(XmlError::Malformed {
                offset: self.pos,
                reason: "closing tag with no open element",
            }),
        }
    }

    fn parse_start_tag(&mut self) -> Result<XmlEvent, XmlError> {
        self.pos += 1; // consume '<'
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            let Some(&b) = self.src.get(self.pos) else {
                return Err(XmlError::UnexpectedEof { context: "start tag" });
            };
            match b {
                b'>' => {
                    self.pos += 1;
                    self.stack.push(name.clone());
                    return Ok(XmlEvent::Start { name, attributes });
                }
                b'/' => {
                    if !self.starts_with("/>") {
                        return Err(XmlError::Malformed {
                            offset: self.pos,
                            reason: "expected '/>'",
                        });
                    }
                    self.pos += 2;
                    self.stack.push(name.clone());
                    self.pending_end = Some(name.clone());
                    return Ok(XmlEvent::Start { name, attributes });
                }
                _ => {
                    let key = self.read_name()?;
                    self.skip_ws();
                    if self.src.get(self.pos) != Some(&b'=') {
                        return Err(XmlError::Malformed {
                            offset: self.pos,
                            reason: "expected '=' in attribute",
                        });
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.src.get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        None => {
                            return Err(XmlError::UnexpectedEof { context: "attribute value" })
                        }
                        _ => {
                            return Err(XmlError::Malformed {
                                offset: self.pos,
                                reason: "expected quoted attribute value",
                            })
                        }
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(XmlError::UnexpectedEof { context: "attribute value" });
                    }
                    let raw = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| {
                        XmlError::Malformed { offset: start, reason: "invalid utf-8" }
                    })?;
                    self.pos += 1; // closing quote
                    attributes.push((key, decode_entities(raw)?));
                }
            }
        }
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.src.len() && is_name_byte(self.src[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Malformed { offset: start, reason: "expected a name" });
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| XmlError::Malformed { offset: start, reason: "invalid utf-8" })?
            .to_owned())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.')
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Decodes the five predefined entities plus decimal/hex character refs.
pub fn decode_entities(s: &str) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i + 1..];
        let Some(j) = rest.find(';') else {
            return Err(XmlError::UnknownEntity { entity: rest.chars().take(8).collect() });
        };
        let entity = &rest[..j];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError::UnknownEntity { entity: entity.to_owned() })?;
                out.push(cp);
            }
            _ if entity.starts_with('#') => {
                let cp = entity[1..]
                    .parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError::UnknownEntity { entity: entity.to_owned() })?;
                out.push(cp);
            }
            _ => return Err(XmlError::UnknownEntity { entity: entity.to_owned() }),
        }
        rest = &rest[j + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Encodes text content for embedding in XML.
pub fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Result<Vec<XmlEvent>, XmlError> {
        let mut r = XmlReader::new(src);
        let mut out = Vec::new();
        while let Some(e) = r.next_event()? {
            out.push(e);
        }
        Ok(out)
    }

    #[test]
    fn parses_simple_document() {
        let ev = events(r#"<?xml version="1.0"?><a x="1"><b/>text</a>"#).unwrap();
        assert_eq!(ev.len(), 5);
        assert!(matches!(&ev[0], XmlEvent::Start { name, attributes }
            if name == "a" && attributes == &[("x".to_owned(), "1".to_owned())]));
        assert!(matches!(&ev[1], XmlEvent::Start { name, .. } if name == "b"));
        assert!(matches!(&ev[2], XmlEvent::End { name } if name == "b"));
        assert!(matches!(&ev[3], XmlEvent::Text(t) if t == "text"));
        assert!(matches!(&ev[4], XmlEvent::End { name } if name == "a"));
    }

    #[test]
    fn skips_comments_and_doctype() {
        let ev = events("<!DOCTYPE gpx><!-- hi --><a></a>").unwrap();
        assert_eq!(ev.len(), 2);
    }

    #[test]
    fn decodes_entities_in_text_and_attrs() {
        let ev = events(r#"<a t="&lt;&amp;&gt;">x &#65;&#x42; y</a>"#).unwrap();
        assert!(matches!(&ev[0], XmlEvent::Start { attributes, .. }
            if attributes[0].1 == "<&>"));
        assert!(matches!(&ev[1], XmlEvent::Text(t) if t == "x AB y"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(events("<a><b></a></b>"), Err(XmlError::MismatchedTag { .. })));
    }

    #[test]
    fn rejects_truncated_document() {
        assert!(matches!(events("<a><b>"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(events("<a x="), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(matches!(events("<a>&nope;</a>"), Err(XmlError::UnknownEntity { .. })));
    }

    #[test]
    fn rejects_stray_close() {
        assert!(events("</a>").is_err());
    }

    #[test]
    fn entity_roundtrip() {
        let original = r#"5 < 6 & "quotes" 'apos' > 4"#;
        assert_eq!(decode_entities(&encode_entities(original)).unwrap(), original);
    }

    #[test]
    fn attributes_allow_single_quotes() {
        let ev = events("<a x='1 2'/>").unwrap();
        assert!(matches!(&ev[0], XmlEvent::Start { attributes, .. }
            if attributes[0].1 == "1 2"));
    }
}
