//! Minimal dense `f32` tensors for the from-scratch neural networks.
//!
//! Only what [`neuralnet`](../neuralnet/index.html) needs: row-major
//! storage, 2-D matrix multiplication, element-wise arithmetic, and
//! shape bookkeeping. Not a general array library by design — the
//! public surface is small enough to audit and fast enough (with the
//! workspace's optimized dev profile) to train the paper's CNN.
//!
//! # Examples
//!
//! ```
//! use tensorlite::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = checked_len(shape);
        Self { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = checked_len(shape);
        Self { data: vec![value; n], shape: shape.to_vec() }
    }

    /// Wraps a vector with a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n = checked_len(shape);
        assert_eq!(data.len(), n, "data length {} != shape product {n}", data.len());
        Self { data, shape: shape.to_vec() }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: &[usize]) -> Self {
        let n = checked_len(shape);
        assert_eq!(self.data.len(), n, "cannot reshape {:?} to {shape:?}", self.shape);
        self.shape = shape.to_vec();
        self
    }

    /// 2-D matrix multiplication: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Runs the register-blocked kernel (see [`Tensor::matmul_reference`]
    /// for the oracle it is tested against). Every output element is a
    /// single accumulator over `p = 0..k` in ascending order, so the
    /// result is bit-identical to the naive triple loop.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = matmul_dims(self, other);
        let mut out = vec![0.0f32; m * n];
        matmul_blocked(&self.data, &other.data, &mut out, k, n);
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Fused `self × other + bias`, with `bias` added per output column
    /// after the full accumulation — bit-identical to `matmul` followed
    /// by a broadcast row-wise bias add, without the extra pass.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or `bias.len() != n`.
    pub fn matmul_add_bias(&self, other: &Tensor, bias: &[f32]) -> Tensor {
        let (m, k, n) = matmul_dims(self, other);
        assert_eq!(bias.len(), n, "bias width mismatch");
        let mut out = vec![0.0f32; m * n];
        matmul_blocked(&self.data, &other.data, &mut out, k, n);
        for row in out.chunks_exact_mut(n) {
            for (d, &b) in row.iter_mut().zip(bias) {
                *d += b;
            }
        }
        Tensor { data: out, shape: vec![m, n] }
    }

    /// `selfᵀ × other` without materializing the transpose:
    /// `[k, m]ᵀ × [k, n] → [m, n]`.
    ///
    /// Streams both operands row-by-row (`p` outermost), accumulating
    /// each output element in ascending-`p` order — bit-identical to
    /// `self.transposed().matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D sharing their first dim.
    pub fn matmul_at(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "leading dimensions {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let arow = &self.data[p * m..(p + 1) * m];
            let brow = &other.data[p * n..(p + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(brow) {
                    *d += a * b;
                }
            }
        }
        Tensor { data: out, shape: vec![m, n] }
    }

    /// `self × otherᵀ` without materializing the transpose:
    /// `[m, k] × [n, k]ᵀ → [m, n]`.
    ///
    /// Row-against-row dot products (both contiguous), eight
    /// independent accumulators at a time, each in ascending-`p` order —
    /// bit-identical to `self.matmul(&other.transposed())`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D sharing their second dim.
    pub fn matmul_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions {k} vs {k2}");
        const JB: usize = 8;
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let dst = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while j + JB <= n {
                let mut acc = [0.0f32; JB];
                for (p, &a) in arow.iter().enumerate() {
                    for (l, slot) in acc.iter_mut().enumerate() {
                        *slot += a * other.data[(j + l) * k + p];
                    }
                }
                dst[j..j + JB].copy_from_slice(&acc);
                j += JB;
            }
            for (jj, slot) in dst.iter_mut().enumerate().skip(j) {
                let brow = &other.data[jj * k..(jj + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *slot = acc;
            }
        }
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Textbook ikj triple-loop product — the correctness oracle the
    /// blocked kernel is tested against (bit-for-bit; both accumulate
    /// each output element in ascending-`p` order).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = matmul_dims(self, other);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                let row = &other.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        Tensor { data: out, shape: vec![m, n] }
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires 2-D");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { data: out, shape: vec![n, m] }
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Builds a `[rows.len(), dim]` matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `dim` or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Tensor {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            assert_eq!(r.len(), dim, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { data, shape: vec![rows.len(), dim] }
    }

    /// The `i`-th row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless 2-D and `i` is in range.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row requires 2-D");
        let n = self.shape[1];
        &self.data[i * n..(i + 1) * n]
    }
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.shape.len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape.len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "inner dimensions {k} vs {k2}");
    (m, k, n)
}

/// Rows per register tile.
const MR: usize = 4;
/// Column lanes per register tile (one f32 SIMD vector on AVX2).
const NR: usize = 8;

/// Register-blocked matmul with a packed B panel.
///
/// The `j` loop is outermost: each `k × NR` column panel of B is copied
/// once into a contiguous, L1-resident buffer and reused by every
/// `MR`-row tile of A, so the inner loop streams both operands
/// sequentially instead of striding B by `n` (the naive loop's other
/// cost is re-loading and re-storing the output row on every `p`; here
/// the `MR·NR` accumulators live in registers across the whole `k`
/// loop). Packing is pure data movement and each accumulator still sums
/// `p = 0..k` in ascending order, which keeps the result bit-identical
/// to the naive kernel — blocking only over `i`/`j` reorders nothing.
///
/// The last `n % NR` columns reuse the same tile kernel on a
/// zero-padded panel: the padded lanes compute sums nobody reads, and
/// only the real `jw` lanes are stored back, so every written value
/// has the same operands in the same order as a full panel.
fn matmul_blocked(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let mut panel = vec![0.0f32; k * NR];
    let mut jb = 0;
    while jb + NR <= n {
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            dst.copy_from_slice(&b[p * n + jb..p * n + jb + NR]);
        }
        matmul_panel(a, &panel, out, k, n, jb, NR);
        jb += NR;
    }
    // The last n % NR columns reuse the same tile kernel on a
    // zero-padded panel: the padded lanes compute sums nobody reads,
    // and only the real `jw` lanes are stored back, so every written
    // value has the same operands in the same order as a full panel.
    if jb < n {
        let jw = n - jb;
        for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
            dst[..jw].copy_from_slice(&b[p * n + jb..p * n + jb + jw]);
            dst[jw..].fill(0.0);
        }
        matmul_panel(a, &panel, out, k, n, jb, jw);
    }
}

/// One packed `k × NR` panel of B against all rows of A, storing output
/// columns `jb..jb + jw` (`jw == NR` except for the rightmost panel).
fn matmul_panel(a: &[f32], panel: &[f32], out: &mut [f32], k: usize, n: usize, jb: usize, jw: usize) {
    let m = a.len() / k;
    let mut ib = 0;
    while ib + MR <= m {
        let (a0, rest) = a[ib * k..].split_at(k);
        let (a1, rest) = rest.split_at(k);
        let (a2, rest) = rest.split_at(k);
        let a3 = &rest[..k];
        let mut acc = [[0.0f32; NR]; MR];
        let lanes = a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR));
        for ((((&v0, &v1), &v2), &v3), brow) in lanes {
            let av = [v0, v1, v2, v3];
            for (row_acc, &a_val) in acc.iter_mut().zip(&av) {
                for (slot, &bv) in row_acc.iter_mut().zip(brow) {
                    *slot += a_val * bv;
                }
            }
        }
        for (r, row_acc) in acc.iter().enumerate() {
            out[(ib + r) * n + jb..(ib + r) * n + jb + jw].copy_from_slice(&row_acc[..jw]);
        }
        ib += MR;
    }
    // Leftover rows of this panel: 1 × NR tiles.
    for i in ib..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut acc = [0.0f32; NR];
        for (&av, brow) in arow.iter().zip(panel.chunks_exact(NR)) {
            for (slot, &bv) in acc.iter_mut().zip(brow) {
                *slot += av * bv;
            }
        }
        out[i * n + jb..i * n + jb + jw].copy_from_slice(&acc[..jw]);
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "shape must have at least one dimension");
    shape.iter().fold(1usize, |acc, &d| {
        assert!(d > 0, "zero dimension in shape");
        acc.checked_mul(d).expect("shape overflow")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).data(), a.data());
        assert_eq!(Tensor::eye(2).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_dims() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let t = a.transposed();
        assert_eq!(t.shape(), &[4, 3]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn transpose_matches_matmul_transposition() {
        // (AB)^T == B^T A^T
        let a = Tensor::from_vec((0..6).map(|i| i as f32 * 0.5).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[3, 4]);
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]);
        let b = a.clone().reshaped(&[4, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.shape(), &[4, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_wrong_count() {
        Tensor::zeros(&[2, 2]).reshaped(&[3, 2]);
    }

    #[test]
    fn from_rows_and_row_access() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Tensor::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::full(&[3], 2.0);
        a.add_assign(&Tensor::full(&[3], 1.0));
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 1.5, 1.5]);
        assert_eq!(a.map(|x| x * 2.0).sum(), 9.0);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dimension_rejected() {
        Tensor::zeros(&[2, 0]);
    }
}
