//! Property-based tests for tensor algebra identities.

use proptest::prelude::*;
use tensorlite::Tensor;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]))
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.data().iter().zip(b.data()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #[test]
    fn matmul_is_associative(a in arb_matrix(3, 4), b in arb_matrix(4, 2), c in arb_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(close(&left, &right, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition(a in arb_matrix(3, 3), b in arb_matrix(3, 3), c in arb_matrix(3, 3)) {
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(close(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn transpose_is_an_involution(a in arb_matrix(4, 7)) {
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn identity_is_neutral(a in arb_matrix(5, 5)) {
        prop_assert!(close(&a.matmul(&Tensor::eye(5)), &a, 1e-6));
        prop_assert!(close(&Tensor::eye(5).matmul(&a), &a, 1e-6));
    }

    #[test]
    fn reshape_preserves_sum(a in arb_matrix(4, 6)) {
        let sum = a.sum();
        let r = a.reshaped(&[2, 12]);
        prop_assert!((r.sum() - sum).abs() < 1e-4);
    }

    #[test]
    fn scale_is_linear(a in arb_matrix(3, 3), s in -3.0f32..3.0) {
        let mut scaled = a.clone();
        scaled.scale(s);
        prop_assert!((scaled.sum() - a.sum() * s).abs() < 1e-3);
    }

    #[test]
    fn rows_roundtrip(rows in prop::collection::vec(
        prop::collection::vec(-2.0f32..2.0, 4), 1..6)) {
        let t = Tensor::from_rows(&rows);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(t.row(i), r.as_slice());
        }
    }

    // The blocked kernel must be a drop-in replacement for the naive
    // triple loop: zero ULP of divergence, because the experiment
    // pipeline's determinism contract compares output bytes.
    #[test]
    fn blocked_matmul_matches_reference_bitwise(
        m in 1usize..13, k in 1usize..17, n in 1usize..21, seed in 0u64..64,
    ) {
        let gen = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64 + 1)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(seed.wrapping_mul(salt));
                    ((h >> 40) as f32 / 8_388_608.0) - 1.0
                })
                .collect()
        };
        let a = Tensor::from_vec(gen(m * k, 3), &[m, k]);
        let b = Tensor::from_vec(gen(k * n, 7), &[k, n]);
        let blocked = a.matmul(&b);
        let reference = a.matmul_reference(&b);
        for (x, y) in blocked.data().iter().zip(reference.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_at_matches_explicit_transpose_bitwise(
        a in arb_matrix(6, 4), b in arb_matrix(6, 5),
    ) {
        let fused = a.matmul_at(&b);
        let explicit = a.transposed().matmul_reference(&b);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose_bitwise(
        a in arb_matrix(5, 7), b in arb_matrix(4, 7),
    ) {
        let fused = a.matmul_bt(&b);
        let explicit = a.matmul_reference(&b.transposed());
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_add_bias_matches_two_step_bitwise(
        a in arb_matrix(4, 6), b in arb_matrix(6, 3),
        bias in prop::collection::vec(-2.0f32..2.0, 3),
    ) {
        let fused = a.matmul_add_bias(&b, &bias);
        let mut two_step = a.matmul_reference(&b);
        for (e, slot) in two_step.data_mut().iter_mut().enumerate() {
            *slot += bias[e % 3];
        }
        for (x, y) in fused.data().iter().zip(two_step.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
