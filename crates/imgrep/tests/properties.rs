//! Property-based tests for the image-like representation.

use imgrep::{elevation_band, render, resample_mean, ImageConfig};
use proptest::prelude::*;

fn arb_signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..3000.0, 0..400)
}

proptest! {
    #[test]
    fn resample_always_returns_n(signal in arb_signal(), n in 1usize..256) {
        if signal.is_empty() {
            prop_assert!(resample_mean(&signal, n).is_empty());
        } else {
            prop_assert_eq!(resample_mean(&signal, n).len(), n);
        }
    }

    #[test]
    fn resample_stays_within_signal_range(
        signal in prop::collection::vec(0.0f64..3000.0, 1..400),
        n in 1usize..256,
    ) {
        let lo = signal.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = signal.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in resample_mean(&signal, n) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn render_pixels_are_normalized(signal in arb_signal()) {
        let img = render(&signal, &ImageConfig::default());
        prop_assert_eq!(img.pixels.len(), 3 * 32 * 32);
        prop_assert!(img.pixels.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn nonempty_signals_draw_something(signal in prop::collection::vec(0.0f64..3000.0, 1..400)) {
        let img = render(&signal, &ImageConfig::default());
        prop_assert!(img.coverage() > 0.0);
    }

    #[test]
    fn bands_are_monotone_in_elevation(a in 0.0f64..5000.0, b in 0.0f64..5000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(elevation_band(lo) <= elevation_band(hi));
    }

    #[test]
    fn rendering_is_translation_sensitive_only_via_band(
        signal in prop::collection::vec(0.0f64..50.0, 10..200),
        shift in 0.0f64..2.0,
    ) {
        // Per-signal scaling: shifting the whole signal by a small amount
        // that stays within the same band must not change the geometry.
        let cfg = ImageConfig::default();
        let base = render(&signal, &cfg);
        let shifted: Vec<f64> = signal.iter().map(|v| v + shift).collect();
        let moved = render(&shifted, &cfg);
        if base.band == moved.band {
            prop_assert_eq!(base.pixels, moved.pixels);
        }
    }

    #[test]
    fn custom_dimensions_are_respected(
        signal in prop::collection::vec(0.0f64..100.0, 1..100),
        w in 4usize..64,
        h in 4usize..64,
    ) {
        let cfg = ImageConfig { width: w, height: h, ..Default::default() };
        let img = render(&signal, &cfg);
        prop_assert_eq!(img.width, w);
        prop_assert_eq!(img.height, h);
        prop_assert_eq!(img.pixels.len(), 3 * w * h);
    }
}
