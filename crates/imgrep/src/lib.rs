//! Image-like representation of elevation profiles (paper §III-B2).
//!
//! "In image-like transformation, the elevation signals are drawn as
//! line graphs. To draw a line graph, the maximum and minimum values for
//! y-axis are set to be the extremes of each elevation signal, and the
//! lines are colored to encode the value interval in which elevation
//! signal ranges. ... We use 200 elevation values for each, obtained by
//! dividing the elevation signal into equal-sized parts."
//!
//! The design packs two signals into one image: the *shape* of the
//! profile (normalized to the image height, so small fluctuations stay
//! visible) and its *absolute elevation band* (the line colour), which
//! is what lets a CNN separate flat-but-high Minneapolis from
//! flat-and-low Miami.
//!
//! # Examples
//!
//! ```
//! use imgrep::{ImageConfig, render};
//!
//! let profile: Vec<f64> = (0..500).map(|i| 20.0 + (i as f64 * 0.05).sin() * 5.0).collect();
//! let img = render(&profile, &ImageConfig::default());
//! assert_eq!(img.pixels.len(), 3 * 32 * 32);
//! assert!(img.pixels.iter().any(|&p| p > 0.0)); // something was drawn
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod palette;
mod raster;
mod resample;

pub use palette::{color_for_band, elevation_band, Rgb, ELEVATION_BANDS};
pub use raster::{render, ElevationImage, ImageConfig};
pub use resample::resample_mean;
