//! Line-graph rasterization into CNN-ready images.

use crate::palette::{color_for_band, elevation_band, Rgb};
use crate::resample::resample_mean;
use serde::{Deserialize, Serialize};

/// Rendering configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageConfig {
    /// Number of resampled elevation values (the paper uses 200).
    pub resample_points: usize,
    /// Image width in pixels (the paper's CNN consumes 32×32).
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// When `true` (the paper's choice), the y-axis extremes are the
    /// *signal's own* min/max; the absolute band is carried by colour.
    /// `false` uses a fixed global range — the alternative examined in
    /// the `ablation_image_scale` bench.
    pub per_signal_scale: bool,
    /// Fixed global y-range used when `per_signal_scale` is `false`.
    pub global_range: (f64, f64),
    /// When `true` (the paper's choice), the line colour encodes the
    /// elevation band; `false` draws monochrome white lines — the
    /// alternative the paper examined and rejected ("the lines ... are
    /// colored to represent the elevation interval"), compared in the
    /// `ablation_image_style` bench.
    pub colored: bool,
}

impl Default for ImageConfig {
    fn default() -> Self {
        Self {
            resample_points: 200,
            width: 32,
            height: 32,
            per_signal_scale: true,
            global_range: (0.0, 3_000.0),
            colored: true,
        }
    }
}

impl ImageConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint (zero dimensions or an
    /// inverted global range).
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.height == 0 {
            return Err("image dimensions must be nonzero".into());
        }
        if self.resample_points < 2 {
            return Err("need at least two resample points".into());
        }
        if self.global_range.0 >= self.global_range.1 {
            return Err("global range must be ordered".into());
        }
        Ok(())
    }
}

/// A rendered elevation image in CHW layout (3 × height × width), values
/// in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElevationImage {
    /// Pixel data, `pixels[c * H * W + y * W + x]`.
    pub pixels: Vec<f32>,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// The elevation band that chose the line colour.
    pub band: usize,
}

impl ElevationImage {
    /// The pixel at `(x, y)` as RGB.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let hw = self.height * self.width;
        let i = y * self.width + x;
        Rgb { r: self.pixels[i], g: self.pixels[hw + i], b: self.pixels[2 * hw + i] }
    }

    /// Fraction of pixels that are not background.
    pub fn coverage(&self) -> f64 {
        let hw = self.height * self.width;
        let lit = (0..hw)
            .filter(|&i| {
                self.pixels[i] > 0.0 || self.pixels[hw + i] > 0.0 || self.pixels[2 * hw + i] > 0.0
            })
            .count();
        lit as f64 / hw as f64
    }
}

/// Renders an elevation profile as a coloured line graph.
///
/// The signal is resampled to `config.resample_points` values, scaled to
/// the image height (per-signal extremes by default), and drawn as a
/// connected line whose colour encodes the signal's elevation band.
/// Empty signals render as an all-background image with band 0.
///
/// # Panics
///
/// Panics if `config` fails [`ImageConfig::validate`].
pub fn render(signal: &[f64], config: &ImageConfig) -> ElevationImage {
    if let Err(e) = config.validate() {
        panic!("invalid image config: {e}");
    }
    let (w, h) = (config.width, config.height);
    let mut img = ElevationImage { pixels: vec![0.0; 3 * w * h], width: w, height: h, band: 0 };
    if signal.is_empty() {
        return img;
    }
    let values = resample_mean(signal, config.resample_points);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    img.band = elevation_band(mean);
    let color = if config.colored {
        color_for_band(img.band)
    } else {
        Rgb { r: 1.0, g: 1.0, b: 1.0 }
    };

    let (lo, hi) = if config.per_signal_scale {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if (hi - lo).abs() < 1e-9 {
            (lo - 0.5, hi + 0.5) // flat signal: centre line
        } else {
            (lo, hi)
        }
    } else {
        config.global_range
    };

    // Map each resampled value to pixel coordinates.
    let to_xy = |k: usize, v: f64| -> (i64, i64) {
        let x = if values.len() == 1 {
            0.0
        } else {
            k as f64 * (w - 1) as f64 / (values.len() - 1) as f64
        };
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let y = (1.0 - t) * (h - 1) as f64; // y grows downward
        (x.round() as i64, y.round() as i64)
    };

    let mut prev = to_xy(0, values[0]);
    set_pixel(&mut img, prev.0, prev.1, color);
    for (k, &v) in values.iter().enumerate().skip(1) {
        let cur = to_xy(k, v);
        draw_line(&mut img, prev, cur, color);
        prev = cur;
    }
    img
}

fn set_pixel(img: &mut ElevationImage, x: i64, y: i64, c: Rgb) {
    if x < 0 || y < 0 || x >= img.width as i64 || y >= img.height as i64 {
        return;
    }
    let hw = img.height * img.width;
    let i = y as usize * img.width + x as usize;
    img.pixels[i] = c.r;
    img.pixels[hw + i] = c.g;
    img.pixels[2 * hw + i] = c.b;
}

/// Bresenham line drawing.
fn draw_line(img: &mut ElevationImage, from: (i64, i64), to: (i64, i64), c: Rgb) {
    let (mut x0, mut y0) = from;
    let (x1, y1) = to;
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        set_pixel(img, x0, y0, c);
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, base: f64, step: f64) -> Vec<f64> {
        (0..n).map(|i| base + i as f64 * step).collect()
    }

    #[test]
    fn rendering_is_deterministic() {
        let s = ramp(300, 10.0, 0.1);
        let cfg = ImageConfig::default();
        assert_eq!(render(&s, &cfg), render(&s, &cfg));
    }

    #[test]
    fn line_spans_full_width() {
        let img = render(&ramp(200, 5.0, 0.2), &ImageConfig::default());
        // Every column contains at least one lit pixel.
        for x in 0..img.width {
            let lit = (0..img.height).any(|y| {
                let p = img.pixel(x, y);
                p.r > 0.0 || p.g > 0.0 || p.b > 0.0
            });
            assert!(lit, "column {x} empty");
        }
    }

    #[test]
    fn monotone_ramp_draws_descending_y() {
        // Rising elevation => line goes from bottom-left to top-right.
        let img = render(&ramp(200, 0.0, 1.0), &ImageConfig::default());
        let first_col_y: Vec<usize> =
            (0..img.height).filter(|&y| img.pixel(0, y).r > 0.0 || img.pixel(0, y).g > 0.0 || img.pixel(0, y).b > 0.0).collect();
        let last_col_y: Vec<usize> =
            (0..img.height).filter(|&y| { let p = img.pixel(img.width - 1, y); p.r > 0.0 || p.g > 0.0 || p.b > 0.0 }).collect();
        assert!(first_col_y.iter().min() > last_col_y.iter().min());
    }

    #[test]
    fn flat_signal_draws_a_horizontal_line() {
        let img = render(&vec![42.0; 100], &ImageConfig::default());
        assert!(img.coverage() > 0.0);
        // All lit pixels share one row.
        let mut rows = std::collections::HashSet::new();
        for y in 0..img.height {
            for x in 0..img.width {
                let p = img.pixel(x, y);
                if p.r > 0.0 || p.g > 0.0 || p.b > 0.0 {
                    rows.insert(y);
                }
            }
        }
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn color_encodes_elevation_band() {
        let low = render(&ramp(100, 1.0, 0.01), &ImageConfig::default());
        let high = render(&ramp(100, 1_800.0, 0.01), &ImageConfig::default());
        assert_ne!(low.band, high.band);
        // Find a lit pixel in each and compare colours.
        let lit_color = |img: &ElevationImage| -> Rgb {
            for y in 0..img.height {
                for x in 0..img.width {
                    let p = img.pixel(x, y);
                    if p.r > 0.0 || p.g > 0.0 || p.b > 0.0 {
                        return p;
                    }
                }
            }
            panic!("no lit pixel");
        };
        assert_ne!(lit_color(&low), lit_color(&high));
    }

    #[test]
    fn per_signal_scale_uses_full_height() {
        // A tiny 1 m wiggle still spans the whole image height.
        let s: Vec<f64> = (0..200).map(|i| 20.0 + (i as f64 * 0.1).sin() * 0.5).collect();
        let img = render(&s, &ImageConfig::default());
        let yc: Vec<usize> = (0..img.height)
            .filter(|&y| (0..img.width).any(|x| { let p = img.pixel(x, y); p.r > 0.0 || p.g > 0.0 || p.b > 0.0 }))
            .collect();
        assert!(*yc.iter().min().unwrap() <= 1);
        assert!(*yc.iter().max().unwrap() >= img.height - 2);
    }

    #[test]
    fn global_scale_compresses_small_signals() {
        let s: Vec<f64> = (0..200).map(|i| 20.0 + (i as f64 * 0.1).sin() * 0.5).collect();
        let cfg = ImageConfig { per_signal_scale: false, ..Default::default() };
        let img = render(&s, &cfg);
        let yc: Vec<usize> = (0..img.height)
            .filter(|&y| (0..img.width).any(|x| { let p = img.pixel(x, y); p.r > 0.0 || p.g > 0.0 || p.b > 0.0 }))
            .collect();
        assert_eq!(yc.len(), 1, "20 m of 3000 m collapses to one row");
    }

    #[test]
    fn empty_signal_renders_background() {
        let img = render(&[], &ImageConfig::default());
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid image config")]
    fn rejects_zero_dimensions() {
        render(&[1.0], &ImageConfig { width: 0, ..Default::default() });
    }

    #[test]
    fn monochrome_lines_are_white_regardless_of_band() {
        let cfg = ImageConfig { colored: false, ..Default::default() };
        for base in [1.0f64, 1_800.0] {
            let img = render(&ramp(100, base, 0.01), &cfg);
            let mut found = false;
            for y in 0..img.height {
                for x in 0..img.width {
                    let p = img.pixel(x, y);
                    if p.r > 0.0 {
                        assert_eq!((p.r, p.g, p.b), (1.0, 1.0, 1.0));
                        found = true;
                    }
                }
            }
            assert!(found);
        }
    }
}
