//! Elevation-band colour encoding.

/// An RGB colour with channels in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgb {
    /// Red channel.
    pub r: f32,
    /// Green channel.
    pub g: f32,
    /// Blue channel.
    pub b: f32,
}

/// Upper edges (metres) of the elevation bands used for line colouring.
///
/// The bands are roughly logarithmic: coastal cities live in the first
/// few, mountain cities in the last. A signal's band is decided by its
/// mean elevation ("the elevation interval in which the elevation
/// profiles range").
pub const ELEVATION_BANDS: [f64; 9] =
    [5.0, 15.0, 40.0, 90.0, 180.0, 350.0, 700.0, 1_400.0, 2_800.0];

/// Distinct, well-separated colours per band (bands.len() + 1 entries).
const PALETTE: [Rgb; 10] = [
    Rgb { r: 0.12, g: 0.47, b: 0.71 }, // deep blue      (0–5 m)
    Rgb { r: 0.17, g: 0.63, b: 0.17 }, // green          (5–15 m)
    Rgb { r: 0.84, g: 0.15, b: 0.16 }, // red            (15–40 m)
    Rgb { r: 0.58, g: 0.40, b: 0.74 }, // purple         (40–90 m)
    Rgb { r: 1.00, g: 0.50, b: 0.05 }, // orange         (90–180 m)
    Rgb { r: 0.55, g: 0.34, b: 0.29 }, // brown          (180–350 m)
    Rgb { r: 0.89, g: 0.47, b: 0.76 }, // pink           (350–700 m)
    Rgb { r: 0.50, g: 0.50, b: 0.50 }, // grey           (700–1400 m)
    Rgb { r: 0.74, g: 0.74, b: 0.13 }, // olive          (1400–2800 m)
    Rgb { r: 0.09, g: 0.75, b: 0.81 }, // cyan           (2800+ m)
];

/// The band index for a signal whose mean elevation is `mean_elevation_m`.
///
/// Non-finite means are treated as 0 m (band 0).
pub fn elevation_band(mean_elevation_m: f64) -> usize {
    let e = if mean_elevation_m.is_finite() { mean_elevation_m } else { 0.0 };
    ELEVATION_BANDS.iter().position(|&edge| e < edge).unwrap_or(ELEVATION_BANDS.len())
}

/// The line colour for a band index.
///
/// # Panics
///
/// Never panics: indices beyond the last band clamp to the last colour.
pub fn color_for_band(band: usize) -> Rgb {
    PALETTE[band.min(PALETTE.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_boundaries() {
        assert_eq!(elevation_band(0.0), 0);
        assert_eq!(elevation_band(4.99), 0);
        assert_eq!(elevation_band(5.0), 1);
        assert_eq!(elevation_band(100.0), 4);
        assert_eq!(elevation_band(1_900.0), 8);
        assert_eq!(elevation_band(5_000.0), 9);
    }

    #[test]
    fn paper_cities_get_distinct_bands() {
        // Miami ~2 m, NYC ~15–25 m, Minneapolis ~255 m, Springs ~1840 m.
        let miami = elevation_band(2.5);
        let nyc = elevation_band(20.0);
        let minneapolis = elevation_band(255.0);
        let springs = elevation_band(1_840.0);
        let all = [miami, nyc, minneapolis, springs];
        let mut dedup = all.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "bands {all:?}");
    }

    #[test]
    fn colors_are_distinct_per_band() {
        for (i, a) in PALETTE.iter().enumerate() {
            for b in PALETTE.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn nan_mean_maps_to_band_zero() {
        assert_eq!(elevation_band(f64::NAN), 0);
    }

    #[test]
    fn color_for_band_clamps() {
        assert_eq!(color_for_band(999), PALETTE[PALETTE.len() - 1]);
    }
}
