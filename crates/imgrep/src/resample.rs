//! Signal resampling by equal-sized parts.

/// Resamples `signal` to exactly `n` values by "dividing the elevation
/// signal into equal-sized parts" and averaging each part.
///
/// Signals shorter than `n` are linearly interpolated instead, so mined
/// profiles (80 points) still produce the paper's 200 values.
///
/// Returns an empty vector when `signal` is empty or `n == 0`.
pub fn resample_mean(signal: &[f64], n: usize) -> Vec<f64> {
    if n == 0 || signal.is_empty() {
        return Vec::new();
    }
    if signal.len() == 1 {
        return vec![signal[0]; n];
    }
    if signal.len() >= n {
        // Mean of each equal-sized part.
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let lo = k * signal.len() / n;
            let hi = ((k + 1) * signal.len() / n).max(lo + 1);
            let part = &signal[lo..hi];
            out.push(part.iter().sum::<f64>() / part.len() as f64);
        }
        out
    } else {
        // Linear interpolation up to n points.
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let t = if n == 1 { 0.0 } else { k as f64 * (signal.len() - 1) as f64 / (n - 1) as f64 };
            let i = (t.floor() as usize).min(signal.len() - 2);
            let frac = t - i as f64;
            out.push(signal[i] * (1.0 - frac) + signal[i + 1] * frac);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsampling_averages_parts() {
        let signal = vec![1.0, 1.0, 3.0, 3.0];
        assert_eq!(resample_mean(&signal, 2), vec![1.0, 3.0]);
    }

    #[test]
    fn exact_length_is_identity() {
        let signal = vec![1.0, 2.0, 3.0];
        assert_eq!(resample_mean(&signal, 3), signal);
    }

    #[test]
    fn upsampling_interpolates_and_keeps_endpoints() {
        let signal = vec![0.0, 10.0];
        let out = resample_mean(&signal, 5);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[4], 10.0);
        assert!((out[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn preserves_mean_when_downsampling_evenly() {
        let signal: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let out = resample_mean(&signal, 50);
        let m1 = signal.iter().sum::<f64>() / 200.0;
        let m2 = out.iter().sum::<f64>() / 50.0;
        assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(resample_mean(&[], 10).is_empty());
        assert!(resample_mean(&[1.0, 2.0], 0).is_empty());
        assert_eq!(resample_mean(&[7.0], 3), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn output_length_is_always_n() {
        for len in [1usize, 2, 7, 80, 200, 555] {
            let signal: Vec<f64> = (0..len).map(|i| i as f64).collect();
            for n in [1usize, 2, 32, 200] {
                assert_eq!(resample_mean(&signal, n).len(), n, "len {len} n {n}");
            }
        }
    }
}
