//! Runs the metamorphic invariant suite against shared fixtures.
//!
//! The whole suite runs inside one `#[test]` because two invariants
//! (thread invariance, and anything ingest-batch-shaped) manipulate
//! the process-wide `ELEV_THREADS` variable; Rust runs tests in
//! threads, so spreading them across `#[test]`s would race.

use conformance::invariants::{render_outcomes, run_all, InvariantCtx};
use std::sync::Mutex;

/// Serializes the two suite runs: the thread-invariance check mutates
/// the process-wide `ELEV_THREADS` variable.
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn all_invariants_hold() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ctx = InvariantCtx::new(42);
    let outcomes = run_all(&ctx);
    println!("{}", render_outcomes(&outcomes));
    assert!(outcomes.len() >= 5, "suite must register at least five invariants");
    let failed: Vec<_> = outcomes.iter().filter(|o| !o.passed).collect();
    assert!(
        failed.is_empty(),
        "metamorphic invariants violated:\n{}",
        render_outcomes(&outcomes)
    );
}

#[test]
fn invariants_are_seed_generic() {
    // The relations are universal — they must hold at a second seed,
    // not just the golden one.
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ctx = InvariantCtx::new(7);
    let outcomes = run_all(&ctx);
    assert!(
        outcomes.iter().all(|o| o.passed),
        "invariants violated at seed 7:\n{}",
        render_outcomes(&outcomes)
    );
}
