//! The deterministic fuzz campaign: 10k seed-indexed GPX mutants
//! through the parser and the ingestion pipeline, with the error-class
//! histogram as the coverage proxy and `try_map` as the panic
//! isolation boundary.

use conformance::fuzz::{
    classify, classify_http, classify_stream, connfault_request, minimize, mutate, mutate_http,
    run_campaign, run_connfault_campaign, run_http_campaign, run_stream_parity_campaign,
    FuzzConfig,
};
use std::time::Instant;

#[test]
fn campaign_runs_clean_and_deterministic() {
    let cfg = FuzzConfig::default();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let started = Instant::now();
    let report = run_campaign(&cfg, &exec::Executor::new(4));
    let elapsed = started.elapsed();
    println!("{}", report.render());
    println!("elapsed: {elapsed:?}");

    assert!(
        report.panics.is_empty(),
        "inputs escaped the try_map isolation boundary at iterations {:?}",
        report.panics
    );
    assert!(
        report.class_count() >= 6,
        "coverage proxy collapsed: only {} error classes\n{}",
        report.class_count(),
        report.render()
    );
    // The mutator must not be so destructive that nothing survives to
    // the ingestion layer, nor so gentle that nothing breaks.
    let survivors: u64 = report
        .histogram
        .iter()
        .filter(|(k, _)| k.starts_with("ok.") || k.starts_with("quarantine."))
        .map(|(_, v)| *v)
        .sum();
    assert!(survivors > 0, "no mutant ever reached the ingestion layer");
    assert!(
        survivors < report.iterations,
        "every mutant parsed — the mutator is not exercising the error paths"
    );

    // Bit-for-bit determinism: same seed → same histogram, at any
    // worker count.
    let again = run_campaign(&cfg, &exec::Executor::new(1));
    assert_eq!(report.histogram, again.histogram, "campaign is not deterministic");
}

#[test]
fn stream_parity_campaign_finds_no_divergence() {
    // The third campaign: every GPX mutant classified by BOTH the DOM
    // pipeline and the zero-copy streaming pipeline. A mutant whose two
    // classes disagree lands in a `diverged.*` bucket; the campaign is
    // only healthy when that bucket set is empty.
    let cfg = FuzzConfig::default();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let started = Instant::now();
    let report = run_stream_parity_campaign(&cfg, &exec::Executor::new(4));
    let elapsed = started.elapsed();
    println!("{}", report.render());
    println!("elapsed: {elapsed:?}");

    assert!(
        report.panics.is_empty(),
        "inputs escaped the try_map isolation boundary at iterations {:?}",
        report.panics
    );
    let diverged: Vec<&String> =
        report.histogram.keys().filter(|k| k.starts_with("diverged.")).collect();
    assert!(
        diverged.is_empty(),
        "streaming and DOM ingestion disagree on mutant classes: {diverged:?}\n{}",
        report.render()
    );
    // Agreement means the parity histogram IS the DOM campaign's
    // histogram — same classes, same counts, at any worker count.
    let dom = run_campaign(&cfg, &exec::Executor::new(4));
    assert_eq!(report.histogram, dom.histogram, "parity histogram drifted from the DOM campaign");
    let again = run_stream_parity_campaign(&cfg, &exec::Executor::new(1));
    assert_eq!(report.histogram, again.histogram, "parity campaign is not deterministic");
}

#[test]
fn http_campaign_runs_clean_and_deterministic() {
    let cfg = FuzzConfig::http();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let started = Instant::now();
    let report = run_http_campaign(&cfg, &exec::Executor::new(4));
    let elapsed = started.elapsed();
    println!("{}", report.render());
    println!("elapsed: {elapsed:?}");

    assert!(
        report.panics.is_empty(),
        "requests escaped the try_map isolation boundary at iterations {:?}",
        report.panics
    );
    assert!(
        report.class_count() >= 5,
        "coverage proxy collapsed: only {} framing classes\n{}",
        report.class_count(),
        report.render()
    );
    // The mutator must leave some requests parseable (the server's
    // happy path) without every mutant surviving (the error lattice).
    let accepted: u64 = report
        .histogram
        .iter()
        .filter(|(k, _)| k.starts_with("ok."))
        .map(|(_, v)| *v)
        .sum();
    assert!(accepted > 0, "no mutant ever parsed as a valid request");
    assert!(
        accepted < report.iterations,
        "every mutant parsed — the mutator is not exercising the parser's error paths"
    );

    // Same seed → same histogram at any worker count.
    let again = run_http_campaign(&cfg, &exec::Executor::new(1));
    assert_eq!(report.histogram, again.histogram, "HTTP campaign is not deterministic");
}

#[test]
fn connfault_chaos_campaign_runs_clean() {
    // The fourth campaign: 10k seed-scripted FlakyConn mutants —
    // truncated heads, mid-body cuts and resets, slowloris drip,
    // chopped writes — through a LIVE server. Healthy means: zero
    // panics, every observed transport outcome matches the script's
    // pure prediction (empty diverged bucket), no worker leaked or
    // restarted, and the server still serves byte-identical reports
    // afterwards.
    use serve::client::HttpClient;
    use serve::{BundleConfig, InferenceArena, ModelBundle, ServeConfig, Server};
    use std::time::Duration;

    let cfg = FuzzConfig::connfault();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let bundle = ModelBundle::train(cfg.seed, &BundleConfig::tiny());
    let served = ModelBundle::from_records(bundle.to_records()).expect("registry round trip");
    let request = connfault_request();
    let head_len = serve::http::find_head_end(&request).expect("head");
    let mut arena = InferenceArena::new();
    let expected = bundle.report_json(&request[head_len..], &mut arena);
    assert_eq!(expected.0, 200, "the chaos request must be a clean 200 report: {}", expected.1);

    // Deep queue + workers >= client shards: the campaign must never
    // shed (shedding determinism has its own tests), so every mutant's
    // outcome is decided by its script alone.
    let serve_cfg = ServeConfig { port: 0, workers: 4, queue_depth: 4096, ..ServeConfig::from_env() };
    let server = Server::start(served, &serve_cfg).expect("bind");

    let started = Instant::now();
    let report = run_connfault_campaign(&cfg, server.addr(), &expected, 4);
    println!("{}", report.render());
    println!("elapsed: {:?}", started.elapsed());

    assert!(
        report.panics.is_empty(),
        "connection mutants escaped the isolation boundary at iterations {:?}",
        report.panics
    );
    let diverged: Vec<&String> =
        report.histogram.keys().filter(|k| k.starts_with("diverged.")).collect();
    assert!(
        diverged.is_empty(),
        "live server behaviour diverged from the scripts' predictions: {diverged:?}\n{}",
        report.render()
    );
    for class in ["ok.delivered", "cut.head.400", "cut.body.400", "reset.body"] {
        assert!(
            report.histogram.contains_key(class),
            "campaign never produced {class}:\n{}",
            report.render()
        );
    }

    // Thread-count independence: a shorter replay must produce the
    // identical histogram at 1 and at 4 client threads.
    let replay = FuzzConfig { iterations: 2_000, ..cfg };
    let at_one = run_connfault_campaign(&replay, server.addr(), &expected, 1);
    let at_four = run_connfault_campaign(&replay, server.addr(), &expected, 4);
    assert_eq!(
        at_one.histogram, at_four.histogram,
        "chaos histogram depends on the client thread count"
    );

    // No leaks: every connection accounted for, no worker ever
    // panicked or needed a restart, nothing was shed.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.health().active > 0 {
        assert!(Instant::now() < deadline, "connections leaked: {:?}", server.health());
        std::thread::sleep(Duration::from_millis(25));
    }
    let health = server.health();
    assert_eq!(health.worker_panics, 0, "a chaos mutant panicked a handler: {health:?}");
    assert_eq!(health.workers_restarted, 0, "a chaos mutant killed a worker: {health:?}");
    assert_eq!(health.shed(), 0, "the chaos campaign was shed: {health:?}");

    // The battered server still serves the golden path byte-for-byte.
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let resp = client.post("/v1/report", &request[head_len..]).expect("post");
    assert_eq!((resp.status, resp.text()), expected, "post-chaos report drifted");
    server.shutdown();
}

#[test]
fn http_mutants_classify_reproducibly() {
    // A spot-check tying (seed, iter) to a stable class: rerunning the
    // same iteration must reproduce the same byte buffer and class.
    let cfg = FuzzConfig::http();
    for iter in [0u64, 17, 333, 9_999] {
        let doc = mutate_http(cfg.seed, iter);
        assert_eq!(doc, mutate_http(cfg.seed, iter));
        assert_eq!(classify_http(&doc), classify_http(&doc));
    }
}

#[test]
fn committed_fuzz_fixtures_keep_their_classes() {
    // The minimized exemplars committed to the shared corpus must keep
    // producing the exact class they were minimized for. The first
    // three are parse failures (also pinned by gpxfile's own corpus
    // test); the last parses fine and dies in the ingestion layer,
    // which only this crate can observe.
    let fixtures: [(&[u8], &str); 4] = [
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_gpx_bad_trkpt.gpx"),
            "gpx.bad_trkpt",
        ),
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_xml_entity.gpx"),
            "xml.entity",
        ),
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_xml_mismatch.gpx"),
            "xml.mismatch",
        ),
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_quarantine_too_corrupt.gpx"),
            "quarantine.too_corrupt",
        ),
    ];
    for (bytes, expected) in fixtures {
        assert_eq!(classify(bytes), expected, "committed fixture class drifted");
        assert_eq!(
            classify_stream(bytes),
            expected,
            "committed fixture class drifted on the streaming path"
        );
    }
}

#[test]
fn minimizer_grinds_failures_down() {
    // Scan for one failing mutant per broad class and check the
    // minimizer preserves the class while shrinking.
    let cfg = FuzzConfig::default();
    let mut seen = 0;
    for iter in 0..2_000 {
        let doc = mutate(cfg.seed, iter);
        let class = classify(&doc);
        if class.starts_with("xml.") || class.starts_with("gpx.") {
            let min = minimize(&doc, &class);
            assert_eq!(classify(&min), class, "minimization changed the error class");
            assert!(min.len() <= doc.len());
            seen += 1;
            if seen >= 5 {
                break;
            }
        }
    }
    assert!(seen >= 5, "mutator found fewer than 5 parse failures in 2000 iterations");
}
