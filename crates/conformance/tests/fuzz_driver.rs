//! The deterministic fuzz campaign: 10k seed-indexed GPX mutants
//! through the parser and the ingestion pipeline, with the error-class
//! histogram as the coverage proxy and `try_map` as the panic
//! isolation boundary.

use conformance::fuzz::{
    classify, classify_http, classify_stream, minimize, mutate, mutate_http, run_campaign,
    run_http_campaign, run_stream_parity_campaign, FuzzConfig,
};
use std::time::Instant;

#[test]
fn campaign_runs_clean_and_deterministic() {
    let cfg = FuzzConfig::default();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let started = Instant::now();
    let report = run_campaign(&cfg, &exec::Executor::new(4));
    let elapsed = started.elapsed();
    println!("{}", report.render());
    println!("elapsed: {elapsed:?}");

    assert!(
        report.panics.is_empty(),
        "inputs escaped the try_map isolation boundary at iterations {:?}",
        report.panics
    );
    assert!(
        report.class_count() >= 6,
        "coverage proxy collapsed: only {} error classes\n{}",
        report.class_count(),
        report.render()
    );
    // The mutator must not be so destructive that nothing survives to
    // the ingestion layer, nor so gentle that nothing breaks.
    let survivors: u64 = report
        .histogram
        .iter()
        .filter(|(k, _)| k.starts_with("ok.") || k.starts_with("quarantine."))
        .map(|(_, v)| *v)
        .sum();
    assert!(survivors > 0, "no mutant ever reached the ingestion layer");
    assert!(
        survivors < report.iterations,
        "every mutant parsed — the mutator is not exercising the error paths"
    );

    // Bit-for-bit determinism: same seed → same histogram, at any
    // worker count.
    let again = run_campaign(&cfg, &exec::Executor::new(1));
    assert_eq!(report.histogram, again.histogram, "campaign is not deterministic");
}

#[test]
fn stream_parity_campaign_finds_no_divergence() {
    // The third campaign: every GPX mutant classified by BOTH the DOM
    // pipeline and the zero-copy streaming pipeline. A mutant whose two
    // classes disagree lands in a `diverged.*` bucket; the campaign is
    // only healthy when that bucket set is empty.
    let cfg = FuzzConfig::default();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let started = Instant::now();
    let report = run_stream_parity_campaign(&cfg, &exec::Executor::new(4));
    let elapsed = started.elapsed();
    println!("{}", report.render());
    println!("elapsed: {elapsed:?}");

    assert!(
        report.panics.is_empty(),
        "inputs escaped the try_map isolation boundary at iterations {:?}",
        report.panics
    );
    let diverged: Vec<&String> =
        report.histogram.keys().filter(|k| k.starts_with("diverged.")).collect();
    assert!(
        diverged.is_empty(),
        "streaming and DOM ingestion disagree on mutant classes: {diverged:?}\n{}",
        report.render()
    );
    // Agreement means the parity histogram IS the DOM campaign's
    // histogram — same classes, same counts, at any worker count.
    let dom = run_campaign(&cfg, &exec::Executor::new(4));
    assert_eq!(report.histogram, dom.histogram, "parity histogram drifted from the DOM campaign");
    let again = run_stream_parity_campaign(&cfg, &exec::Executor::new(1));
    assert_eq!(report.histogram, again.histogram, "parity campaign is not deterministic");
}

#[test]
fn http_campaign_runs_clean_and_deterministic() {
    let cfg = FuzzConfig::http();
    assert!(cfg.iterations >= 10_000, "CI campaign must run at least 10k iterations");

    let started = Instant::now();
    let report = run_http_campaign(&cfg, &exec::Executor::new(4));
    let elapsed = started.elapsed();
    println!("{}", report.render());
    println!("elapsed: {elapsed:?}");

    assert!(
        report.panics.is_empty(),
        "requests escaped the try_map isolation boundary at iterations {:?}",
        report.panics
    );
    assert!(
        report.class_count() >= 5,
        "coverage proxy collapsed: only {} framing classes\n{}",
        report.class_count(),
        report.render()
    );
    // The mutator must leave some requests parseable (the server's
    // happy path) without every mutant surviving (the error lattice).
    let accepted: u64 = report
        .histogram
        .iter()
        .filter(|(k, _)| k.starts_with("ok."))
        .map(|(_, v)| *v)
        .sum();
    assert!(accepted > 0, "no mutant ever parsed as a valid request");
    assert!(
        accepted < report.iterations,
        "every mutant parsed — the mutator is not exercising the parser's error paths"
    );

    // Same seed → same histogram at any worker count.
    let again = run_http_campaign(&cfg, &exec::Executor::new(1));
    assert_eq!(report.histogram, again.histogram, "HTTP campaign is not deterministic");
}

#[test]
fn http_mutants_classify_reproducibly() {
    // A spot-check tying (seed, iter) to a stable class: rerunning the
    // same iteration must reproduce the same byte buffer and class.
    let cfg = FuzzConfig::http();
    for iter in [0u64, 17, 333, 9_999] {
        let doc = mutate_http(cfg.seed, iter);
        assert_eq!(doc, mutate_http(cfg.seed, iter));
        assert_eq!(classify_http(&doc), classify_http(&doc));
    }
}

#[test]
fn committed_fuzz_fixtures_keep_their_classes() {
    // The minimized exemplars committed to the shared corpus must keep
    // producing the exact class they were minimized for. The first
    // three are parse failures (also pinned by gpxfile's own corpus
    // test); the last parses fine and dies in the ingestion layer,
    // which only this crate can observe.
    let fixtures: [(&[u8], &str); 4] = [
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_gpx_bad_trkpt.gpx"),
            "gpx.bad_trkpt",
        ),
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_xml_entity.gpx"),
            "xml.entity",
        ),
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_xml_mismatch.gpx"),
            "xml.mismatch",
        ),
        (
            include_bytes!("../../gpxfile/tests/corpus/fuzz_quarantine_too_corrupt.gpx"),
            "quarantine.too_corrupt",
        ),
    ];
    for (bytes, expected) in fixtures {
        assert_eq!(classify(bytes), expected, "committed fixture class drifted");
        assert_eq!(
            classify_stream(bytes),
            expected,
            "committed fixture class drifted on the streaming path"
        );
    }
}

#[test]
fn minimizer_grinds_failures_down() {
    // Scan for one failing mutant per broad class and check the
    // minimizer preserves the class while shrinking.
    let cfg = FuzzConfig::default();
    let mut seen = 0;
    for iter in 0..2_000 {
        let doc = mutate(cfg.seed, iter);
        let class = classify(&doc);
        if class.starts_with("xml.") || class.starts_with("gpx.") {
            let min = minimize(&doc, &class);
            assert_eq!(classify(&min), class, "minimization changed the error class");
            assert!(min.len() <= doc.len());
            seen += 1;
            if seen >= 5 {
                break;
            }
        }
    }
    assert!(seen >= 5, "mutator found fewer than 5 parse failures in 2000 iterations");
}
