//! Satellite coverage for the `elev_core::robustness` sweep math and
//! the fold-stratification edge cases the sweep depends on.

use datasets::split::stratified_k_fold;
use elev_core::experiments::{Corpora, ExperimentScale};
use elev_core::robustness::{robustness_sweep, DEFAULT_RATES};

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        dataset_fraction: 0.04,
        folds: 3,
        cnn_epochs: 2,
        mlp_epochs: 10,
        min_per_class: 9,
    }
}

#[test]
fn fault_accounting_totals_are_conserved() {
    let scale = tiny_scale();
    let corpora = Corpora::generate(42, &scale);
    let points = robustness_sweep(&corpora, &scale, 42, 0xACC7, &[0.0, 0.2, 0.4]);
    assert!(!points.is_empty());
    for p in &points {
        // The report's own bookkeeping invariants hold…
        p.report
            .validate()
            .unwrap_or_else(|e| panic!("report invariant at rate {}: {e}", p.rate));
        // …and every track is accounted for exactly once.
        let tracks = p.report.tracks.len();
        assert_eq!(
            tracks,
            p.report.clean() + p.report.repaired() + p.report.quarantined(),
            "disposition counts do not partition the {} tracks at rate {}",
            tracks,
            p.rate
        );
        // Per-kind accounting never claims more handled faults than
        // were injected.
        for a in &p.accounting {
            assert!(
                a.repaired + a.quarantined + a.undetected == a.injected,
                "kind {} at rate {}: {} repaired + {} quarantined + {} undetected != {} injected",
                a.kind.name(),
                p.rate,
                a.repaired,
                a.quarantined,
                a.undetected,
                a.injected
            );
        }
        // A zero-rate point injects nothing and quarantines nothing.
        if p.rate == 0.0 {
            assert_eq!(p.report.quarantined(), 0);
            assert!(p.accounting.iter().all(|a| a.injected == 0));
        }
    }
}

#[test]
fn zero_rate_accuracy_matches_the_clean_run() {
    // Rate 0 is the identity on the corpus, so running the sweep twice
    // at rate 0 must reproduce the same attack outcome — and the
    // outcome must never *improve* as corruption increases from zero
    // beyond noise: we assert the weaker, exact property that the two
    // zero-rate runs agree bitwise.
    let scale = tiny_scale();
    let corpora = Corpora::generate(42, &scale);
    let a = robustness_sweep(&corpora, &scale, 42, 0xACC7, &[0.0]);
    let b = robustness_sweep(&corpora, &scale, 42, 0x5EED, &[0.0]);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        // Different fault-plan seeds, but rate 0 fires no faults: the
        // attack outcome must be independent of the plan seed.
        assert_eq!(
            x.outcome, y.outcome,
            "zero-rate outcome depends on the fault-plan seed in setting {}",
            x.setting
        );
    }
}

#[test]
fn default_rates_start_at_zero() {
    // The sweep's headline table is anchored by the clean baseline.
    assert_eq!(DEFAULT_RATES[0], 0.0);
    assert!(DEFAULT_RATES.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn stratified_fold_handles_class_below_k() {
    // 2 samples of class 1 against k=3 folds: the class simply misses
    // one fold; every sample still lands in exactly one fold and no
    // fold is empty of the majority class.
    let labels: Vec<u32> = vec![0, 0, 0, 0, 0, 0, 1, 1];
    let folds = stratified_k_fold(&labels, 3, 9);
    assert_eq!(folds.len(), 3);
    let mut test_seen = vec![0usize; labels.len()];
    for (train, test) in &folds {
        for &i in test {
            test_seen[i] += 1;
        }
        // Train and test partition the samples within each fold.
        let mut all: Vec<usize> = train.iter().chain(test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        assert!(
            test.iter().any(|&i| labels[i] == 0),
            "every test fold must contain the majority class"
        );
    }
    assert!(
        test_seen.iter().all(|&c| c == 1),
        "each sample must appear in exactly one test fold"
    );
    let minority_folds = folds
        .iter()
        .filter(|(_, test)| test.iter().any(|&i| labels[i] == 1))
        .count();
    assert_eq!(minority_folds, 2, "2 minority samples must spread across 2 test folds");
}

#[test]
fn stratified_fold_is_deterministic_per_seed() {
    let labels: Vec<u32> = (0..40).map(|i| i % 4).collect();
    assert_eq!(stratified_k_fold(&labels, 5, 1), stratified_k_fold(&labels, 5, 1));
    assert_ne!(
        stratified_k_fold(&labels, 5, 1),
        stratified_k_fold(&labels, 5, 2),
        "fold assignment must depend on the seed"
    );
}
