//! The golden-artifact gate: every pinned pipeline stage must match
//! its committed digest, and `UPDATE_GOLDENS=1` regenerates the pins
//! with a reviewable per-stage report.

use conformance::registry::{compare, parse_goldens, render_goldens, StageStatus};
use conformance::{check_or_update, compute_stages, STAGE_NAMES};
use std::sync::Mutex;

/// One test mutates the process-wide `ELEV_THREADS` variable; every
/// stage computation in this binary serializes on this lock.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Conformance artifacts always regenerate from this seed; the pinned
/// file is only meaningful for a fixed generation seed.
const GOLDEN_SEED: u64 = 42;

#[test]
fn pinned_stage_digests_match() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let stages = compute_stages(GOLDEN_SEED);
    assert_eq!(stages.len(), STAGE_NAMES.len());
    match check_or_update(&stages) {
        Ok(report) => println!("{report}"),
        Err(report) => panic!("{report}"),
    }
}

#[test]
fn stage_digests_are_reproducible_within_a_process() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = compute_stages(GOLDEN_SEED);
    let b = compute_stages(GOLDEN_SEED);
    assert_eq!(a, b, "stage computation must be a pure function of the seed");
}

#[test]
fn stage_digests_depend_on_the_seed() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = compute_stages(GOLDEN_SEED);
    let b = compute_stages(GOLDEN_SEED + 1);
    for (x, y) in a.iter().zip(&b) {
        assert_ne!(
            x.digest, y.digest,
            "stage {} digest ignores the seed — it is not pinning real content",
            x.name
        );
    }
}

#[test]
fn thread_count_does_not_change_digests() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The registry must pin the same bits whether the ingest batches
    // run on one worker or eight.
    std::env::set_var("ELEV_THREADS", "1");
    let one = compute_stages(GOLDEN_SEED);
    std::env::set_var("ELEV_THREADS", "8");
    let eight = compute_stages(GOLDEN_SEED);
    std::env::remove_var("ELEV_THREADS");
    assert_eq!(one, eight);
}

#[test]
fn committed_goldens_file_is_well_formed() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        // Regeneration mode: the gate test rewrites the file; checking
        // the stale copy here would race with it.
        return;
    }
    let text = std::fs::read_to_string(conformance::goldens_path())
        .expect("goldens file must be committed");
    let entries = parse_goldens(&text).expect("goldens file must parse");
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, STAGE_NAMES, "pins must cover every stage in order");
    // A well-formed file against itself is all-ok by construction.
    let stages = compute_stages(GOLDEN_SEED);
    let rendered = render_goldens(&stages);
    let diffs = compare(&parse_goldens(&rendered).unwrap(), &stages);
    assert!(diffs.iter().all(|d| d.status == StageStatus::Ok));
}
