//! Canonical pipeline-stage artifacts for the golden registry.
//!
//! Each stage regenerates one link of the attack chain from a fixed
//! seed — synthetic tracks → GPX bytes → ingested elevation profiles →
//! text-side BoW vectors → image-side rasters → per-model metrics —
//! and reduces it to a content digest plus a human-readable summary.
//! The summaries exist so a digest mismatch reads as "the BoW stage
//! now emits 1021 features instead of 1024", not as a raw hex diff.
//!
//! Everything here must be a pure function of `seed`: no wall-clock,
//! no thread-count dependence (the executor layers are order-free by
//! construction), no environment reads.

use crate::digest::Digest;
use elev_core::experiments::{table4_tm1, Corpora, ExperimentScale};
use elev_core::ingest::{ingest_batch, IngestConfig, TrackSource};
use elev_core::robustness::robustness_sweep;
use faultsim::{corrupt_track, FaultPlan, Payload};
use imgrep::{render, ImageConfig};
use routegen::{Activity, AthleteSimulator};
use terrain::{CityId, SyntheticTerrain};
use textrep::{Discretizer, FeatureSelection, TextPipeline};

/// One pinned pipeline stage: its digest and a summary for diffs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageArtifact {
    /// Stable stage name (`layer.artifact`).
    pub name: &'static str,
    /// Content digest of the stage output.
    pub digest: u64,
    /// Deterministic human-readable description of the output's shape
    /// (counts, lengths, feature dims) — the structured half of a diff.
    pub summary: String,
}

/// Every registered stage name, in pipeline order.
pub const STAGE_NAMES: [&str; 12] = [
    "routegen.tracks",
    "gpx.bytes",
    "ingest.clean",
    "ingest.faulted",
    "textrep.bow",
    "imgrep.raster",
    "metrics.table4",
    "metrics.robustness",
    "serve.report",
    "ingest.stream",
    "corpus.shard",
    "ann.sweep",
];

/// The scale every conformance artifact is computed at: small enough
/// that the whole registry regenerates in seconds, large enough that
/// all three classifiers, the folds machinery, and the quarantine
/// pipeline actually execute.
pub fn conformance_scale() -> ExperimentScale {
    ExperimentScale {
        dataset_fraction: 0.04,
        folds: 3,
        cnn_epochs: 2,
        mlp_epochs: 10,
        min_per_class: 9,
    }
}

/// Generates the small fixed track set shared by the front-of-pipeline
/// stages (two metros with distinct relief, four activities each).
fn track_set(seed: u64) -> Vec<Activity> {
    let mut activities = Vec::new();
    for (i, metro) in [CityId::WashingtonDc, CityId::ColoradoSprings].into_iter().enumerate() {
        let mut sim =
            AthleteSimulator::new(SyntheticTerrain::new(seed), exec::mix_seed(seed, i as u64));
        activities.extend(sim.generate(metro, 4));
    }
    activities
}

/// Computes every registered stage artifact from `seed`, in
/// [`STAGE_NAMES`] order.
pub fn compute_stages(seed: u64) -> Vec<StageArtifact> {
    let scale = conformance_scale();
    let mut out = Vec::with_capacity(STAGE_NAMES.len());

    // Stage 1: routegen tracks (trajectory + per-point elevation).
    let activities = track_set(seed);
    {
        let mut d = Digest::new();
        let mut points = 0usize;
        d.usize(activities.len());
        for a in &activities {
            d.str(a.metro.abbrev());
            let traj = a.trajectory();
            points += traj.len();
            d.usize(traj.len());
            for p in &traj {
                d.f64(p.lat).f64(p.lon);
            }
            d.f64s(&a.elevation_profile());
        }
        out.push(StageArtifact {
            name: "routegen.tracks",
            digest: d.finish(),
            summary: format!("{} activities, {} points", activities.len(), points),
        });
    }

    // Stage 2: serialized GPX bytes.
    let gpx_bytes: Vec<Vec<u8>> =
        activities.iter().map(|a| a.gpx.to_xml().into_bytes()).collect();
    {
        let mut d = Digest::new();
        d.usize(gpx_bytes.len());
        for b in &gpx_bytes {
            d.bytes(b);
        }
        out.push(StageArtifact {
            name: "gpx.bytes",
            digest: d.finish(),
            summary: format!(
                "{} documents, {} bytes total",
                gpx_bytes.len(),
                gpx_bytes.iter().map(Vec::len).sum::<usize>()
            ),
        });
    }

    // Stage 3: clean ingestion (parse + validate; everything must pass
    // through untouched).
    let sources: Vec<TrackSource> =
        gpx_bytes.iter().map(|b| TrackSource::Raw(b.clone())).collect();
    let (profiles, report) =
        ingest_batch(&sources, &IngestConfig::default(), &exec::Executor::from_env());
    let clean_profiles: Vec<Vec<f64>> = profiles.into_iter().flatten().collect();
    {
        let mut d = Digest::new();
        d.usize(clean_profiles.len());
        for p in &clean_profiles {
            d.f64s(p);
        }
        d.str(&report.to_json());
        out.push(StageArtifact {
            name: "ingest.clean",
            digest: d.finish(),
            summary: format!(
                "{} profiles ({} clean / {} repaired / {} quarantined), {} values",
                clean_profiles.len(),
                report.clean(),
                report.repaired(),
                report.quarantined(),
                clean_profiles.iter().map(Vec::len).sum::<usize>()
            ),
        });
    }

    // Stage 4: faulted ingestion — the same tracks through a 35%
    // corruption plan and the repair/quarantine pipeline.
    {
        let plan = FaultPlan::uniform(0.35, exec::mix_seed(seed, 0xFA17));
        let corrupted: Vec<TrackSource> = activities
            .iter()
            .enumerate()
            .map(|(i, a)| match corrupt_track(&plan, i as u64, &a.gpx).payload {
                Payload::Parsed(g) => TrackSource::Parsed(g),
                Payload::Raw(b) => TrackSource::Raw(b),
            })
            .collect();
        let (profiles, report) =
            ingest_batch(&corrupted, &IngestConfig::default(), &exec::Executor::from_env());
        let mut d = Digest::new();
        d.usize(profiles.len());
        for p in profiles.iter() {
            match p {
                Some(p) => d.f64s(p),
                None => d.str("quarantined"),
            };
        }
        d.str(&report.to_json());
        out.push(StageArtifact {
            name: "ingest.faulted",
            digest: d.finish(),
            summary: format!(
                "{} tracks at 35% corruption: {} clean / {} repaired / {} quarantined",
                report.tracks.len(),
                report.clean(),
                report.repaired(),
                report.quarantined()
            ),
        });
    }

    // Stage 5: text-side BoW features over the clean profiles.
    {
        let pipeline = TextPipeline::fit(
            Discretizer::Floor,
            4,
            FeatureSelection::standard(),
            &clean_profiles,
        );
        let features = pipeline.transform_all(&clean_profiles);
        let mut d = Digest::new();
        d.usize(pipeline.n_features()).usize(features.len());
        for f in &features {
            d.f32s(f);
        }
        out.push(StageArtifact {
            name: "textrep.bow",
            digest: d.finish(),
            summary: format!(
                "{} vectors x {} features",
                features.len(),
                pipeline.n_features()
            ),
        });
    }

    // Stage 6: image-side rasters over the clean profiles.
    {
        let cfg = ImageConfig::default();
        let mut d = Digest::new();
        d.usize(clean_profiles.len());
        let mut lit = 0usize;
        for p in &clean_profiles {
            let img = render(p, &cfg);
            lit += img.pixels.iter().filter(|&&v| v > 0.0).count();
            d.f32s(&img.pixels);
        }
        out.push(StageArtifact {
            name: "imgrep.raster",
            digest: d.finish(),
            summary: format!(
                "{} rasters {}x{}, {} lit channel values",
                clean_profiles.len(),
                cfg.width,
                cfg.height,
                lit
            ),
        });
    }

    // Stages 7–8 run on the shared tiny corpora (the same generation
    // path every experiment binary uses).
    let corpora = Corpora::generate(seed, &scale);

    // Stage 7: Table IV metrics (SVM/RFC/MLP × folds × class sweeps).
    {
        let rows = table4_tm1(&corpora.user, &scale, seed);
        let mut d = Digest::new();
        d.usize(rows.len());
        for r in &rows {
            d.usize(r.classes)
                .usize(r.per_class)
                .str(&r.model.to_string())
                .usize(r.folds);
            digest_outcome(&mut d, &r.outcome);
        }
        let best = rows.iter().map(|r| r.outcome.accuracy).fold(0.0f64, f64::max);
        out.push(StageArtifact {
            name: "metrics.table4",
            digest: d.finish(),
            summary: format!("{} rows, best accuracy {:.4}", rows.len(), best),
        });
    }

    // Stage 8: the robustness sweep at one corruption rate (ties the
    // fault substrate, quarantine ingestion, and attack metrics into
    // one pinned artifact).
    {
        let points = robustness_sweep(
            &corpora,
            &scale,
            seed,
            exec::mix_seed(seed, 0x60_1D),
            &[0.2],
        );
        let mut d = Digest::new();
        d.usize(points.len());
        for p in &points {
            d.str(&p.setting).f64(p.rate).usize(p.folds);
            digest_outcome(&mut d, &p.outcome);
            d.str(&p.report.to_json());
            d.usize(p.accounting.len());
            for a in &p.accounting {
                d.str(a.kind.name())
                    .usize(a.injected)
                    .usize(a.repaired)
                    .usize(a.quarantined)
                    .usize(a.undetected);
            }
        }
        let quarantined: usize = points.iter().map(|p| p.report.quarantined()).sum();
        out.push(StageArtifact {
            name: "metrics.robustness",
            digest: d.finish(),
            summary: format!(
                "{} points at rate 0.20, {} tracks quarantined",
                points.len(),
                quarantined
            ),
        });
    }

    // Stage 9: the served leakage reports — status + exact body bytes
    // the inference server returns for every stage-2 GPX document,
    // plus two deterministic damaged variants that must quarantine.
    // `report_json` is the single pure function the HTTP layer calls,
    // so pinning it here pins the entire attack-as-a-service surface
    // (ingestion → featurization → three classifiers → JSON) behind
    // one digest.
    {
        let bundle =
            serve::ModelBundle::train(seed, &serve::BundleConfig::tiny());
        let mut docs = gpx_bytes.clone();
        // Truncation mid-document: fails the parser → `parse_failed`.
        docs.push(gpx_bytes[0][..gpx_bytes[0].len() / 2].to_vec());
        // Every second point duplicated: parses, but repairs touch more
        // than the corruption budget → `too_corrupt`.
        docs.push(duplicate_every_other_point(&gpx_bytes[0]));

        let mut arena = serve::InferenceArena::new();
        let mut d = Digest::new();
        let (mut ok, mut quarantined) = (0usize, 0usize);
        d.usize(docs.len());
        for doc in &docs {
            let (status, body) = bundle.report_json(doc, &mut arena);
            if status == 200 {
                ok += 1;
            } else {
                quarantined += 1;
            }
            d.usize(status as usize).str(&body);
        }
        out.push(StageArtifact {
            name: "serve.report",
            digest: d.finish(),
            summary: format!(
                "{} uploads: {} reported / {} quarantined",
                docs.len(),
                ok,
                quarantined
            ),
        });
    }

    // Stage 10: streaming ingestion — the zero-copy DOM-free path over
    // the same clean and faulted corpora, digested with the exact
    // stage-3 and stage-4 procedures. The stage digest is the pair of
    // component digests, so `ingest.stream` is pinned equal to
    // `ingest.clean`/`ingest.faulted` (checked by a unit test below):
    // if the streaming path ever drifts from the DOM path by one bit,
    // this pin breaks even though the DOM stages still pass.
    {
        let mut ing = elev_core::ingest::StreamingIngest::default();

        let (profiles, report) = ing.ingest_batch(&sources);
        let stream_clean: Vec<Vec<f64>> = profiles.into_iter().flatten().collect();
        let mut dc = Digest::new();
        dc.usize(stream_clean.len());
        for p in &stream_clean {
            dc.f64s(p);
        }
        dc.str(&report.to_json());
        let clean_digest = dc.finish();

        let plan = FaultPlan::uniform(0.35, exec::mix_seed(seed, 0xFA17));
        let corrupted: Vec<TrackSource> = activities
            .iter()
            .enumerate()
            .map(|(i, a)| match corrupt_track(&plan, i as u64, &a.gpx).payload {
                Payload::Parsed(g) => TrackSource::Parsed(g),
                Payload::Raw(b) => TrackSource::Raw(b),
            })
            .collect();
        let (profiles, report) = ing.ingest_batch(&corrupted);
        let mut df = Digest::new();
        df.usize(profiles.len());
        for p in profiles.iter() {
            match p {
                Some(p) => df.f64s(p),
                None => df.str("quarantined"),
            };
        }
        df.str(&report.to_json());
        let faulted_digest = df.finish();

        out.push(StageArtifact {
            name: "ingest.stream",
            digest: Digest::new().u64(clean_digest).u64(faulted_digest).finish(),
            summary: format!(
                "streaming replay of clean + faulted corpora: component digests {clean_digest:016x} / {faulted_digest:016x}"
            ),
        });
    }

    // Stage 11: the quick-scale population corpus — shard 0 of the
    // streaming generator, digested content-first (habit models,
    // trajectories, elevation profiles by bit pattern) plus the
    // canonical shard fingerprint. This pins the entire seed tree:
    // a change to the city/cadence domains, the per-(city, athlete)
    // seeding, or the habit-model defaults breaks this golden.
    {
        let pop = conformance_population(seed);
        let terrain = pop.terrain();
        let shard = pop.generate_shard(&terrain, 0);
        let mut d = Digest::new();
        d.u64(pop.fingerprint()).usize(shard.athletes.len());
        for a in &shard.athletes {
            d.u64(a.habits.id).str(a.habits.city.abbrev()).usize(a.habits.weekly_cadence);
            d.usize(a.activities.len());
            for act in &a.activities {
                d.f64s(&act.elevation_profile());
            }
        }
        d.u64(shard.fingerprint());
        out.push(StageArtifact {
            name: "corpus.shard",
            digest: d.finish(),
            summary: format!(
                "shard 0/{}: {} athletes, {} tracks, {} points, fingerprint {:016x}",
                pop.n_shards(),
                shard.athletes.len(),
                shard.tracks(),
                shard.points(),
                shard.fingerprint()
            ),
        });
    }

    // Stage 12: IVF probe matching over the quick-scale corpus, all in
    // memory — codebook training, posting-list assignment, probe
    // routing, and exact rescoring, digested next to the brute-force
    // reference hits. The on-disk sidecar framing is pinned by
    // annindex's own torn-write suite; this digest pins the *math*:
    // any drift in centroid seeding, assignment tie-breaks, or the
    // rescoring order breaks this golden.
    {
        let pop = conformance_population(seed);
        let terrain = pop.terrain();

        // Vocabulary fitted on shard 0 only — the same discipline the
        // feature store uses, so grown corpora share the feature space.
        let shard0 = pop.generate_shard(&terrain, 0);
        let fit_profiles: Vec<Vec<f64>> = shard0
            .athletes
            .iter()
            .flat_map(|a| a.activities.iter().map(Activity::elevation_profile))
            .collect();
        let pipeline = TextPipeline::fit(
            Discretizer::Floor,
            4,
            FeatureSelection::standard(),
            &fit_profiles,
        );

        let mut rows: Vec<featstore::RowBuf> = Vec::new();
        let mut shard0_rows = 0usize;
        for s in 0..pop.n_shards() {
            let shard = pop.generate_shard(&terrain, s);
            for a in &shard.athletes {
                for (ai, act) in a.activities.iter().enumerate() {
                    let f = pipeline.transform_sparse(&act.elevation_profile());
                    rows.push(featstore::RowBuf {
                        athlete: a.habits.id,
                        city: a.habits.city_index as u32,
                        activity: ai as u32,
                        indices: f.indices().to_vec(),
                        values: f.values().to_vec(),
                    });
                }
            }
            if s == 0 {
                shard0_rows = rows.len();
            }
        }

        let (k, nprobe) = (16usize, 4usize);
        let codebook = annindex::Codebook::train(
            &rows[..shard0_rows],
            pipeline.n_features(),
            k,
            seed,
            &exec::Executor::from_env(),
        );
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); codebook.k()];
        let norms: Vec<f32> = rows.iter().map(|r| annindex::l2(&r.values)).collect();
        for (ri, r) in rows.iter().enumerate() {
            lists[codebook.assign(&r.indices, &r.values) as usize].push(ri);
        }

        let mut d = Digest::new();
        d.usize(rows.len()).usize(codebook.k()).usize(nprobe).usize(pipeline.n_features());
        for list in &lists {
            d.usize(list.len());
        }

        let n_probes = 8u64;
        let (mut recall_sum, mut rescored) = (0.0f64, 0usize);
        for id in 0..n_probes {
            let habits = pop.habits(id);
            let mut acts = pop.athlete_activities(&terrain, id, habits.weekly_cadence + 1);
            let probe = acts.pop().expect("cadence + 1 activities");
            let f = pipeline.transform_sparse(&probe.elevation_profile());
            let p_norm = annindex::l2(f.values());

            let score =
                |r: &featstore::RowBuf, rn: f32| {
                    let dot = sparsemat::dot_sorted(f.indices(), f.values(), &r.indices, &r.values);
                    if dot > 0.0 && rn > 0.0 {
                        Some(dot / (p_norm * rn))
                    } else {
                        None
                    }
                };
            let selected = codebook.top_centroids(f.indices(), f.values(), nprobe);
            let mut ann_top: Vec<(f32, u64)> = Vec::new();
            for &c in &selected {
                for &ri in &lists[c as usize] {
                    rescored += 1;
                    if let Some(s) = score(&rows[ri], norms[ri]) {
                        push_top3(&mut ann_top, s, rows[ri].athlete);
                    }
                }
            }
            let mut exact_top: Vec<(f32, u64)> = Vec::new();
            for (ri, r) in rows.iter().enumerate() {
                if let Some(s) = score(r, norms[ri]) {
                    push_top3(&mut exact_top, s, r.athlete);
                }
            }
            recall_sum += if exact_top.is_empty() {
                1.0
            } else {
                let kept = exact_top
                    .iter()
                    .filter(|(_, a)| ann_top.iter().any(|(_, b)| a == b))
                    .count();
                kept as f64 / exact_top.len() as f64
            };

            d.u64(id);
            for &c in &selected {
                d.usize(c as usize);
            }
            for top in [&ann_top, &exact_top] {
                d.usize(top.len());
                for (s, a) in top.iter() {
                    d.f32s(&[*s]).u64(*a);
                }
            }
        }
        let recall = recall_sum / n_probes as f64;
        d.f64(recall);
        out.push(StageArtifact {
            name: "ann.sweep",
            digest: d.finish(),
            summary: format!(
                "{n_probes} probes x k={k}/nprobe={nprobe} over {} rows: recall@3 {recall:.4}, {rescored} of {} pairs rescored",
                rows.len(),
                rows.len() * n_probes as usize
            ),
        });
    }

    debug_assert_eq!(out.len(), STAGE_NAMES.len());
    out
}

/// Inserts into a top-3 list of distinct athletes ordered by score
/// desc then athlete asc — the matcher's hit discipline.
fn push_top3(top: &mut Vec<(f32, u64)>, score: f32, athlete: u64) {
    let before = |a: &(f32, u64), b: &(f32, u64)| match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    };
    if let Some(existing) = top.iter_mut().find(|e| e.1 == athlete) {
        if before(&(score, athlete), existing) {
            *existing = (score, athlete);
        }
    } else {
        top.push((score, athlete));
    }
    top.sort_by(|a, b| {
        if before(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    top.truncate(3);
}

/// The quick-scale population the `corpus.shard` stage and the
/// shard-regeneration invariant share: 4 small shards, big enough to
/// hit several metros and cadences, small enough to regenerate in
/// milliseconds.
pub fn conformance_population(seed: u64) -> routegen::PopulationConfig {
    let mut pop = routegen::PopulationConfig::new(48, seed);
    pop.shard_size = 12;
    pop
}

/// Duplicates every second `<trkpt` line of a serialized GPX document
/// — consecutive identical points the ingest layer must deduplicate,
/// in volume past its corruption budget.
fn duplicate_every_other_point(doc: &[u8]) -> Vec<u8> {
    let xml = std::str::from_utf8(doc).expect("stage-2 GPX is UTF-8");
    let mut out = String::with_capacity(xml.len() * 2);
    let mut point_idx = 0usize;
    for line in xml.lines() {
        out.push_str(line);
        out.push('\n');
        if line.trim_start().starts_with("<trkpt") {
            if point_idx.is_multiple_of(2) {
                out.push_str(line);
                out.push('\n');
            }
            point_idx += 1;
        }
    }
    out.into_bytes()
}

fn digest_outcome(d: &mut Digest, o: &evalkit::FoldOutcome) {
    d.f64(o.accuracy)
        .f64(o.ovr_accuracy)
        .f64(o.precision)
        .f64(o.recall)
        .f64(o.f1)
        .f64(o.specificity);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_artifacts() {
        let stages = compute_stages(1);
        let names: Vec<&str> = stages.iter().map(|s| s.name).collect();
        assert_eq!(names, STAGE_NAMES);

        // The streaming stage's digest is the pair of its component
        // digests; recombining the DOM stages' digests must reproduce
        // it exactly — that equality IS the streaming-equals-DOM pin.
        let find = |n: &str| stages.iter().find(|s| s.name == n).expect("stage exists");
        let expected = Digest::new()
            .u64(find("ingest.clean").digest)
            .u64(find("ingest.faulted").digest)
            .finish();
        assert_eq!(
            find("ingest.stream").digest,
            expected,
            "streaming ingestion drifted from the DOM ingestion stages"
        );
    }
}
