//! The deterministic in-tree fuzz driver.
//!
//! No `cargo-fuzz`, no coverage instrumentation, no nondeterminism:
//! every mutation derives from `(seed, iteration)` through the same
//! SplitMix64 mixing the fault substrate uses, so a failing iteration
//! number is a complete bug report. The coverage proxy is an
//! error-class histogram — the distinct ways the parser and the
//! ingestion pipeline can classify a mutated document. A campaign that
//! stops discovering new classes has stopped making progress, which is
//! the property the driver asserts instead of branch counts.
//!
//! Mutated documents run through [`exec::Executor::try_map`] in
//! batches, so the driver simultaneously proves the panic-isolation
//! contract: no input may panic past `try_map`'s boundary.
//!
//! Four campaigns share the machinery: the GPX campaign drives the
//! parser and the ingestion pipeline; the HTTP campaign
//! ([`run_http_campaign`]) drives the inference server's request
//! parser (`serve::http`) with mutated request framing — same
//! seed-indexed mutation operators, a token set steering toward
//! request-line and header damage, and [`serve::http::HttpError::name`]
//! values as the histogram keys; the stream-parity campaign
//! ([`run_stream_parity_campaign`]) judges DOM vs streaming ingestion
//! on every mutant; and the connection-fault chaos campaign
//! ([`run_connfault_campaign`]) pushes seed-scripted
//! `faultsim::FlakyConn` mutants — truncated heads, mid-body resets,
//! slowloris drip — through a **live** server and checks the observed
//! transport outcome against the script's pure prediction.

use elev_core::ingest::{ingest_one, Disposition, IngestConfig, StreamingIngest, TrackSource};
use faultsim::{ConnScript, FlakyConn, NetFaultKind, NetFaultPlan, SendOutcome, Teardown};
use gpxfile::xml::XmlError;
use gpxfile::{Gpx, GpxError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; every iteration's RNG is `mix_seed(seed, iter)`.
    pub seed: u64,
    /// Number of mutated documents to run.
    pub iterations: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self { seed: 0xF022, iterations: 10_000 }
    }
}

impl FuzzConfig {
    /// The pinned configuration of the HTTP framing campaign — its own
    /// seed stream, so the two campaigns never share mutants.
    pub fn http() -> Self {
        Self { seed: 0x477F, iterations: 10_000 }
    }

    /// The pinned configuration of the connection-fault chaos
    /// campaign (again its own seed stream).
    pub fn connfault() -> Self {
        Self { seed: 0xC0FA, iterations: 10_000 }
    }
}

/// Outcome of a campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Error-class histogram: class name → occurrences. This is the
    /// coverage proxy; more keys = more distinct behaviours exercised.
    pub histogram: BTreeMap<String, u64>,
    /// Iterations whose document escaped `try_map` as a panic —
    /// must always be empty.
    pub panics: Vec<u64>,
}

impl FuzzReport {
    /// Number of distinct error classes observed.
    pub fn class_count(&self) -> usize {
        self.histogram.len()
    }

    /// Renders the histogram for test logs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz campaign: {} iterations, {} error classes, {} panics\n",
            self.iterations,
            self.class_count(),
            self.panics.len()
        );
        for (class, count) in &self.histogram {
            out.push_str(&format!("  {class:<24} {count}\n"));
        }
        out
    }
}

/// The realistic seed document mutations start from: namespaced GPX
/// with elevations, timestamps, entities, and two segments — enough
/// surface for every parser path, and long enough (30 points) that the
/// unmutated document passes ingestion as `ok.clean`.
pub fn seed_doc() -> Vec<u8> {
    let mut doc = String::from(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <gpx version=\"1.1\" creator=\"conformance-fuzz\" \
         xmlns=\"http://www.topografix.com/GPX/1/1\">\n\
         \u{20}\u{20}<trk>\n\
         \u{20}\u{20}\u{20}\u{20}<name>Morning Run &amp; Loop</name>\n\
         \u{20}\u{20}\u{20}\u{20}<trkseg>\n",
    );
    for i in 0..30u32 {
        let secs = 30 * i;
        doc.push_str(&format!(
            "      <trkpt lat=\"{:.4}\" lon=\"{:.4}\"><ele>{:.1}</ele>\
             <time>2019-07-01T12:{:02}:{:02}Z</time></trkpt>\n",
            38.8895 + f64::from(i) * 0.0005,
            -77.0353 - f64::from(i) * 0.0004,
            18.0 + f64::from(i) * 1.5,
            secs / 60,
            secs % 60,
        ));
    }
    doc.push_str("    </trkseg>\n  </trk>\n</gpx>\n");
    doc.into_bytes()
}

/// Byte fragments the splice/overwrite mutators draw from — tokens
/// that steer mutants toward interesting parser states instead of
/// uniform noise.
const TOKENS: &[&[u8]] = &[
    b"<trkpt", b"</trkpt>", b"<ele>", b"</ele>", b"lat=\"", b"lon=\"", b"&amp;", b"&bogus;",
    b"<![CDATA[", b"]]>", b"<?xml", b"NaN", b"1e308", b"-1e308", b"\"\"", b"<gpx", b"</gpx>",
    b"<trkseg>", b"</trkseg>", b"--", b"\xff\xfe", b"lat=\"91.0\"", b"lon=\"qq\"",
];

/// Deterministically mutates the seed document for one iteration.
///
/// Applies 1–4 stacked mutation operators chosen by the iteration's
/// private RNG; the operator set covers structural damage (truncation,
/// range deletion/duplication), byte-level damage (bit flips,
/// overwrites, invalid UTF-8) and token splicing.
pub fn mutate(seed: u64, iter: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(exec::mix_seed(seed, iter));
    let mut doc = seed_doc();
    apply_ops(&mut doc, &mut rng, TOKENS);
    doc
}

/// The shared operator loop both campaigns run: 1–4 stacked mutations
/// drawn from the iteration's private RNG, splicing from `tokens`.
/// The RNG call sequence is part of the pinned-campaign contract —
/// reordering it invalidates every committed exemplar.
fn apply_ops(doc: &mut Vec<u8>, rng: &mut StdRng, tokens: &[&[u8]]) {
    let ops = rng.gen_range(1..=4usize);
    for _ in 0..ops {
        if doc.is_empty() {
            break;
        }
        match rng.gen_range(0..9u32) {
            // Truncate at a random point.
            0 => {
                let at = rng.gen_range(0..doc.len());
                doc.truncate(at);
            }
            // Flip a random bit.
            1 => {
                let at = rng.gen_range(0..doc.len());
                doc[at] ^= 1 << rng.gen_range(0..8u32);
            }
            // Overwrite one byte with an arbitrary value.
            2 => {
                let at = rng.gen_range(0..doc.len());
                doc[at] = rng.gen_range(0..=255u8);
            }
            // Delete a short range.
            3 => {
                let at = rng.gen_range(0..doc.len());
                let len = rng.gen_range(1..=32usize).min(doc.len() - at);
                doc.drain(at..at + len);
            }
            // Duplicate a short range in place.
            4 => {
                let at = rng.gen_range(0..doc.len());
                let len = rng.gen_range(1..=32usize).min(doc.len() - at);
                let chunk: Vec<u8> = doc[at..at + len].to_vec();
                let insert_at = rng.gen_range(0..=doc.len());
                doc.splice(insert_at..insert_at, chunk);
            }
            // Splice in a steering token.
            5 => {
                let tok = tokens[rng.gen_range(0..tokens.len())];
                let at = rng.gen_range(0..=doc.len());
                doc.splice(at..at, tok.iter().copied());
            }
            // Corrupt a numeric literal: swap a digit.
            6 => {
                let digits: Vec<usize> = doc
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.is_ascii_digit())
                    .map(|(i, _)| i)
                    .collect();
                if !digits.is_empty() {
                    let at = digits[rng.gen_range(0..digits.len())];
                    doc[at] = b'0' + rng.gen_range(0..10u8);
                }
            }
            // Inject an invalid UTF-8 continuation byte.
            7 => {
                let at = rng.gen_range(0..=doc.len());
                doc.insert(at, rng.gen_range(0x80..=0xBFu8));
            }
            // Swap two ranges (tag reordering in the cheap).
            _ => {
                let a = rng.gen_range(0..doc.len());
                let b = rng.gen_range(0..doc.len());
                doc.swap(a, b);
            }
        }
    }
}

/// The parse-failure half of the class lattice, shared by the DOM and
/// streaming classifiers so parity is judged on identical names.
fn gpx_error_class(e: &GpxError) -> String {
    match e {
        GpxError::Xml(XmlError::UnexpectedEof { .. }) => "xml.eof".into(),
        GpxError::Xml(XmlError::Malformed { .. }) => "xml.malformed".into(),
        GpxError::Xml(XmlError::UnknownEntity { .. }) => "xml.entity".into(),
        GpxError::Xml(XmlError::MismatchedTag { .. }) => "xml.mismatch".into(),
        GpxError::BadTrackPoint { .. } => "gpx.bad_trkpt".into(),
        GpxError::NotGpx => "gpx.not_gpx".into(),
        GpxError::InvalidUtf8 { .. } => "gpx.bad_utf8".into(),
        // GpxError is #[non_exhaustive]; any future variant gets its
        // own bucket rather than aborting the campaign.
        _ => "gpx.other".into(),
    }
}

/// The survived-to-ingestion half of the class lattice.
fn disposition_class(d: &Disposition) -> String {
    match d {
        Disposition::Clean => "ok.clean".into(),
        Disposition::Repaired(_) => "ok.repaired".into(),
        Disposition::Quarantined(reason) => format!("quarantine.{}", reason.name()),
    }
}

/// Classifies one document by driving it through `Gpx::parse_bytes`
/// and, when it parses, through the full ingestion pipeline. The class
/// name is the histogram key.
pub fn classify(doc: &[u8]) -> String {
    match Gpx::parse_bytes(doc) {
        Err(e) => gpx_error_class(&e),
        Ok(gpx) => {
            let (disposition, _) = ingest_one(&TrackSource::Parsed(gpx), &IngestConfig::default());
            disposition_class(&disposition)
        }
    }
}

/// Classifies one document through the zero-copy streaming pipeline
/// ([`StreamingIngest::try_ingest_bytes`]) — no DOM is ever built. For
/// every input this must produce the same class as [`classify`]; the
/// stream-parity campaign asserts exactly that.
pub fn classify_stream(doc: &[u8]) -> String {
    match StreamingIngest::default().try_ingest_bytes(doc) {
        Err(e) => gpx_error_class(&e),
        Ok((disposition, _)) => disposition_class(&disposition),
    }
}

/// Runs the GPX campaign: mutate → classify in parallel batches
/// through `try_map`, recording the error-class histogram and any
/// panic that escapes the isolation boundary.
pub fn run_campaign(cfg: &FuzzConfig, executor: &exec::Executor) -> FuzzReport {
    run_campaign_with(cfg, executor, |i| classify(&mutate(cfg.seed, i)))
}

/// Runs the HTTP framing campaign against the inference server's
/// request parser, with the same batching and panic isolation as the
/// GPX campaign.
pub fn run_http_campaign(cfg: &FuzzConfig, executor: &exec::Executor) -> FuzzReport {
    run_campaign_with(cfg, executor, |i| classify_http(&mutate_http(cfg.seed, i)))
}

/// Runs the stream-parity campaign: every GPX mutant is classified by
/// both the DOM pipeline ([`classify`]) and the streaming pipeline
/// ([`classify_stream`]). Agreement yields the shared class; any
/// disagreement lands in a `diverged.<dom>!=<stream>` bucket — a
/// campaign is only healthy when no such key exists.
pub fn run_stream_parity_campaign(cfg: &FuzzConfig, executor: &exec::Executor) -> FuzzReport {
    run_campaign_with(cfg, executor, |i| {
        let doc = mutate(cfg.seed, i);
        let dom = classify(&doc);
        let stream = classify_stream(&doc);
        if dom == stream {
            dom
        } else {
            format!("diverged.{dom}!={stream}")
        }
    })
}

/// The shared campaign loop: one class per iteration through
/// `try_map`'s panic boundary, batched so the histogram merge stays on
/// the driver thread.
fn run_campaign_with(
    cfg: &FuzzConfig,
    executor: &exec::Executor,
    class_of: impl Fn(u64) -> String + Sync,
) -> FuzzReport {
    const BATCH: u64 = 512;
    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();
    let mut panics = Vec::new();
    let mut iter = 0u64;
    while iter < cfg.iterations {
        let batch: Vec<u64> = (iter..(iter + BATCH).min(cfg.iterations)).collect();
        let results = executor.try_map(&batch, |_, &i| class_of(i));
        for (offset, r) in results.into_iter().enumerate() {
            match r {
                Ok(class) => *histogram.entry(class).or_insert(0) += 1,
                Err(_) => panics.push(batch[offset]),
            }
        }
        iter += BATCH;
    }
    FuzzReport { iterations: cfg.iterations, histogram, panics }
}

/// The realistic seed request the HTTP campaign mutates: a well-formed
/// keep-alive `POST /v1/report` carrying a short GPX body — exactly
/// what the load generator sends, so the unmutated request classifies
/// as `ok.post`.
pub fn http_seed_request() -> Vec<u8> {
    let body = b"<?xml version=\"1.0\"?><gpx creator=\"fuzz\"><trk><trkseg>\
                 <trkpt lat=\"38.0\" lon=\"-77.0\"><ele>12.5</ele></trkpt>\
                 </trkseg></trk></gpx>";
    let mut req = format!(
        "POST /v1/report HTTP/1.1\r\n\
         Host: localhost\r\n\
         User-Agent: conformance-fuzz\r\n\
         Accept: application/json\r\n\
         Connection: keep-alive\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

/// Steering tokens for the HTTP campaign — request-line fragments,
/// header anatomy, and framing delimiters, so mutants explore the
/// parser's error lattice instead of dying uniformly at the request
/// line.
const HTTP_TOKENS: &[&[u8]] = &[
    b"GET ",
    b"POST ",
    b"get ",
    b" HTTP/1.1",
    b" HTTP/1.0",
    b" HTTP/2.0",
    b"\r\n",
    b"\r\n\r\n",
    b"\n\n",
    b": ",
    b":",
    b"Content-Length: ",
    b"Content-Length: 0\r\n",
    b"Content-Length: 99999999999999999999\r\n",
    b"Connection: close\r\n",
    b"Transfer-Encoding: chunked\r\n",
    b"H@st: x\r\n",
    b"/v1/report",
    b"/heal thz",
    b" ",
    b"\x00",
    b"\xff\xfe",
];

/// Deterministically mutates the seed request for one iteration of the
/// HTTP campaign — the same stacked operators as [`mutate`], splicing
/// from [`HTTP_TOKENS`].
pub fn mutate_http(seed: u64, iter: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(exec::mix_seed(seed, iter));
    let mut doc = http_seed_request();
    apply_ops(&mut doc, &mut rng, HTTP_TOKENS);
    doc
}

/// Classifies one byte buffer through the server's request parser.
/// Accepted requests bucket by method (bounded — arbitrary mutated
/// methods collapse into `ok.other` so the class count stays a
/// meaningful coverage proxy); rejections key on the parser's stable
/// error names.
pub fn classify_http(doc: &[u8]) -> String {
    match serve::http::parse_request(doc) {
        Ok((head, _)) => match head.method.as_str() {
            "GET" => "ok.get".into(),
            "POST" => "ok.post".into(),
            _ => "ok.other".into(),
        },
        Err(e) => format!("http.{}", e.name()),
    }
}

// ---- connection-fault chaos campaign -----------------------------------

/// The connection-fault plan the chaos campaign runs: three quarters
/// of connections faulted, every kind enabled, stalls capped far
/// below the server's deadlines so fault outcomes stay deterministic.
pub fn connfault_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan {
        seed,
        rate: 0.75,
        kinds: NetFaultKind::ALL.to_vec(),
        max_delay_micros: 300,
    }
}

/// The request every chaos connection carries: a well-formed
/// single-shot `POST /v1/report` with the clean 30-point
/// [`seed_doc`] body (so a fully delivered request must yield the
/// offline `200` report byte-for-byte).
pub fn connfault_request() -> Vec<u8> {
    let body = seed_doc();
    let mut req = format!(
        "POST /v1/report HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(&body);
    req
}

/// The pure outcome prediction for one scripted connection — computed
/// from the script alone, before any socket exists. The campaign's
/// health criterion is that the live server's observed behaviour
/// matches this for every mutant.
pub fn connfault_class(script: &ConnScript, head_len: usize) -> &'static str {
    match (script.cut, script.teardown) {
        (None, _) => "ok.delivered",
        (Some(0), Teardown::Fin) => "cut.head.silent",
        (Some(at), Teardown::Fin) if at < head_len => "cut.head.400",
        (Some(_), Teardown::Fin) => "cut.body.400",
        (Some(_), Teardown::Reset) => "reset.body",
    }
}

/// Drives one scripted connection against the live server and names
/// what actually happened on the wire.
fn observe_connfault(
    addr: SocketAddr,
    script: ConnScript,
    request: &[u8],
    head_len: usize,
    expected: &(u16, String),
) -> String {
    let err_class = |what: &str, e: &std::io::Error| format!("{what}.{:?}", e.kind());
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return err_class("connect_error", &e),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(10)));
    let teardown = script.teardown;
    let mut conn = FlakyConn::new(stream, script);
    let outcome = match conn.send(request, head_len) {
        Ok(outcome) => outcome,
        Err(e) => return err_class("send_error", &e),
    };
    match (outcome, teardown) {
        (SendOutcome::Cut { .. }, Teardown::Reset) => {
            // Abortive drop: no half-close, no read. Any byte the
            // server sends afterwards is answered by the dead socket
            // with an RST — the closest stable std gets to
            // `SO_LINGER 0`. The outcome is unobservable from this
            // side, so the class is the script's by construction; the
            // campaign's reset assertions live in the server's health
            // counters (zero panics, zero leaked workers).
            drop(conn);
            "reset.body".into()
        }
        (SendOutcome::Cut { .. }, Teardown::Fin) => {
            // Half-close so the server reads EOF, then collect its
            // verdict (if any).
            let _ = conn.get_ref().shutdown(std::net::Shutdown::Write);
            let bytes = match conn.recv_to_end() {
                Ok(b) => b,
                Err(e) => return err_class("recv_error", &e),
            };
            if bytes.is_empty() {
                "cut.head.silent".into()
            } else if bytes.starts_with(b"HTTP/1.1 400 ") {
                let text = String::from_utf8_lossy(&bytes);
                if text.contains("missing_terminator") {
                    "cut.head.400".into()
                } else if text.contains("bad_content_length") {
                    "cut.body.400".into()
                } else {
                    format!("cut.unexpected_400:{text}")
                }
            } else {
                format!("cut.unexpected:{}", String::from_utf8_lossy(&bytes[..bytes.len().min(32)]))
            }
        }
        (SendOutcome::Delivered, _) => {
            let bytes = match conn.recv_to_end() {
                Ok(b) => b,
                Err(e) => return err_class("recv_error", &e),
            };
            let text = String::from_utf8_lossy(&bytes);
            let status_line = format!("HTTP/1.1 {} ", expected.0);
            if text.starts_with(&status_line) && text.ends_with(expected.1.as_str()) {
                "ok.delivered".into()
            } else {
                format!("ok.unexpected:{}", &text[..text.len().min(48)])
            }
        }
    }
}

/// Runs the connection-fault chaos campaign against a **live** server
/// at `addr`: every iteration scripts one [`FlakyConn`] from the
/// seed-indexed plan, drives a real TCP connection through it, and
/// buckets `predicted == observed` agreement under the predicted
/// class — any disagreement lands in a `diverged.<pred>!=<obs>` key,
/// and a healthy campaign has none.
///
/// `expected` is the offline `(status, body)` for
/// [`connfault_request`]'s GPX payload; `client_threads` shards
/// iterations round-robin (the histogram must not depend on it).
pub fn run_connfault_campaign(
    cfg: &FuzzConfig,
    addr: SocketAddr,
    expected: &(u16, String),
    client_threads: usize,
) -> FuzzReport {
    let plan = connfault_plan(cfg.seed);
    let request = connfault_request();
    let head_len = serve::http::find_head_end(&request).expect("request has a head");
    let threads = client_threads.max(1);
    let mut shards: Vec<(BTreeMap<String, u64>, Vec<u64>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let plan = &plan;
                let request = &request;
                scope.spawn(move || {
                    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();
                    let mut panics = Vec::new();
                    let mut i = t as u64;
                    while i < cfg.iterations {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let script = plan.script(i, head_len, request.len());
                                let predicted = connfault_class(&script, head_len);
                                let observed =
                                    observe_connfault(addr, script, request, head_len, expected);
                                if observed == predicted {
                                    predicted.to_owned()
                                } else {
                                    format!("diverged.{predicted}!={observed}")
                                }
                            }));
                        match outcome {
                            Ok(class) => *histogram.entry(class).or_insert(0) += 1,
                            Err(_) => panics.push(i),
                        }
                        i += threads as u64;
                    }
                    (histogram, panics)
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("chaos shard thread"));
        }
    });
    let mut histogram: BTreeMap<String, u64> = BTreeMap::new();
    let mut panics = Vec::new();
    for (shard_hist, shard_panics) in shards {
        for (class, count) in shard_hist {
            *histogram.entry(class).or_insert(0) += count;
        }
        panics.extend(shard_panics);
    }
    panics.sort_unstable();
    FuzzReport { iterations: cfg.iterations, histogram, panics }
}

/// Minimizes a failing document while preserving its error class:
/// greedy chunked deletion (ddmin-lite) at halving granularity down to
/// single bytes. Deterministic — no RNG involved.
pub fn minimize(doc: &[u8], target_class: &str) -> Vec<u8> {
    let mut best = doc.to_vec();
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            if !candidate.is_empty() && classify(&candidate) == target_class {
                best = candidate;
                progressed = true;
                // Re-test the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            return best;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Finds the first iteration producing each requested error class and
/// returns its minimized document. Used to regenerate the committed
/// corpus fixtures.
pub fn minimized_exemplars(
    cfg: &FuzzConfig,
    classes: &[&str],
) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for iter in 0..cfg.iterations {
        if out.len() == classes.len() {
            break;
        }
        let doc = mutate(cfg.seed, iter);
        let class = classify(&doc);
        if classes.contains(&class.as_str()) && !out.contains_key(&class) {
            let min = minimize(&doc, &class);
            out.insert(class, min);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_doc_is_clean() {
        assert_eq!(classify(&seed_doc()), "ok.clean");
        assert_eq!(classify_stream(&seed_doc()), "ok.clean");
    }

    #[test]
    fn mutation_is_deterministic() {
        for i in [0, 1, 77, 4096] {
            assert_eq!(mutate(9, i), mutate(9, i));
        }
        assert_ne!(mutate(9, 0), mutate(9, 1));
    }

    #[test]
    fn http_seed_request_is_a_clean_post() {
        assert_eq!(classify_http(&http_seed_request()), "ok.post");
    }

    #[test]
    fn http_mutation_is_deterministic() {
        for i in [0, 1, 77, 4096] {
            assert_eq!(mutate_http(9, i), mutate_http(9, i));
        }
        assert_ne!(mutate_http(9, 0), mutate_http(9, 1));
    }

    #[test]
    fn http_classes_are_bounded_for_accepted_requests() {
        assert_eq!(classify_http(b"GET / HTTP/1.1\r\n\r\n"), "ok.get");
        assert_eq!(classify_http(b"DELETE / HTTP/1.1\r\n\r\n"), "ok.other");
        assert_eq!(classify_http(b"GET / HTTP/2.0\r\n\r\n"), "http.bad_version");
        assert_eq!(classify_http(b""), "http.empty");
    }

    #[test]
    fn minimize_preserves_class() {
        // A document with a stray unknown entity somewhere in the middle.
        let doc = String::from_utf8(seed_doc()).unwrap().replace("&amp;", "&bogus;");
        let class = classify(doc.as_bytes());
        assert_eq!(class, "xml.entity");
        let min = minimize(doc.as_bytes(), &class);
        assert_eq!(classify(&min), class);
        assert!(min.len() <= doc.len());
    }
}
