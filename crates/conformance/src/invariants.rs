//! The metamorphic invariant suite.
//!
//! Each [`Invariant`] states a relation the attack pipeline must
//! satisfy under a *transformed* input — properties that hold without
//! knowing any expected output value, which is what makes them robust
//! to the hot-path rewrites the golden registry alone cannot certify
//! (a golden only says "something changed", an invariant says "this
//! relation broke"). The suite unifies the thread-count and
//! sparse-vs-dense checks that previously lived as scattered
//! per-crate tests behind one trait, so `scripts/verify.sh` and CI
//! run them all through `cargo test -p conformance`.

use elev_core::experiments::{balanced_top_classes, table4_tm1, Corpora};
use elev_core::ingest::{ingest_one, Disposition, IngestConfig, TrackSource};
use elev_core::robustness::zero_rate_is_identity;
use elev_core::text::{evaluate_text, TextAttackConfig, TextModel};
use evalkit::ConfusionMatrix;
use geoprim::LatLon;
use gpxfile::{Gpx, Track, TrackPoint, TrackSegment};
use routegen::{Activity, AthleteSimulator};
use sparsemat::CsrMatrix;
use terrain::{CityId, SyntheticTerrain};
use textrep::{Discretizer, FeatureSelection, TextPipeline};

use crate::stages::conformance_scale;

/// Shared fixtures the invariants run against, generated once.
pub struct InvariantCtx {
    /// Master seed.
    pub seed: u64,
    /// The tiny experiment corpora (same generation path as the
    /// experiment binaries).
    pub corpora: Corpora,
    /// A handful of synthetic activities with full trajectories.
    pub activities: Vec<Activity>,
}

impl InvariantCtx {
    /// Builds the shared fixtures from `seed`.
    pub fn new(seed: u64) -> Self {
        let corpora = Corpora::generate(seed, &conformance_scale());
        let mut activities = Vec::new();
        for (i, metro) in [CityId::Miami, CityId::ColoradoSprings].into_iter().enumerate() {
            let mut sim = AthleteSimulator::new(
                SyntheticTerrain::new(seed),
                exec::mix_seed(seed, 100 + i as u64),
            );
            activities.extend(sim.generate(metro, 3));
        }
        Self { seed, corpora, activities }
    }
}

/// One metamorphic relation over the pipeline.
pub trait Invariant {
    /// Stable kebab-case name.
    fn name(&self) -> &'static str;
    /// One-line statement of the relation.
    fn description(&self) -> &'static str;
    /// Checks the relation: `Ok(detail)` with what was verified, or
    /// `Err(violation)` describing exactly how it broke.
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String>;
}

/// Outcome of one invariant run.
#[derive(Debug, Clone)]
pub struct InvariantOutcome {
    /// The invariant's name.
    pub name: &'static str,
    /// Whether the relation held.
    pub passed: bool,
    /// Verification detail or violation message.
    pub detail: String,
}

/// The full registered suite.
pub fn all_invariants() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(RigidMotion),
        Box::new(OffsetShiftsBins),
        Box::new(LabelPermutation),
        Box::new(ThreadInvariance),
        Box::new(TrainShardInvariance),
        Box::new(SparseDenseAgreement),
        Box::new(IngestCleanIdentity),
        Box::new(DespikeOffsetEquivariance),
        Box::new(ServedEqualsOffline),
        Box::new(ShardRegeneration),
        Box::new(AnnExactAgreement),
    ]
}

/// Runs every invariant against a shared context.
pub fn run_all(ctx: &InvariantCtx) -> Vec<InvariantOutcome> {
    all_invariants()
        .iter()
        .map(|inv| match inv.check(ctx) {
            Ok(detail) => InvariantOutcome { name: inv.name(), passed: true, detail },
            Err(violation) => {
                InvariantOutcome { name: inv.name(), passed: false, detail: violation }
            }
        })
        .collect()
}

/// Renders outcomes for test logs; failures carry the full violation.
pub fn render_outcomes(outcomes: &[InvariantOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&format!(
            "[{}] {} — {}\n",
            if o.passed { "ok" } else { "VIOLATED" },
            o.name,
            o.detail
        ));
    }
    out
}

// ---------------------------------------------------------------------
// 1. Horizontal rigid motion of a track leaves the adversary's
//    observation — the elevation profile — bit-identical, through both
//    the raw extraction and the full ingest pipeline.
// ---------------------------------------------------------------------

struct RigidMotion;

fn rigid_transform(gpx: &Gpx, angle_rad: f64, dlat: f64, dlon: f64) -> Gpx {
    let traj = gpx.trajectory();
    let n = traj.len().max(1) as f64;
    let (cy, cx) = traj
        .iter()
        .fold((0.0, 0.0), |(y, x), p| (y + p.lat / n, x + p.lon / n));
    let (sin, cos) = angle_rad.sin_cos();
    let mut moved = gpx.clone();
    for t in &mut moved.tracks {
        for s in &mut t.segments {
            for p in &mut s.points {
                let (y, x) = (p.coord.lat - cy, p.coord.lon - cx);
                p.coord = LatLon::new(
                    cy + cos * y - sin * x + dlat,
                    cx + sin * y + cos * x + dlon,
                );
            }
        }
    }
    moved
}

impl Invariant for RigidMotion {
    fn name(&self) -> &'static str {
        "profile-rigid-motion"
    }
    fn description(&self) -> &'static str {
        "translating/rotating a track's coordinates leaves its elevation profile bit-identical"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        let cfg = IngestConfig::default();
        for (i, a) in ctx.activities.iter().enumerate() {
            let moved = rigid_transform(&a.gpx, 0.7, 0.5, -0.25);
            let p0 = a.gpx.elevation_profile();
            let p1 = moved.elevation_profile();
            if !bits_equal(&p0, &p1) {
                return Err(format!(
                    "activity {i}: raw elevation profile changed under rigid motion"
                ));
            }
            let (_, q0) = ingest_one(&TrackSource::Parsed(a.gpx.clone()), &cfg);
            let (_, q1) = ingest_one(&TrackSource::Parsed(moved), &cfg);
            match (q0, q1) {
                (Some(q0), Some(q1)) if bits_equal(&q0, &q1) => {}
                _ => {
                    return Err(format!(
                        "activity {i}: ingested profile changed under rigid motion"
                    ))
                }
            }
        }
        Ok(format!(
            "{} activities invariant under rotation 0.7 rad + translation (0.5, -0.25)",
            ctx.activities.len()
        ))
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

// ---------------------------------------------------------------------
// 2. A constant elevation offset shifts discretizer bins predictably:
//    exactly +k for Floor, +k·10³ (±1 bin of multiplication rounding)
//    for the fixed-precision mined discretizer.
// ---------------------------------------------------------------------

struct OffsetShiftsBins;

impl Invariant for OffsetShiftsBins {
    fn name(&self) -> &'static str {
        "offset-shifts-bins"
    }
    fn description(&self) -> &'static str {
        "a constant +k elevation offset shifts Floor bins by exactly k and mined bins by k*10^3 (±1)"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        // 8.0 adds exactly in f64 for any elevation magnitude the
        // terrain produces, so the relation is not confounded by
        // addition rounding.
        const K: f64 = 8.0;
        let mut checked = 0usize;
        for a in &ctx.activities {
            for &e in &a.elevation_profile() {
                let floor = Discretizer::Floor;
                if floor.apply_one(e + K) != floor.apply_one(e) + K as i64 {
                    return Err(format!(
                        "Floor bin of {e} shifted by {} != {K} under +{K} offset",
                        floor.apply_one(e + K) - floor.apply_one(e)
                    ));
                }
                let mined = Discretizer::mined();
                let shift = mined.apply_one(e + K) - mined.apply_one(e);
                if (shift - 8000).abs() > 1 {
                    return Err(format!(
                        "mined bin of {e} shifted by {shift} != 8000 (±1) under +{K} offset"
                    ));
                }
                checked += 1;
            }
        }
        Ok(format!("{checked} elevation values shift predictably under +{K} m"))
    }
}

// ---------------------------------------------------------------------
// 3. Permuting class labels permutes the confusion matrix and leaves
//    every aggregate metric unchanged.
// ---------------------------------------------------------------------

struct LabelPermutation;

impl Invariant for LabelPermutation {
    fn name(&self) -> &'static str {
        "label-permutation"
    }
    fn description(&self) -> &'static str {
        "relabelling classes permutes confusion-matrix cells and preserves aggregate metrics"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        // A real pooled matrix from the text attack, not a toy one.
        let ds = balanced_top_classes(&ctx.corpora.user, 3, ctx.seed);
        let cfg = TextAttackConfig {
            folds: 3,
            mlp_epochs: 10,
            seed: ctx.seed,
            ..Default::default()
        };
        let pooled = evaluate_text(&ds, Discretizer::Floor, TextModel::Svm, &cfg).pooled;
        let c = pooled.n_classes();
        let sigma: Vec<usize> = (0..c).map(|i| (i + 1) % c).collect();

        // Rebuild the permuted matrix through the public constructor.
        let mut truth = Vec::new();
        let mut pred = Vec::new();
        for t in 0..c {
            for p in 0..c {
                for _ in 0..pooled.count(t, p) {
                    truth.push(sigma[t] as u32);
                    pred.push(sigma[p] as u32);
                }
            }
        }
        let permuted = ConfusionMatrix::from_predictions(&truth, &pred, c);

        for t in 0..c {
            for p in 0..c {
                if permuted.count(sigma[t], sigma[p]) != pooled.count(t, p) {
                    return Err(format!(
                        "cell ({t},{p}) did not move to ({},{}) under permutation",
                        sigma[t], sigma[p]
                    ));
                }
            }
        }
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        if permuted.accuracy() != pooled.accuracy() {
            return Err("multiclass accuracy changed under label permutation".into());
        }
        for (name, a, b) in [
            ("ovr_accuracy", permuted.ovr_accuracy(), pooled.ovr_accuracy()),
            ("macro_precision", permuted.macro_precision(), pooled.macro_precision()),
            ("macro_recall", permuted.macro_recall(), pooled.macro_recall()),
            ("macro_f1", permuted.macro_f1(), pooled.macro_f1()),
            ("macro_specificity", permuted.macro_specificity(), pooled.macro_specificity()),
        ] {
            if !close(a, b) {
                return Err(format!("{name} changed under label permutation: {a} vs {b}"));
            }
        }
        Ok(format!(
            "pooled {c}x{c} SVM confusion matrix permutes cleanly (total {})",
            pooled.total()
        ))
    }
}

// ---------------------------------------------------------------------
// 4. The full Table IV sweep is bit-identical at any thread count.
// ---------------------------------------------------------------------

struct ThreadInvariance;

impl Invariant for ThreadInvariance {
    fn name(&self) -> &'static str {
        "thread-invariance"
    }
    fn description(&self) -> &'static str {
        "the Table IV sweep produces bit-identical rows at 1 and 4 worker threads"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        let scale = conformance_scale();
        let run = |threads: &str| {
            std::env::set_var("ELEV_THREADS", threads);
            let rows = table4_tm1(&ctx.corpora.user, &scale, ctx.seed);
            std::env::remove_var("ELEV_THREADS");
            rows
        };
        let one = run("1");
        let four = run("4");
        if one != four {
            let first = one
                .iter()
                .zip(&four)
                .position(|(a, b)| a != b)
                .map_or("row count".to_owned(), |i| format!("row {i}"));
            return Err(format!("table4 diverges between 1 and 4 threads at {first}"));
        }
        Ok(format!("{} rows bit-identical at 1 and 4 threads", one.len()))
    }
}

// ---------------------------------------------------------------------
// 4b. Intra-model data parallelism is invisible: trained weights (CNN
//     via the sharded dense path, MLP via the sparse path) are
//     bit-identical with ELEV_INNER_THREADS at 1 and 4.
// ---------------------------------------------------------------------

struct TrainShardInvariance;

/// A digest over every trained parameter's exact bit pattern.
fn weight_digest(net: &mut neuralnet::Sequential) -> u64 {
    use neuralnet::Layer;
    let mut d = crate::digest::Digest::new();
    net.visit_params(&mut |p, _| {
        d.f32s(p.data());
    });
    d.finish()
}

impl Invariant for TrainShardInvariance {
    fn name(&self) -> &'static str {
        "train-shard-invariance"
    }
    fn description(&self) -> &'static str {
        "CNN and sparse-MLP trained-weight digests are bit-identical at ELEV_INNER_THREADS 1 and 4"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        use neuralnet::models::{mlp, paper_cnn};
        use neuralnet::{train, train_sparse, TrainConfig};
        use tensorlite::Tensor;

        // Deterministic synthetic fixtures — small enough for the quick
        // tier, big enough for several uneven mini-batches per epoch.
        let n = 12usize;
        let x_img = Tensor::from_vec(
            (0..n * 3 * 32 * 32)
                .map(|i| ((exec::mix_seed(ctx.seed, i as u64) % 255) as f32 - 127.0) / 127.0)
                .collect(),
            &[n, 3, 32, 32],
        );
        let y: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                (0..24)
                    .map(|c| {
                        // ~2/3 sparse with deterministic nonzeros.
                        let h = exec::mix_seed(ctx.seed ^ 0xA5, (r * 24 + c) as u64);
                        if h.is_multiple_of(3) {
                            ((h % 1000) as f32 - 500.0) / 500.0
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let x_csr = CsrMatrix::from_dense_rows(&rows);

        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 5,
            lr: 2e-3,
            seed: ctx.seed,
            ..Default::default()
        };
        let run = |inner: &str| {
            std::env::set_var("ELEV_INNER_THREADS", inner);
            let mut cnn = paper_cnn(3, ctx.seed);
            train(&mut cnn, &x_img, &y, &cfg);
            let mut net = mlp(24, 16, 3, ctx.seed);
            train_sparse(&mut net, &x_csr, &y, &cfg);
            std::env::remove_var("ELEV_INNER_THREADS");
            (weight_digest(&mut cnn), weight_digest(&mut net))
        };
        let (cnn1, mlp1) = run("1");
        let (cnn4, mlp4) = run("4");
        if cnn1 != cnn4 {
            return Err(format!(
                "CNN weight digest diverges: {cnn1:016x} at 1 inner thread vs {cnn4:016x} at 4"
            ));
        }
        if mlp1 != mlp4 {
            return Err(format!(
                "sparse-MLP weight digest diverges: {mlp1:016x} at 1 inner thread vs {mlp4:016x} at 4"
            ));
        }
        Ok(format!(
            "CNN digest {cnn1:016x} and sparse-MLP digest {mlp1:016x} identical at 1 and 4 inner threads"
        ))
    }
}

// ---------------------------------------------------------------------
// 5. Sparse and dense feature paths agree: the vectorizer's sparse
//    output densifies to the dense output bit-for-bit, and the SVM
//    trained on either path predicts identically.
// ---------------------------------------------------------------------

struct SparseDenseAgreement;

impl Invariant for SparseDenseAgreement {
    fn name(&self) -> &'static str {
        "sparse-dense-agreement"
    }
    fn description(&self) -> &'static str {
        "sparse BoW features densify bit-identically and train the same SVM as dense features"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        let signals: Vec<Vec<f64>> = ctx
            .activities
            .iter()
            .map(|a| a.elevation_profile())
            .collect();
        let labels: Vec<u32> = ctx
            .activities
            .iter()
            .map(|a| u32::from(a.metro != ctx.activities[0].metro))
            .collect();
        let pipeline =
            TextPipeline::fit(Discretizer::Floor, 4, FeatureSelection::standard(), &signals);
        let dense = pipeline.transform_all(&signals);
        let sparse = pipeline.transform_all_sparse(&signals);
        for (i, (d, s)) in dense.iter().zip(&sparse).enumerate() {
            let densified = s.to_dense();
            if d.len() != densified.len()
                || d.iter().zip(&densified).any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return Err(format!("signal {i}: sparse vector densifies differently"));
            }
        }
        let svm_cfg = classicml::SvmConfig::default();
        let from_dense = classicml::SvmClassifier::fit(&dense, &labels, &svm_cfg, ctx.seed);
        let csr = CsrMatrix::from_rows(sparse.iter());
        let from_sparse =
            classicml::SvmClassifier::fit_sparse(&csr, &labels, &svm_cfg, ctx.seed);
        let p_dense = from_dense.predict(&dense);
        let p_sparse = from_sparse.predict_sparse(&csr);
        if p_dense != p_sparse {
            return Err("SVM predictions differ between sparse and dense training".into());
        }
        Ok(format!(
            "{} signals x {} features agree bitwise; SVM predictions identical",
            dense.len(),
            pipeline.n_features()
        ))
    }
}

// ---------------------------------------------------------------------
// 6. A zero-rate fault plan is the identity: the ingestion front door
//    must not perturb clean corpora at all.
// ---------------------------------------------------------------------

struct IngestCleanIdentity;

impl Invariant for IngestCleanIdentity {
    fn name(&self) -> &'static str {
        "ingest-clean-identity"
    }
    fn description(&self) -> &'static str {
        "rate-0 fault injection + ingestion reproduces the clean corpus bit-identically"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        for (name, ds) in
            [("user", &ctx.corpora.user), ("city", &ctx.corpora.city)]
        {
            if !zero_rate_is_identity(ds, ctx.seed) {
                return Err(format!("{name} corpus perturbed by the zero-rate path"));
            }
        }
        Ok(format!(
            "user ({}) and city ({}) corpora pass through untouched",
            ctx.corpora.user.len(),
            ctx.corpora.city.len()
        ))
    }
}

// ---------------------------------------------------------------------
// 7. Despiking is offset-equivariant *and* pulls spikes toward the
//    clean neighbourhood — a flipped comparison or sign in the repair
//    breaks one of the two clauses.
// ---------------------------------------------------------------------

struct DespikeOffsetEquivariance;

fn spike_track(offset: f64) -> Gpx {
    let points = (0..40)
        .map(|i| {
            // Quarter-metre terracing with two gross spikes; every value
            // (and value + 512) is exactly representable.
            let e = match i {
                10 => 300.0,
                25 => -50.0,
                _ => 100.0 + (i % 5) as f64 * 0.25,
            };
            TrackPoint::with_elevation(
                LatLon::new(38.0 + i as f64 * 1e-4, -77.0),
                e + offset,
            )
        })
        .collect();
    Gpx {
        creator: "conformance".into(),
        tracks: vec![Track { name: None, segments: vec![TrackSegment { points }] }],
    }
}

impl Invariant for DespikeOffsetEquivariance {
    fn name(&self) -> &'static str {
        "despike-offset-equivariance"
    }
    fn description(&self) -> &'static str {
        "a constant +512 m offset shifts the despiked profile by exactly +512 m, and spikes land in the clean envelope"
    }
    fn check(&self, _ctx: &InvariantCtx) -> Result<String, String> {
        const OFFSET: f64 = 512.0;
        let cfg = IngestConfig::default();
        let (d0, p0) = ingest_one(&TrackSource::Parsed(spike_track(0.0)), &cfg);
        let (d1, p1) = ingest_one(&TrackSource::Parsed(spike_track(OFFSET)), &cfg);
        let (p0, p1) = match (p0, p1) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err("spike track was quarantined instead of repaired".into()),
        };
        let despiked = |d: &Disposition| {
            matches!(d, Disposition::Repaired(rs)
                if rs.iter().any(|r| r.kind == elev_core::ingest::RepairKind::DespikedElevation))
        };
        if !despiked(&d0) || !despiked(&d1) {
            return Err("despike repair did not fire on the spike track".into());
        }
        for (i, (a, b)) in p0.iter().zip(&p1).enumerate() {
            if (a + OFFSET).to_bits() != b.to_bits() {
                return Err(format!(
                    "point {i}: despiked profile not offset-equivariant ({} + {OFFSET} != {})",
                    a, b
                ));
            }
        }
        // The repaired spikes must sit inside the clean envelope
        // [100, 101]; a flipped despike sign would push them further
        // out instead of pulling them in.
        for &i in &[10usize, 25] {
            if !(99.0..=102.0).contains(&p0[i]) {
                return Err(format!(
                    "spike at {i} repaired to {} — outside the clean envelope [99, 102]",
                    p0[i]
                ));
            }
        }
        Ok("despiked profile offset-equivariant at +512 m; spikes pulled into the clean envelope"
            .into())
    }
}

// ---------------------------------------------------------------------
// 8. Serving is a transparent transport: for every upload — clean or
//    quarantine-bound — the HTTP server returns exactly the status and
//    bytes the offline report function produces, through a registry
//    ser/de round trip of the trained weights.
// ---------------------------------------------------------------------

struct ServedEqualsOffline;

impl Invariant for ServedEqualsOffline {
    fn name(&self) -> &'static str {
        "served-equals-offline"
    }
    fn description(&self) -> &'static str {
        "the inference server returns byte-identical leakage reports to the offline path, including quarantines"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        use serve::client::HttpClient;
        use serve::{BundleConfig, InferenceArena, ModelBundle, ServeConfig, Server};

        let offline = ModelBundle::train(ctx.seed, &BundleConfig::tiny());
        // The served copy crosses the registry's binary format, so a
        // lossy encode/decode breaks this invariant too.
        let served = ModelBundle::from_records(offline.to_records())
            .map_err(|e| format!("registry round trip failed: {e}"))?;
        let cfg = ServeConfig {
            port: 0,
            workers: 2,
            model_dir: None,
            reload_poll: std::time::Duration::from_millis(200),
            ..ServeConfig::from_env()
        };
        let server =
            Server::start(served, &cfg).map_err(|e| format!("server failed to start: {e}"))?;
        let mut client = HttpClient::connect(server.addr())
            .map_err(|e| format!("client failed to connect: {e}"))?;

        let mut uploads: Vec<(String, Vec<u8>)> = ctx
            .activities
            .iter()
            .enumerate()
            .map(|(i, a)| (format!("activity {i}"), a.gpx.to_xml().into_bytes()))
            .collect();
        // A damaged upload: the quarantine path must serve identically
        // too (the 422 body is still a deterministic report).
        let truncated = uploads[0].1[..uploads[0].1.len() / 3].to_vec();
        uploads.push(("truncated activity 0".into(), truncated));

        let mut arena = InferenceArena::new();
        let mut quarantined = 0usize;
        for (label, raw) in &uploads {
            let (status, body) = offline.report_json(raw, &mut arena);
            if status != 200 {
                quarantined += 1;
            }
            let resp = client
                .post("/v1/report", raw)
                .map_err(|e| format!("{label}: request failed: {e}"))?;
            if resp.status != status || resp.text() != body {
                return Err(format!(
                    "{label}: served ({}, {} bytes) != offline ({status}, {} bytes)",
                    resp.status,
                    resp.body.len(),
                    body.len()
                ));
            }
        }
        server.shutdown();
        if quarantined == 0 {
            return Err("the damaged upload was not quarantined — the 422 path went unchecked".into());
        }
        Ok(format!(
            "{} uploads ({} quarantined) served byte-identically to the offline path",
            uploads.len(),
            quarantined
        ))
    }
}

// ---------------------------------------------------------------------
// 9. Population shards are order-free: regenerating shards {0..3}
//    in order, reversed, or on a 4-thread executor produces identical
//    content fingerprints — the seed tree admits no hidden sequential
//    state.
// ---------------------------------------------------------------------

struct ShardRegeneration;

impl Invariant for ShardRegeneration {
    fn name(&self) -> &'static str {
        "shard-regeneration"
    }
    fn description(&self) -> &'static str {
        "population shards regenerate bit-identically in any order and at any thread count"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        let pop = crate::stages::conformance_population(ctx.seed);
        let terrain = pop.terrain();
        let shards: Vec<usize> = (0..pop.n_shards()).collect();
        if shards.len() < 4 {
            return Err(format!(
                "conformance population has only {} shards; the order check needs 4",
                shards.len()
            ));
        }

        let in_order: Vec<u64> =
            shards.iter().map(|&s| pop.generate_shard(&terrain, s).fingerprint()).collect();
        let mut reversed: Vec<(usize, u64)> = shards
            .iter()
            .rev()
            .map(|&s| (s, pop.generate_shard(&terrain, s).fingerprint()))
            .collect();
        reversed.sort_by_key(|&(s, _)| s);
        let reversed: Vec<u64> = reversed.into_iter().map(|(_, f)| f).collect();
        if in_order != reversed {
            let bad = in_order.iter().zip(&reversed).position(|(a, b)| a != b).unwrap_or(0);
            return Err(format!(
                "shard {bad} fingerprints differ between in-order and reverse regeneration"
            ));
        }

        for threads in [1usize, 4] {
            let exec = exec::Executor::new(threads);
            let parallel =
                exec.map(&shards, |_, &s| pop.generate_shard(&terrain, s).fingerprint());
            if parallel != in_order {
                let bad =
                    in_order.iter().zip(&parallel).position(|(a, b)| a != b).unwrap_or(0);
                return Err(format!(
                    "shard {bad} fingerprint differs on a {threads}-thread executor"
                ));
            }
        }
        Ok(format!(
            "{} shards fingerprint-identical in order, reversed, and at 1/4 threads (shard 0 = {:016x})",
            shards.len(),
            in_order[0]
        ))
    }
}

// ---------------------------------------------------------------------
// 10. IVF matching agrees with the exact scan: over one published
//     feature store, the ANN sweep is bit-identical at 1 and 4
//     threads, counts exactly the tracks the exact sweep counts, and
//     the exact path's JSON artifact is untouched by the index living
//     alongside it in the store directory.
// ---------------------------------------------------------------------

struct AnnExactAgreement;

impl Invariant for AnnExactAgreement {
    fn name(&self) -> &'static str {
        "ann-exact-agreement"
    }
    fn description(&self) -> &'static str {
        "the IVF sweep is thread-invariant, track-exact, and leaves the exact-path artifact byte-identical"
    }
    fn check(&self, ctx: &InvariantCtx) -> Result<String, String> {
        use elev_core::scale::{scale_sweep, AnnSettings, ScaleConfig};

        let mut cfg = ScaleConfig::new(24, ctx.seed);
        cfg.population.shard_size = 8;
        cfg.pop_sizes = vec![12, 24];
        cfg.probes_per_city = 2;
        cfg.store_dir = std::env::temp_dir()
            .join(format!("elev-conf-ann-{}-{}", ctx.seed, std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
        let dir = cfg.store_dir.clone();
        let fail = move |msg: String| {
            let _ = std::fs::remove_dir_all(&dir);
            msg
        };

        let mut exact_cfg = cfg.clone();
        exact_cfg.ann = None;
        let exact = scale_sweep(&exact_cfg, &exec::Executor::new(2))
            .map_err(|e| fail(format!("exact sweep failed: {e}")))?;

        cfg.ann = Some(AnnSettings { centroids: 8, nprobe: 3 });
        let ann1 = scale_sweep(&cfg, &exec::Executor::new(1))
            .map_err(|e| fail(format!("ANN sweep (1 thread) failed: {e}")))?;
        let ann4 = scale_sweep(&cfg, &exec::Executor::new(4))
            .map_err(|e| fail(format!("ANN sweep (4 threads) failed: {e}")))?;
        if ann1 != ann4 {
            return Err(fail("ANN sweep diverges between 1 and 4 threads".into()));
        }
        let info = ann1
            .ann
            .as_ref()
            .ok_or_else(|| fail("ANN sweep reported no ANN accounting".into()))?;
        if info.rows_scanned > info.rows_total {
            return Err(fail(format!(
                "ANN rescored {} of {} pairs — more than the exact scan",
                info.rows_scanned, info.rows_total
            )));
        }
        if info.recall3.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err(fail(format!("recall@3 out of [0, 1]: {:?}", info.recall3)));
        }
        let exact_tracks: Vec<u64> = exact.points.iter().map(|p| p.tracks).collect();
        let ann_tracks: Vec<u64> = ann1.points.iter().map(|p| p.tracks).collect();
        if exact_tracks != ann_tracks {
            return Err(fail(format!(
                "ANN track counts {ann_tracks:?} != exact {exact_tracks:?}"
            )));
        }

        // Re-running the exact sweep against the store that now also
        // holds the index must reproduce the first artifact byte for
        // byte — the sidecars are invisible to the exact path.
        let again = scale_sweep(&exact_cfg, &exec::Executor::new(2))
            .map_err(|e| fail(format!("exact re-sweep failed: {e}")))?;
        if again.to_json() != exact.to_json() {
            return Err(fail("exact-path JSON changed after the index was built".into()));
        }

        let _ = std::fs::remove_dir_all(&cfg.store_dir);
        Ok(format!(
            "{} probes: ANN thread-invariant, {}/{} pairs rescored, recall@3 {:?}, exact artifact untouched",
            ann1.probes, info.rows_scanned, info.rows_total, info.recall3
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_registers_at_least_five_invariants() {
        assert!(all_invariants().len() >= 5);
    }

    #[test]
    fn names_are_unique_and_kebab_case() {
        let invs = all_invariants();
        let mut names: Vec<&str> = invs.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate invariant names");
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
