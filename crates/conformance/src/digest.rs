//! Content digests for pipeline artifacts.
//!
//! FNV-1a 64-bit over a canonical byte encoding: every artifact the
//! golden registry pins is reduced to a stream of length-prefixed
//! fields (floats by their IEEE-754 bit patterns, never by display
//! formatting), so two artifacts collide only if they are
//! bit-identical field for field. No external hashing crates — the
//! build environment is offline.

/// Incremental FNV-1a 64-bit hasher over canonical field encodings.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no length prefix; use the typed writers for
    /// self-delimiting fields).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a length-prefixed byte field.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.u64(bytes.len() as u64).raw(bytes)
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.raw(&v.to_le_bytes())
    }

    /// Absorbs a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Absorbs an `f64` by bit pattern (distinguishes -0.0 and every
    /// NaN payload — exactly what bit-stability pinning wants).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Absorbs an `f32` by bit pattern.
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.raw(&v.to_bits().to_le_bytes())
    }

    /// Absorbs a length-prefixed UTF-8 string field.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Absorbs a whole `f64` slice, length-prefixed.
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
        self
    }

    /// Absorbs a whole `f32` slice, length-prefixed.
    pub fn f32s(&mut self, vs: &[f32]) -> &mut Self {
        self.usize(vs.len());
        for &v in vs {
            self.f32(v);
        }
        self
    }

    /// The final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot digest of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    Digest::new().bytes(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c; `raw` is the unprefixed
        // primitive, so the reference vectors apply to it directly.
        assert_eq!(Digest::new().raw(b"a").finish(), 0xaf63dc4c8601ec8c);
        assert_eq!(Digest::new().raw(b"foobar").finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fields_are_self_delimiting() {
        // ("ab", "c") must not collide with ("a", "bc").
        let d1 = Digest::new().str("ab").str("c").finish();
        let d2 = Digest::new().str("a").str("bc").finish();
        assert_ne!(d1, d2);
    }

    #[test]
    fn float_bits_not_display() {
        let zero = Digest::new().f64(0.0).finish();
        let negzero = Digest::new().f64(-0.0).finish();
        assert_ne!(zero, negzero);
        // NaN still hashes deterministically.
        assert_eq!(
            Digest::new().f64(f64::NAN).finish(),
            Digest::new().f64(f64::NAN).finish()
        );
    }

    #[test]
    fn digest_is_stable() {
        let mut d = Digest::new();
        d.u64(7).f64s(&[1.5, -2.25]).str("stage");
        assert_eq!(d.finish(), {
            let mut e = Digest::new();
            e.u64(7).f64s(&[1.5, -2.25]).str("stage");
            e.finish()
        });
    }
}
