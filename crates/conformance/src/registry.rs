//! The golden-artifact registry: pinned stage digests with structured
//! per-stage diffs and an `UPDATE_GOLDENS=1` regeneration path.
//!
//! The pinned file lives at `crates/conformance/goldens/quick.txt`.
//! One line per stage:
//!
//! ```text
//! routegen.tracks 0011223344556677 # 8 activities, 3456 points
//! ```
//!
//! A digest mismatch does not fail with a raw hex comparison — the
//! registry renders a table of every stage with its pinned and
//! computed digest and summary, so the *first divergent stage* (the
//! one upstream of every other mismatch) is obvious at a glance.

use crate::stages::StageArtifact;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One parsed line of the goldens file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenEntry {
    /// Stage name.
    pub name: String,
    /// Pinned digest.
    pub digest: u64,
    /// Pinned summary (informational; not compared).
    pub summary: String,
}

/// Comparison status of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Pinned and computed digests agree.
    Ok,
    /// Digests differ.
    Mismatch,
    /// The stage is computed but not pinned (new stage).
    Unpinned,
    /// The stage is pinned but no longer computed (removed stage).
    Missing,
}

/// One row of a registry comparison.
#[derive(Debug, Clone)]
pub struct StageDiff {
    /// Stage name.
    pub name: String,
    /// Pinned `(digest, summary)`, if the stage is in the goldens file.
    pub pinned: Option<(u64, String)>,
    /// Computed `(digest, summary)`, if the stage was regenerated.
    pub computed: Option<(u64, String)>,
    /// The verdict.
    pub status: StageStatus,
}

/// Path of the committed goldens file.
pub fn goldens_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/goldens/quick.txt"))
}

/// Parses a goldens file's contents.
///
/// Unparsable lines are an error, not a skip — a half-corrupted pin
/// must never silently weaken the gate.
pub fn parse_goldens(text: &str) -> Result<Vec<GoldenEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut head = line;
        let mut summary = String::new();
        if let Some(pos) = line.find(" # ") {
            head = line[..pos].trim();
            summary = line[pos + 3..].trim().to_owned();
        }
        let mut fields = head.split_whitespace();
        let (name, hex) = match (fields.next(), fields.next(), fields.next()) {
            (Some(n), Some(h), None) => (n, h),
            _ => return Err(format!("goldens line {}: expected `name hex16 # summary`", lineno + 1)),
        };
        let digest = u64::from_str_radix(hex, 16)
            .map_err(|_| format!("goldens line {}: bad digest {hex:?}", lineno + 1))?;
        entries.push(GoldenEntry { name: name.to_owned(), digest, summary });
    }
    Ok(entries)
}

/// Renders stage artifacts in the goldens file format.
pub fn render_goldens(stages: &[StageArtifact]) -> String {
    let mut out = String::from(
        "# Pinned pipeline-stage digests (FNV-1a 64 over canonical field encodings).\n\
         # Regenerate after an intentional output change:\n\
         #   UPDATE_GOLDENS=1 cargo test -p conformance --test golden\n\
         # Never update to silence a mismatch you cannot explain.\n",
    );
    for s in stages {
        let _ = writeln!(out, "{} {:016x} # {}", s.name, s.digest, s.summary);
    }
    out
}

/// Compares pinned entries against computed artifacts, stage by stage.
pub fn compare(pinned: &[GoldenEntry], computed: &[StageArtifact]) -> Vec<StageDiff> {
    let mut diffs: Vec<StageDiff> = Vec::new();
    for c in computed {
        let pin = pinned.iter().find(|p| p.name == c.name);
        let status = match pin {
            Some(p) if p.digest == c.digest => StageStatus::Ok,
            Some(_) => StageStatus::Mismatch,
            None => StageStatus::Unpinned,
        };
        diffs.push(StageDiff {
            name: c.name.to_owned(),
            pinned: pin.map(|p| (p.digest, p.summary.clone())),
            computed: Some((c.digest, c.summary.clone())),
            status,
        });
    }
    for p in pinned {
        if !computed.iter().any(|c| c.name == p.name) {
            diffs.push(StageDiff {
                name: p.name.clone(),
                pinned: Some((p.digest, p.summary.clone())),
                computed: None,
                status: StageStatus::Missing,
            });
        }
    }
    diffs
}

/// Renders a comparison as the human-readable per-stage report.
pub fn render_diff(diffs: &[StageDiff]) -> String {
    let width = diffs.iter().map(|d| d.name.len()).max().unwrap_or(8).max(8);
    let mut out = String::new();
    let _ = writeln!(out, "{:width$}  {:16}  {:16}  status", "stage", "pinned", "computed");
    for d in diffs {
        let hex = |v: &Option<(u64, String)>| {
            v.as_ref().map_or_else(|| "-".repeat(16), |(h, _)| format!("{h:016x}"))
        };
        let status = match d.status {
            StageStatus::Ok => "ok",
            StageStatus::Mismatch => "MISMATCH",
            StageStatus::Unpinned => "UNPINNED",
            StageStatus::Missing => "MISSING",
        };
        let _ = writeln!(out, "{:width$}  {}  {}  {status}", d.name, hex(&d.pinned), hex(&d.computed));
        if d.status != StageStatus::Ok {
            if let Some((_, s)) = &d.pinned {
                let _ = writeln!(out, "{:width$}    pinned:   {s}", "");
            }
            if let Some((_, s)) = &d.computed {
                let _ = writeln!(out, "{:width$}    computed: {s}", "");
            }
        }
    }
    out
}

/// True when every computed stage matches its pin and no stage is
/// unpinned or missing.
pub fn all_ok(diffs: &[StageDiff]) -> bool {
    diffs.iter().all(|d| d.status == StageStatus::Ok)
}

/// The full gate used by `tests/golden.rs` and `scripts/verify.sh`:
/// compares `computed` against the committed goldens file.
///
/// With `UPDATE_GOLDENS=1` in the environment the file is rewritten
/// from `computed` and the old-vs-new report is returned as `Ok`.
/// Otherwise returns `Ok(report)` when everything matches and
/// `Err(report)` — with regeneration instructions — when any stage
/// diverges.
pub fn check_or_update(computed: &[StageArtifact]) -> Result<String, String> {
    let path = goldens_path();
    let pinned_text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read goldens file {}: {e}", path.display()))?;
    let pinned = parse_goldens(&pinned_text)?;
    let diffs = compare(&pinned, computed);
    let report = render_diff(&diffs);

    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        std::fs::write(&path, render_goldens(computed))
            .map_err(|e| format!("cannot write goldens file {}: {e}", path.display()))?;
        return Ok(format!(
            "goldens regenerated at {} — review this diff before committing:\n{report}",
            path.display()
        ));
    }
    if all_ok(&diffs) {
        Ok(report)
    } else {
        Err(format!(
            "golden-artifact mismatch — the pipeline output changed.\n{report}\n\
             If the change is intentional, regenerate with\n\
             UPDATE_GOLDENS=1 cargo test -p conformance --test golden\n\
             and commit the updated goldens file with an explanation."
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(name: &'static str, digest: u64) -> StageArtifact {
        StageArtifact { name, digest, summary: format!("artifact {name}") }
    }

    #[test]
    fn roundtrips_through_render_and_parse() {
        let stages = vec![art("a.one", 0xdead), art("b.two", 0xbeef)];
        let parsed = parse_goldens(&render_goldens(&stages)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a.one");
        assert_eq!(parsed[0].digest, 0xdead);
        assert_eq!(parsed[1].summary, "artifact b.two");
    }

    #[test]
    fn rejects_corrupt_lines() {
        assert!(parse_goldens("just-a-name\n").is_err());
        assert!(parse_goldens("name nothex16 # x\n").is_err());
    }

    #[test]
    fn compare_flags_every_divergence_class() {
        let pinned = parse_goldens(&render_goldens(&[art("same", 1), art("diff", 2), art("gone", 3)])).unwrap();
        let computed = vec![art("same", 1), art("diff", 99), art("new", 4)];
        let diffs = compare(&pinned, &computed);
        let status_of = |n: &str| diffs.iter().find(|d| d.name == n).unwrap().status;
        assert_eq!(status_of("same"), StageStatus::Ok);
        assert_eq!(status_of("diff"), StageStatus::Mismatch);
        assert_eq!(status_of("new"), StageStatus::Unpinned);
        assert_eq!(status_of("gone"), StageStatus::Missing);
        assert!(!all_ok(&diffs));
        let report = render_diff(&diffs);
        assert!(report.contains("MISMATCH"));
        assert!(report.contains("artifact diff"));
    }
}
