//! Conformance subsystem: the repo's correctness gate.
//!
//! Three pillars, exercised through `cargo test -p conformance` (which
//! `scripts/verify.sh` and CI call):
//!
//! 1. **Golden-artifact registry** ([`registry`], [`stages`]) — pinned
//!    content digests for every stage of the attack pipeline, from
//!    synthetic track generation to per-model metric tables. A hot-path
//!    rewrite that changes any stage's bits fails with a structured
//!    per-stage diff; intentional changes regenerate the pins with
//!    `UPDATE_GOLDENS=1`.
//! 2. **Metamorphic invariant suite** ([`invariants`]) — relations that
//!    must hold under transformed inputs (rigid motion, elevation
//!    offsets, label permutations, thread counts, sparse-vs-dense
//!    representations), unified behind one [`invariants::Invariant`]
//!    trait.
//! 3. **Deterministic fuzz driver** ([`fuzz`]) — seed-indexed GPX
//!    mutation with an error-class histogram as the coverage proxy and
//!    a ddmin-style minimizer feeding the committed corpus in
//!    `crates/gpxfile/tests/corpus/`.
//!
//! Everything is a pure function of the seed: no wall-clock, no
//! external processes, no network. See EXPERIMENTS.md, "Testing &
//! Conformance".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod fuzz;
pub mod invariants;
pub mod registry;
pub mod stages;

pub use digest::{digest_bytes, Digest};
pub use fuzz::{run_campaign, seed_doc, FuzzConfig, FuzzReport};
pub use invariants::{all_invariants, run_all, Invariant, InvariantCtx};
pub use registry::{check_or_update, goldens_path};
pub use stages::{compute_stages, StageArtifact, STAGE_NAMES};
