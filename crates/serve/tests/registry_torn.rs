//! The torn-write matrix: a publish killed at every interesting
//! boundary — mid-record-file, between record files, mid-manifest —
//! must never take the registry down. `load_generation` falls back to
//! the last-good generation, reports each torn file as its own
//! distinct structured error, and a live server keeps serving the old
//! generation until a clean publish lands.

mod common;

use serve::bundle::ModelBundle;
use serve::client::HttpClient;
use serve::registry::{self, ModelRecord, RegistryError};
use serve::{InferenceArena, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A per-test scratch directory under the system temp dir, removed on
/// drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("elev-torn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn records_v(version: u32) -> Vec<ModelRecord> {
    common::tiny_bundle()
        .to_records()
        .into_iter()
        .map(|mut r| {
            r.version = version;
            r
        })
        .collect()
}

/// Publishes generation 1 (v1 records) then generation 2 (v2 records)
/// and returns the v2 file names in manifest order.
fn two_generations(dir: &Path) -> Vec<String> {
    registry::save_dir(dir, &records_v(1)).expect("publish gen1");
    registry::save_dir(dir, &records_v(2)).expect("publish gen2");
    let manifest = std::fs::read_to_string(dir.join(registry::MANIFEST)).expect("manifest");
    registry::parse_manifest(&manifest)
        .expect("parses")
        .entries
        .iter()
        .map(|e| e.file.clone())
        .collect()
}

#[test]
fn byte_level_cut_ladder_falls_back_with_distinct_errors() {
    let dir = TempDir::new("cut-ladder");
    let files = two_generations(&dir.0);
    let victim = dir.0.join(&files[0]);
    let original = std::fs::read(&victim).expect("victim bytes");

    // A write killed at any byte offset leaves a strict prefix: every
    // rung of the ladder must read as Truncated and fall back to
    // generation 1.
    for cut in [0usize, 1, original.len() / 4, original.len() / 2, original.len() - 1] {
        std::fs::write(&victim, &original[..cut]).expect("tear");
        let load = registry::load_generation(&dir.0).expect("fallback exists");
        assert!(load.fell_back, "cut at {cut}: must fall back");
        assert_eq!(load.generation, 1, "cut at {cut}: must serve the last-good generation");
        assert_eq!(load.errors.len(), 1, "cut at {cut}: one torn file");
        assert_eq!(load.errors[0].0, files[0]);
        assert!(
            matches!(load.errors[0].1, RegistryError::Truncated { len, .. } if len == cut),
            "cut at {cut}: expected Truncated, got {:?}",
            load.errors[0].1
        );
        let bundle = ModelBundle::from_records(load.records).expect("gen1 rebuilds");
        let mut arena = InferenceArena::new();
        let (status, _) = bundle.report_json(&common::clean_gpx(), &mut arena);
        assert_eq!(status, 200, "cut at {cut}: the fallback generation must actually serve");
    }

    // Same length, flipped bit: a distinct error class, same fallback.
    let mut flipped = original.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    std::fs::write(&victim, &flipped).expect("flip");
    let load = registry::load_generation(&dir.0).expect("fallback exists");
    assert!(load.fell_back);
    assert_eq!(load.errors[0].1.name(), "checksum_mismatch", "got {:?}", load.errors[0].1);

    // Deleted outright: a third distinct class.
    std::fs::remove_file(&victim).expect("rm");
    let load = registry::load_generation(&dir.0).expect("fallback exists");
    assert!(load.fell_back);
    assert_eq!(load.errors[0].1.name(), "io", "got {:?}", load.errors[0].1);

    // Restored: generation 2 loads clean again.
    std::fs::write(&victim, &original).expect("restore");
    let load = registry::load_generation(&dir.0).expect("clean");
    assert!(!load.fell_back, "restored publish must load clean: {:?}", load.errors);
    assert_eq!(load.generation, 2);
}

#[test]
fn kill_at_every_record_boundary_serves_the_last_good_generation() {
    let dir = TempDir::new("record-boundary");
    let files = two_generations(&dir.0);
    let images: Vec<Vec<u8>> =
        files.iter().map(|f| std::fs::read(dir.0.join(f)).expect("image")).collect();

    // Simulate the publisher dying after exactly k record files became
    // durable (the manifest made it, the tail of the file set did not).
    for k in 0..files.len() {
        for file in &files {
            let _ = std::fs::remove_file(dir.0.join(file));
        }
        for (file, image) in files.iter().zip(&images).take(k) {
            std::fs::write(dir.0.join(file), image).expect("rewrite");
        }
        let load = registry::load_generation(&dir.0).expect("fallback exists");
        assert!(load.fell_back, "kill after {k} files: must fall back");
        assert_eq!(load.generation, 1, "kill after {k} files: wrong generation");
        assert_eq!(
            load.errors.len(),
            files.len() - k,
            "kill after {k} files: every missing file reported"
        );
        for (file, err) in &load.errors {
            assert_eq!(err.name(), "io", "missing {file}: got {err:?}");
        }
        assert_eq!(load.records.len(), files.len(), "the fallback generation is complete");
    }

    // All N files durable: the new generation loads clean.
    for (file, image) in files.iter().zip(&images) {
        std::fs::write(dir.0.join(file), image).expect("rewrite");
    }
    let load = registry::load_generation(&dir.0).expect("clean");
    assert!(!load.fell_back, "{:?}", load.errors);
    assert_eq!(load.generation, 2);
}

#[test]
fn torn_manifest_falls_back_to_prev() {
    let dir = TempDir::new("torn-manifest");
    two_generations(&dir.0);
    let manifest_path = dir.0.join(registry::MANIFEST);
    let good = std::fs::read_to_string(&manifest_path).expect("manifest");

    // A manifest cut mid-line must read as malformed — never as a
    // shorter valid manifest. Cut right before the last line's
    // checksum field so the line is unambiguously incomplete.
    let cut = good.rfind(" fnv1a64=").expect("manifest has checksums");
    std::fs::write(&manifest_path, &good[..cut]).expect("tear");
    let load = registry::load_generation(&dir.0).expect("fallback exists");
    assert!(load.fell_back);
    assert_eq!(load.generation, 1);
    assert_eq!(load.errors.len(), 1);
    assert_eq!(load.errors[0].0, registry::MANIFEST);
    assert_eq!(load.errors[0].1.name(), "malformed", "got {:?}", load.errors[0].1);

    // A cut INSIDE the hex digits still parses as (wrong) hex — the
    // entry's checksum then disagrees with the file, so the loader
    // falls back anyway: the file verification backstops the text
    // format.
    std::fs::write(&manifest_path, &good[..good.len() - 10]).expect("tear hex");
    let load = registry::load_generation(&dir.0).expect("fallback exists");
    assert!(load.fell_back);
    assert_eq!(load.generation, 1);
    assert_eq!(load.errors[0].1.name(), "checksum_mismatch", "got {:?}", load.errors[0].1);

    // Manifest gone entirely: same fallback, io error class.
    std::fs::remove_file(&manifest_path).expect("rm");
    let load = registry::load_generation(&dir.0).expect("fallback exists");
    assert!(load.fell_back);
    assert_eq!(load.errors[0].1.name(), "io");
}

#[test]
fn first_publish_has_no_fallback_and_surfaces_the_error() {
    let dir = TempDir::new("no-fallback");
    registry::save_dir(&dir.0, &records_v(1)).expect("publish gen1");
    assert!(!dir.0.join(registry::MANIFEST_PREV).exists(), "first publish has no prev");

    let manifest = std::fs::read_to_string(dir.0.join(registry::MANIFEST)).expect("manifest");
    let first = registry::parse_manifest(&manifest).expect("parses").entries[0].file.clone();
    let victim = dir.0.join(&first);
    let original = std::fs::read(&victim).expect("bytes");
    std::fs::write(&victim, &original[..original.len() / 2]).expect("tear");

    match registry::load_generation(&dir.0) {
        Err(RegistryError::Truncated { .. }) => {}
        other => panic!("expected the torn file's own error, got {other:?}"),
    }
}

#[test]
fn leftover_tmp_files_are_ignored_by_every_loader() {
    let dir = TempDir::new("tmp-leftovers");
    registry::save_dir(&dir.0, &records_v(1)).expect("publish gen1");
    // A crash between `File::create` and `rename` leaves a `.tmp`
    // sibling; neither loader may trip on it.
    std::fs::write(dir.0.join("tm1-svm@9.elevmdl.tmp"), b"half a write").expect("tmp");
    let load = registry::load_generation(&dir.0).expect("clean");
    assert!(!load.fell_back, "{:?}", load.errors);
    let n = load.records.len();
    assert_eq!(registry::load_dir(&dir.0).expect("load_dir").len(), n, "load_dir counts tmp");
}

#[test]
fn live_server_keeps_serving_through_a_torn_publish() {
    let dir = TempDir::new("live-torn");
    registry::save_dir(&dir.0, &records_v(1)).expect("publish gen1");
    let load = registry::load_generation(&dir.0).expect("clean");
    let served = ModelBundle::from_records(load.records).expect("rebuilds");

    let cfg = ServeConfig {
        port: 0,
        workers: 1,
        model_dir: Some(dir.0.clone()),
        reload_poll: Duration::from_millis(50),
        ..ServeConfig::from_env()
    };
    let server = Server::start(served, &cfg).expect("bind");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    assert!(client.get("/v1/models").expect("models").text().contains("\"version\": 1"));
    assert_eq!(server.health().generation, 1);

    let raw = common::clean_gpx();
    let gen1_report = client.post("/v1/report", &raw).expect("post").text();

    // Publish generation 2 in a staging directory, then land it torn:
    // record files first (one truncated), manifests last — the mtime
    // bump is what the reloader sees.
    let staging = TempDir::new("live-torn-staging");
    registry::save_dir(&staging.0, &records_v(2)).expect("stage gen2");
    let staged = std::fs::read_to_string(staging.0.join(registry::MANIFEST)).expect("manifest");
    let entries = registry::parse_manifest(&staged).expect("parses").entries;
    for (i, entry) in entries.iter().enumerate() {
        let mut image = std::fs::read(staging.0.join(&entry.file)).expect("image");
        if i == 0 {
            image.truncate(image.len() / 2); // the torn write
        }
        std::fs::write(dir.0.join(&entry.file), &image).expect("land");
    }
    let gen1_manifest = std::fs::read_to_string(dir.0.join(registry::MANIFEST)).expect("old");
    registry::atomic_write(&dir.0.join(registry::MANIFEST_PREV), gen1_manifest.as_bytes())
        .expect("prev");
    let gen2_manifest = staged.replacen("generation 1", "generation 2", 1);
    registry::atomic_write(&dir.0.join(registry::MANIFEST), gen2_manifest.as_bytes())
        .expect("manifest");

    // The reloader must notice, refuse the torn generation, and keep
    // serving generation 1.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.health().reload_fallbacks < 1 {
        assert!(Instant::now() < deadline, "fallback never counted: {:?}", server.health());
        std::thread::sleep(Duration::from_millis(25));
    }
    let health = server.health();
    assert_eq!(health.generation, 1, "torn publish must not advance the generation: {health:?}");
    assert!(!health.breaker_open, "one bad reload must not open the breaker: {health:?}");
    assert!(client.get("/v1/models").expect("models").text().contains("\"version\": 1"));
    assert_eq!(
        client.post("/v1/report", &raw).expect("post").text(),
        gen1_report,
        "reports must stay byte-identical through the torn publish"
    );

    // Repair the torn file and re-touch the manifest: the reloader
    // must pick up generation 2 cleanly.
    let repaired = std::fs::read(staging.0.join(&entries[0].file)).expect("image");
    std::fs::write(dir.0.join(&entries[0].file), &repaired).expect("repair");
    registry::atomic_write(&dir.0.join(registry::MANIFEST), gen2_manifest.as_bytes())
        .expect("re-touch");
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.health().generation < 2 {
        assert!(Instant::now() < deadline, "repair never reloaded: {:?}", server.health());
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(client.get("/v1/models").expect("models").text().contains("\"version\": 2"));
    assert_eq!(
        client.post("/v1/report", &raw).expect("post").text(),
        gen1_report,
        "same weights, same report, new generation"
    );
    server.shutdown();
}

#[test]
fn repeated_bad_reloads_open_the_circuit_breaker() {
    let dir = TempDir::new("breaker");
    registry::save_dir(&dir.0, &records_v(1)).expect("publish gen1");
    let load = registry::load_generation(&dir.0).expect("clean");
    let served = ModelBundle::from_records(load.records).expect("rebuilds");
    let gen1_manifest = std::fs::read_to_string(dir.0.join(registry::MANIFEST)).expect("manifest");

    let cfg = ServeConfig {
        port: 0,
        workers: 1,
        model_dir: Some(dir.0.clone()),
        reload_poll: Duration::from_millis(50),
        ..ServeConfig::from_env()
    };
    let server = Server::start(served, &cfg).expect("bind");

    // Three consecutive torn publishes (unparseable manifest, prev
    // intact) must open the breaker.
    registry::atomic_write(&dir.0.join(registry::MANIFEST_PREV), gen1_manifest.as_bytes())
        .expect("prev");
    for round in 1..=3u64 {
        registry::atomic_write(
            &dir.0.join(registry::MANIFEST),
            format!("torn garbage, round {round}").as_bytes(),
        )
        .expect("tear");
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.health().reload_fallbacks < round {
            assert!(
                Instant::now() < deadline,
                "round {round} never counted: {:?}",
                server.health()
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    let health = server.health();
    assert!(health.breaker_open, "three bad reloads must open the breaker: {health:?}");
    assert_eq!(health.generation, 1, "bad reloads never advance the generation: {health:?}");

    // A good publish closes it again (the open breaker only slows the
    // poll, it never stops probing).
    registry::atomic_write(&dir.0.join(registry::MANIFEST), gen1_manifest.as_bytes())
        .expect("repair");
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.health().breaker_open {
        assert!(Instant::now() < deadline, "breaker never closed: {:?}", server.health());
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(server.health().reload_successes >= 1);
    server.shutdown();
}
