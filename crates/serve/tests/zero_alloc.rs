//! Pins the tentpole's zero-allocation claim: once a worker's arena
//! and the feature cache are warm, the per-request classify path
//! (cached BoW lookup + SVM + forest + MLP for both tasks) performs
//! exactly zero heap allocations.
//!
//! Lives in its own integration-test binary with a single test
//! function so the process-wide allocation counter sees only this
//! thread's work during the measured window.

mod common;

use elev_core::ingest::{ingest_one, IngestConfig, TrackSource};
use serve::InferenceArena;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_classify_path_allocates_nothing() {
    let bundle = common::tiny_bundle();
    let raw = common::clean_gpx();
    let (_, profile) = ingest_one(&TrackSource::Raw(raw), &IngestConfig::default());
    let profile = profile.expect("clean fixture ingests");

    // Warm-up: grow the arena, populate the BoW cache, run one full
    // classify per task so every reusable buffer reaches steady state.
    let mut arena = InferenceArena::new();
    bundle.warm(&mut arena);
    for task in bundle.tasks() {
        let bow = task.bow(&profile);
        black_box(task.classify_bow(&bow, &mut arena));
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        for task in bundle.tasks() {
            let bow = task.bow(&profile);
            black_box(task.classify_bow(&bow, &mut arena));
        }
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state classify path allocated {allocs} times over 200 task classifications"
    );
}
