//! Shared fixtures for the serve integration tests: deterministic GPX
//! documents in three ingestion regimes, plus one lazily trained tiny
//! bundle (training is the expensive part; every test file shares it).
//!
//! Each integration-test binary uses a different subset of these.
#![allow(dead_code)]

use routegen::AthleteSimulator;
use serve::bundle::{BundleConfig, ModelBundle};
use std::sync::OnceLock;
use terrain::{CityId, SyntheticTerrain};

/// Every fixture and bundle in the harness derives from this seed.
pub const SEED: u64 = 0xE1EF_57A7;

/// A pristine synthetic activity (parses clean, zero repairs).
pub fn clean_gpx() -> Vec<u8> {
    let mut sim = AthleteSimulator::new(SyntheticTerrain::new(SEED), SEED);
    let activity = sim.generate(CityId::WashingtonDc, 1).remove(0);
    activity.gpx.to_xml().into_bytes()
}

/// Duplicates every `stride`-th track-point line `copies` times —
/// consecutive identical points, which ingestion deduplicates (each
/// removed point counts toward the repaired fraction).
fn duplicate_points(xml: &str, stride: usize, copies: usize) -> String {
    let mut out = String::with_capacity(xml.len() * 2);
    let mut point_idx = 0usize;
    for line in xml.lines() {
        out.push_str(line);
        out.push('\n');
        if line.trim_start().starts_with("<trkpt") {
            if point_idx.is_multiple_of(stride) {
                for _ in 0..copies {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            point_idx += 1;
        }
    }
    out
}

/// A recoverable upload: ~10% duplicated points plus two elevation
/// spikes — ingestion repairs it (`dedup` + `despike`) and the report
/// still carries predictions.
pub fn faulted_gpx() -> Vec<u8> {
    let xml = String::from_utf8(clean_gpx()).expect("gpx is utf-8");
    let mut out = duplicate_points(&xml, 10, 1);
    // Spike two well-separated mid-track elevations far past the 40 m
    // despike threshold.
    for (nth, spiked) in [(20, "<ele>9000.0000</ele>"), (40, "<ele>9500.0000</ele>")] {
        let mut seen = 0usize;
        let mut replaced = String::with_capacity(out.len());
        for line in out.lines() {
            if line.trim_start().starts_with("<trkpt") {
                seen += 1;
                if seen == nth {
                    let start = line.find("<ele>").expect("point has an elevation");
                    let end = line.find("</ele>").expect("point has an elevation") + "</ele>".len();
                    replaced.push_str(&line[..start]);
                    replaced.push_str(spiked);
                    replaced.push_str(&line[end..]);
                    replaced.push('\n');
                    continue;
                }
            }
            replaced.push_str(line);
            replaced.push('\n');
        }
        out = replaced;
    }
    out.into_bytes()
}

/// An untrustworthy upload: ~50% duplicated points, so repairs touch
/// more than `max_repaired_fraction` (0.35) of the track and ingestion
/// quarantines it as too corrupt.
pub fn corrupt_gpx() -> Vec<u8> {
    let xml = String::from_utf8(clean_gpx()).expect("gpx is utf-8");
    duplicate_points(&xml, 2, 1).into_bytes()
}

/// The shared tiny bundle (trained once per test binary).
pub fn tiny_bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| ModelBundle::train(SEED, &BundleConfig::tiny()))
}
