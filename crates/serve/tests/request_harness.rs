//! Request-level harness: a real server on an ephemeral port, driven
//! by the in-tree client, pinned against golden reports.
//!
//! Everything lives in one test function because it mutates
//! `ELEV_THREADS`: the same three uploads are served under thread
//! budget 1 (training + serving) and again under budget 4 with a
//! freshly trained bundle, and every byte must match — the
//! whole-pipeline determinism claim, asserted at the HTTP boundary.

mod common;

use serve::bundle::ModelBundle;
use serve::client::HttpClient;
use serve::{InferenceArena, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.json"))
}

/// Compares `actual` against the pinned golden, or rewrites the golden
/// when `UPDATE_GOLDENS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden {name} — run with UPDATE_GOLDENS=1"));
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "served report for {name} diverged from its golden"
    );
}

fn serve_fixtures(server: &Server, fixtures: &[(&str, Vec<u8>)]) -> Vec<(u16, String)> {
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    fixtures
        .iter()
        .map(|(_, raw)| {
            let resp = client.post("/v1/report", raw).expect("post");
            (resp.status, resp.text())
        })
        .collect()
}

#[test]
fn served_reports_match_goldens_and_are_thread_invariant() {
    let fixtures = [
        ("clean", common::clean_gpx()),
        ("repaired", common::faulted_gpx()),
        ("quarantined", common::corrupt_gpx()),
    ];
    let expected_status = [200u16, 200, 422];

    // --- thread budget 1: train, serve (1 worker), collect ---
    std::env::set_var("ELEV_THREADS", "1");
    std::env::set_var("ELEV_INNER_THREADS", "1");
    let offline_bundle = common::tiny_bundle();

    // The server gets the bundle via a registry round trip, so the
    // served weights also cross the ser/de boundary bit-for-bit.
    let served_bundle =
        ModelBundle::from_records(offline_bundle.to_records()).expect("records rebuild");
    let mut cfg = ServeConfig { port: 0, workers: 1, ..ServeConfig::from_env() };
    let server = Server::start(served_bundle, &cfg).expect("bind");
    let under_1 = serve_fixtures(&server, &fixtures);

    // Protocol smoke on the same server: health, model listing,
    // routing errors, and malformed framing.
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let health = client.get("/healthz").expect("healthz");
    assert_eq!((health.status, health.text().as_str()), (200, "{\"status\": \"ok\"}"));
    let models = client.get("/v1/models").expect("models");
    assert_eq!(models.status, 200);
    let listing = models.text();
    for name in ["tm1-svm", "tm1-rfc", "tm1-mlp", "tm3-svm", "tm3-rfc", "tm3-mlp"] {
        assert!(listing.contains(name), "model listing missing {name}: {listing}");
    }
    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(client.post("/healthz", b"x").expect("405").status, 405);

    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(b"GET / HTTP/2.0\r\n\r\n").expect("write");
    let mut resp = String::new();
    let _ = raw.read_to_string(&mut resp);
    assert!(resp.starts_with("HTTP/1.1 400"), "framing error should 400: {resp}");
    assert!(resp.contains("bad_version"), "error body names the parse error: {resp}");

    server.shutdown();

    // --- thread budget 4: fresh training, 4 workers, same bytes ---
    std::env::set_var("ELEV_THREADS", "4");
    std::env::set_var("ELEV_INNER_THREADS", "4");
    let retrained = ModelBundle::train(common::SEED, &serve::BundleConfig::tiny());
    cfg.workers = 4;
    let server = Server::start(retrained, &cfg).expect("bind");
    let under_4 = serve_fixtures(&server, &fixtures);
    server.shutdown();
    std::env::remove_var("ELEV_THREADS");
    std::env::remove_var("ELEV_INNER_THREADS");

    assert_eq!(under_1, under_4, "served bytes depend on the thread budget");

    // --- pinned goldens + statuses + served == offline ---
    let mut arena = InferenceArena::new();
    for (i, ((name, raw), (status, body))) in fixtures.iter().zip(&under_1).enumerate() {
        assert_eq!(*status, expected_status[i], "{name}: unexpected status ({body})");
        let (offline_status, offline_json) = offline_bundle.report_json(raw, &mut arena);
        assert_eq!((*status, body.as_str()), (offline_status, offline_json.as_str()), "{name}");
        check_golden(name, body);
    }

    // Sanity on report shape: the repaired fixture actually exercised
    // repairs, the corrupt one actually quarantined.
    assert!(under_1[0].1.contains("\"disposition\": \"clean\""), "{}", under_1[0].1);
    assert!(under_1[1].1.contains("\"disposition\": \"repaired\""), "{}", under_1[1].1);
    assert!(under_1[2].1.contains("\"reason\": \"too_corrupt\""), "{}", under_1[2].1);
}
