//! Registry lifecycle tests: bit-exact save→load for every model
//! kind, distinct structured errors for the three corruption modes,
//! and manifest-driven hot reload on a live server.

mod common;

use serve::bundle::ModelBundle;
use serve::client::HttpClient;
use serve::registry::{
    self, decode_record, encode_record, ModelPayload, ModelRecord, RegistryError,
};
use serve::{InferenceArena, ServeConfig, Server};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A per-test scratch directory under the system temp dir, removed on
/// drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("elev-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Asserts two payloads carry bit-identical weights (stricter than
/// `PartialEq`, which NaN would satisfy vacuously for raw images).
fn assert_payload_bits(a: &ModelPayload, b: &ModelPayload) {
    match (a, b) {
        (ModelPayload::Svm(x), ModelPayload::Svm(y)) => {
            let xs = serde_json::to_string(x).expect("svm json");
            let ys = serde_json::to_string(y).expect("svm json");
            assert_eq!(xs, ys, "svm weights changed across the round trip");
        }
        (ModelPayload::Forest(x), ModelPayload::Forest(y)) => {
            let xs = serde_json::to_string(x).expect("forest json");
            let ys = serde_json::to_string(y).expect("forest json");
            assert_eq!(xs, ys, "forest changed across the round trip");
        }
        (ModelPayload::Mlp(x), ModelPayload::Mlp(y)) => {
            assert_eq!(
                (x.input_dim(), x.hidden(), x.n_classes()),
                (y.input_dim(), y.hidden(), y.n_classes())
            );
            let xb: Vec<u32> = x.params().iter().map(|w| w.to_bits()).collect();
            let yb: Vec<u32> = y.params().iter().map(|w| w.to_bits()).collect();
            assert_eq!(xb, yb, "mlp weight bits changed across the round trip");
        }
        (
            ModelPayload::Cnn { n_classes: nx, params: px },
            ModelPayload::Cnn { n_classes: ny, params: py },
        ) => {
            assert_eq!(nx, ny);
            let xb: Vec<u32> = px.iter().map(|w| w.to_bits()).collect();
            let yb: Vec<u32> = py.iter().map(|w| w.to_bits()).collect();
            assert_eq!(xb, yb, "cnn weight bits changed across the round trip");
        }
        (a, b) => panic!("kind changed across the round trip: {:?} vs {:?}", a.kind(), b.kind()),
    }
}

/// One CNN record (untrained weights — the round trip doesn't care)
/// so all four kinds cross the format.
fn cnn_record() -> ModelRecord {
    let mut net = neuralnet::ArchSpec::PaperCnn { n_classes: 4 }.build(common::SEED);
    ModelRecord {
        name: "tm2-cnn".into(),
        version: 1,
        task: "tm2".into(),
        labels: (0..4).map(|i| format!("class-{i}")).collect(),
        pipeline: None,
        payload: registry::cnn_payload(&mut net, 4),
    }
}

#[test]
fn every_kind_roundtrips_to_bits() {
    let mut records = common::tiny_bundle().to_records();
    records.push(cnn_record());
    let kinds: Vec<&str> = records.iter().map(|r| r.payload.kind().name()).collect();
    for kind in ["svm", "rfc", "mlp", "cnn"] {
        assert!(kinds.contains(&kind), "round trip must cover {kind}");
    }
    for record in &records {
        let bytes = encode_record(record);
        let back = decode_record(&bytes).expect("decodes");
        assert_eq!(back.name, record.name);
        assert_eq!(back.version, record.version);
        assert_eq!(back.task, record.task);
        assert_eq!(back.labels, record.labels);
        match (&record.pipeline, &back.pipeline) {
            (None, None) => {}
            (Some(p), Some(q)) => assert_eq!(
                serde_json::to_string(p).expect("pipeline json"),
                serde_json::to_string(q).expect("pipeline json"),
                "pipeline changed across the round trip"
            ),
            _ => panic!("pipeline presence changed across the round trip"),
        }
        assert_payload_bits(&record.payload, &back.payload);
    }
}

#[test]
fn corruption_modes_map_to_distinct_errors() {
    let records = common::tiny_bundle().to_records();
    let record = records.iter().find(|r| r.payload.kind().name() == "mlp").expect("mlp record");
    let bytes = encode_record(record);

    // Head truncation: the reader runs out of bytes mid-header.
    match decode_record(&bytes[..10]) {
        Err(RegistryError::Truncated { len: 10, .. }) => {}
        other => panic!("head truncation: expected Truncated, got {other:?}"),
    }

    // A flipped weight byte: the checksum catches it before any length
    // field is trusted.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    match decode_record(&flipped) {
        Err(RegistryError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("flipped byte: expected ChecksumMismatch, got {other:?}"),
    }

    // A future container version: rejected by version, not checksum.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    match decode_record(&future) {
        Err(RegistryError::UnsupportedVersion { found: 99 }) => {}
        other => panic!("future version: expected UnsupportedVersion, got {other:?}"),
    }

    // Wrong magic, for completeness.
    let mut alien = bytes;
    alien[0] = b'X';
    match decode_record(&alien) {
        Err(RegistryError::BadMagic) => {}
        other => panic!("wrong magic: expected BadMagic, got {other:?}"),
    }
}

#[test]
fn directory_roundtrip_preserves_reports() {
    let dir = TempDir::new("dir-roundtrip");
    let bundle = common::tiny_bundle();
    registry::save_dir(&dir.0, &bundle.to_records()).expect("save_dir");

    let manifest =
        std::fs::read_to_string(dir.0.join(registry::MANIFEST)).expect("manifest exists");
    assert_eq!(
        manifest.lines().count(),
        7,
        "generation header + one manifest line per record:\n{manifest}"
    );
    assert_eq!(manifest.lines().next(), Some("generation 1"), "first publish is generation 1");
    for line in manifest.lines().skip(1) {
        assert!(line.contains(" fnv1a64=0x"), "manifest line lacks checksum: {line}");
    }

    let loaded = ModelBundle::from_records(registry::load_dir(&dir.0).expect("load_dir"))
        .expect("rebuilds");
    let mut arena = InferenceArena::new();
    for raw in [common::clean_gpx(), common::faulted_gpx(), common::corrupt_gpx()] {
        let direct = bundle.report_json(&raw, &mut arena);
        let via_disk = loaded.report_json(&raw, &mut arena);
        assert_eq!(direct, via_disk, "the disk round trip changed a report");
    }
}

#[test]
fn manifest_mtime_change_hot_reloads() {
    let dir = TempDir::new("hot-reload");
    let bundle = common::tiny_bundle();
    registry::save_dir(&dir.0, &bundle.to_records()).expect("save_dir");

    let served = ModelBundle::from_records(registry::load_dir(&dir.0).expect("load_dir"))
        .expect("rebuilds");
    let cfg = ServeConfig {
        port: 0,
        workers: 1,
        model_dir: Some(dir.0.clone()),
        reload_poll: Duration::from_millis(50),
        ..ServeConfig::from_env()
    };
    let server = Server::start(served, &cfg).expect("bind");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    assert!(client.get("/v1/models").expect("models").text().contains("\"version\": 1"));

    // Publish version 2 (same weights, bumped version): new record
    // files, then the manifest — whose mtime bump is the signal.
    let v2: Vec<ModelRecord> = bundle
        .to_records()
        .into_iter()
        .map(|mut r| {
            r.version = 2;
            r
        })
        .collect();
    // Replace v1 files so the directory holds exactly one version.
    for entry in std::fs::read_dir(&dir.0).expect("read_dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "elevmdl") {
            std::fs::remove_file(path).expect("rm");
        }
    }
    registry::save_dir(&dir.0, &v2).expect("save_dir v2");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let listing = client.get("/v1/models").expect("models").text();
        if listing.contains("\"version\": 2") {
            break;
        }
        assert!(Instant::now() < deadline, "hot reload never happened: {listing}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The reloaded bundle still serves byte-identical reports.
    let raw = common::clean_gpx();
    let served_body = client.post("/v1/report", &raw).expect("post").text();
    let mut arena = InferenceArena::new();
    let (_, offline) = bundle.report_json(&raw, &mut arena);
    assert_eq!(served_body, offline);
    server.shutdown();
}
