//! Overload-safety tests: deadlines, load shedding, per-IP caps,
//! graceful drain, and worker supervision — each against a live
//! server, each asserting both the wire behaviour and the `/v1/health`
//! accounting.

mod common;

use serve::client::HttpClient;
use serve::{ModelBundle, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A raw attacker-side socket: no client protocol, just bytes.
fn raw(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    stream.set_write_timeout(Some(Duration::from_secs(10))).expect("write timeout");
    stream
}

/// Reads until the server closes the connection.
fn read_to_close(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn served_bundle() -> ModelBundle {
    ModelBundle::from_records(common::tiny_bundle().to_records()).expect("records rebuild")
}

/// Tight deadlines so the timeout paths fire in test time.
fn tight_cfg() -> ServeConfig {
    ServeConfig {
        port: 0,
        workers: 2,
        request_deadline: Duration::from_millis(500),
        header_deadline: Duration::from_millis(250),
        ..ServeConfig::from_env()
    }
}

#[test]
fn slowloris_head_answers_408_header_timeout() {
    let server = Server::start(served_bundle(), &tight_cfg()).expect("bind");
    let mut stream = raw(server.addr());
    // A head that never finishes: the header deadline must cut it off.
    stream.write_all(b"GET /healthz HT").expect("write");
    let response = read_to_close(&mut stream);
    assert!(response.starts_with("HTTP/1.1 408 "), "expected 408, got: {response}");
    assert!(response.contains("{\"error\": \"header_timeout\"}"), "body: {response}");
    let health = server.health();
    assert_eq!(health.header_timeouts, 1, "health must count the header timeout: {health:?}");
    assert_eq!(health.request_timeouts, 0);
    server.shutdown();
}

#[test]
fn stalled_body_answers_408_request_timeout() {
    let server = Server::start(served_bundle(), &tight_cfg()).expect("bind");
    let mut stream = raw(server.addr());
    // Complete head, body that stops short: the total budget cuts it.
    stream
        .write_all(b"POST /v1/report HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nabc")
        .expect("write");
    let response = read_to_close(&mut stream);
    assert!(response.starts_with("HTTP/1.1 408 "), "expected 408, got: {response}");
    assert!(response.contains("{\"error\": \"request_timeout\"}"), "body: {response}");
    let health = server.health();
    assert_eq!(health.request_timeouts, 1, "health must count the body timeout: {health:?}");
    server.shutdown();
}

#[test]
fn idle_keep_alive_connection_is_closed() {
    let cfg = ServeConfig {
        port: 0,
        workers: 1,
        idle_timeout: Duration::from_millis(300),
        ..ServeConfig::from_env()
    };
    let server = Server::start(served_bundle(), &cfg).expect("bind");
    let mut stream = raw(server.addr());
    // Send nothing: the worker must give the slot back, not wait
    // forever on a silent peer.
    let started = Instant::now();
    assert_eq!(read_to_close(&mut stream), "", "an idle connection gets no response");
    assert!(started.elapsed() < Duration::from_secs(5), "idle close took too long");
    server.shutdown();
}

#[test]
fn full_queue_sheds_503_with_retry_after() {
    // One worker, queue depth one: the third concurrent connection has
    // nowhere to go and must be shed, not queued unboundedly.
    let cfg = ServeConfig { port: 0, workers: 1, queue_depth: 1, ..ServeConfig::from_env() };
    let server = Server::start(served_bundle(), &cfg).expect("bind");

    // Occupy the only worker with a stalled upload...
    let mut stalled = raw(server.addr());
    stalled
        .write_all(b"POST /v1/report HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\n")
        .expect("write");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().accepted < 1 {
        assert!(Instant::now() < deadline, "stalled conn never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100)); // worker pops it off the queue
    // ...fill the queue's single slot...
    let mut queued = raw(server.addr());
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("write");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().accepted < 2 {
        assert!(Instant::now() < deadline, "queued conn never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    // ...and the next connection must bounce.
    let mut shed = raw(server.addr());
    let response = read_to_close(&mut shed);
    assert!(response.starts_with("HTTP/1.1 503 "), "expected 503, got: {response}");
    assert!(response.contains("\r\nRetry-After: 1\r\n"), "503 must carry Retry-After: {response}");
    assert!(response.contains("{\"error\": \"overloaded\"}"), "body: {response}");

    // Unstall the worker; the queued request still completes — shedding
    // never cancels admitted work.
    stalled.write_all(b"0123456789").expect("finish body");
    let queued_response = read_to_close(&mut queued);
    assert!(queued_response.starts_with("HTTP/1.1 200 "), "queued request: {queued_response}");
    let health = server.health();
    assert_eq!(health.shed_queue, 1, "exactly one shed: {health:?}");
    assert_eq!(health.accepted, 2, "shed connections are never counted accepted: {health:?}");
    server.shutdown();
}

#[test]
fn ip_slot_cap_sheds_the_greedy_source() {
    // Cap concurrent connections per IP slot at 2; everything here
    // comes from 127.0.0.1, so the third concurrent connection is over
    // the cap.
    let cfg = ServeConfig { port: 0, workers: 4, ip_slot_cap: 2, ..ServeConfig::from_env() };
    let server = Server::start(served_bundle(), &cfg).expect("bind");
    let hold_a = raw(server.addr());
    let hold_b = raw(server.addr());
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().accepted < 2 {
        assert!(Instant::now() < deadline, "holders never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut third = raw(server.addr());
    let response = read_to_close(&mut third);
    assert!(response.starts_with("HTTP/1.1 503 "), "expected 503, got: {response}");
    assert!(response.contains("{\"error\": \"ip_capped\"}"), "body: {response}");
    assert!(response.contains("\r\nRetry-After: 1\r\n"), "503 must carry Retry-After: {response}");
    let health = server.health();
    assert_eq!(health.shed_ip_cap, 1, "{health:?}");

    // Release a slot; the next connection from the same IP is welcome.
    drop(hold_a);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = HttpClient::connect(server.addr()).expect("connect");
        if let Ok(resp) = retry.get("/healthz") {
            assert_eq!(resp.status, 200);
            break;
        }
        assert!(Instant::now() < deadline, "slot never released");
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(hold_b);
    server.shutdown();
}

#[test]
fn drain_finishes_in_flight_and_sheds_new() {
    let cfg = ServeConfig { port: 0, workers: 2, ..ServeConfig::from_env() };
    let server = Server::start(served_bundle(), &cfg).expect("bind");

    // An in-flight request: head sent, body held back.
    let body = b"not really gpx";
    let mut in_flight = raw(server.addr());
    in_flight
        .write_all(
            format!("POST /v1/report HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n", body.len())
                .as_bytes(),
        )
        .expect("write head");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().accepted < 1 {
        assert!(Instant::now() < deadline, "in-flight conn never admitted");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100)); // let a worker pick it up

    server.drain();
    assert!(server.health().draining, "drain must show in health");

    // New connections are shed while draining...
    let mut late = raw(server.addr());
    let response = read_to_close(&mut late);
    assert!(response.starts_with("HTTP/1.1 503 "), "expected 503, got: {response}");
    assert!(response.contains("{\"error\": \"draining\"}"), "body: {response}");

    // ...but the in-flight request completes, with Connection: close.
    in_flight.write_all(body).expect("finish body");
    let finished = read_to_close(&mut in_flight);
    assert!(
        finished.starts_with("HTTP/1.1 422 ") || finished.starts_with("HTTP/1.1 200 "),
        "in-flight request must be answered, got: {finished}"
    );
    assert!(
        finished.contains("\r\nConnection: close\r\n"),
        "drain responses must announce the close: {finished}"
    );
    server.shutdown();
}

#[test]
fn debug_routes_stay_404_unless_enabled() {
    let server = Server::start(served_bundle(), &ServeConfig::from_env()).expect("bind");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    for target in ["/v1/debug/panic", "/v1/debug/die"] {
        let resp = client.post(target, b"").expect("post");
        assert_eq!(resp.status, 404, "debug routes must not exist by default: {target}");
    }
    assert_eq!(server.health().worker_panics, 0);
    server.shutdown();
}

#[test]
fn handler_panic_is_caught_and_the_worker_keeps_serving() {
    let cfg = ServeConfig { port: 0, workers: 1, debug_routes: true, ..ServeConfig::from_env() };
    let server = Server::start(served_bundle(), &cfg).expect("bind");

    // The panic is injected mid-handler: the connection dies without a
    // response, but the worker must survive it.
    let mut stream = raw(server.addr());
    stream
        .write_all(b"POST /v1/debug/panic HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
        .expect("write");
    assert_eq!(read_to_close(&mut stream), "", "a panicked handler sends nothing");

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().worker_panics < 1 {
        assert!(Instant::now() < deadline, "panic never counted: {:?}", server.health());
        std::thread::sleep(Duration::from_millis(10));
    }
    // Same (sole) worker, next request: caught panics do not cost a
    // thread.
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    assert_eq!(client.get("/healthz").expect("get").status, 200);
    let health = server.health();
    assert_eq!(health.worker_panics, 1, "{health:?}");
    assert_eq!(health.workers_restarted, 0, "a caught panic must not burn the thread: {health:?}");
    server.shutdown();
}

#[test]
fn dead_worker_is_respawned_without_dropping_the_listener() {
    let cfg = ServeConfig { port: 0, workers: 1, debug_routes: true, ..ServeConfig::from_env() };
    let server = Server::start(served_bundle(), &cfg).expect("bind");

    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let resp = client.post("/v1/debug/die", b"").expect("post");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), "{\"status\": \"dying\"}");

    // The sole worker just exited; the supervisor must replace it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().workers_restarted < 1 {
        assert!(Instant::now() < deadline, "worker never respawned: {:?}", server.health());
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut fresh = HttpClient::connect(server.addr()).expect("connect");
    assert_eq!(fresh.get("/healthz").expect("get").status, 200, "respawned worker must serve");
    let health = server.health();
    assert_eq!(health.workers_restarted, 1, "{health:?}");
    assert_eq!(health.worker_panics, 0, "die is an exit, not a panic: {health:?}");
    server.shutdown();
}

#[test]
fn health_route_serves_the_same_counters_as_the_api() {
    let server = Server::start(served_bundle(), &ServeConfig::from_env()).expect("bind");
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let resp = client.get("/v1/health").expect("get");
    assert_eq!(resp.status, 200);
    let body = resp.text();
    for key in
        ["\"shed_queue\"", "\"worker_panics\"", "\"breaker_open\"", "\"generation\"", "\"draining\""]
    {
        assert!(body.contains(key), "health JSON missing {key}: {body}");
    }
    // The wire JSON and the programmatic snapshot agree (counters that
    // this quiet sequence cannot move).
    let health = server.health();
    assert!(body.contains(&format!("\"shed_queue\": {}", health.shed_queue)));
    assert!(body.contains(&format!("\"generation\": {}", health.generation)));
    // GET-only route.
    assert_eq!(client.post("/v1/health", b"").expect("post").status, 405);
    server.shutdown();
}
