//! `elev-serve` — the attack-as-a-service daemon.
//!
//! ```text
//! elev-serve --bootstrap --model-dir models/   # train + write registry
//! elev-serve --model-dir models/ --port 8787   # serve (hot-reloads registry)
//! elev-serve --model-dir models/ --smoke a.gpx # offline report, no server
//! ```
//!
//! Flags: `--port P` (default 0 = ephemeral), `--workers N` (default
//! `ELEV_SERVE_WORKERS` or 4), `--model-dir DIR`, `--seed S` (default
//! 0xE1EF, bootstrap only), `--port-file F` (write the bound port for
//! scripts), `--bootstrap`, `--smoke FILE`, `--deadline-ms MS`
//! (per-request budget, default `ELEV_SERVE_DEADLINE_MS` or 5000),
//! `--queue-depth N` (admission bound, default
//! `ELEV_SERVE_QUEUE_DEPTH` or 64).

use serve::bundle::{BundleConfig, ModelBundle};
use serve::registry;
use serve::{InferenceArena, ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    port: u16,
    workers: Option<usize>,
    model_dir: Option<PathBuf>,
    seed: u64,
    port_file: Option<PathBuf>,
    bootstrap: bool,
    smoke: Option<PathBuf>,
    deadline_ms: Option<u64>,
    queue_depth: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 0,
        workers: None,
        model_dir: None,
        seed: 0xE1EF,
        port_file: None,
        bootstrap: false,
        smoke: None,
        deadline_ms: None,
        queue_depth: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--port" => args.port = value("--port")?.parse().map_err(|e| format!("--port: {e}"))?,
            "--workers" => {
                args.workers =
                    Some(value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?);
            }
            "--model-dir" => args.model_dir = Some(PathBuf::from(value("--model-dir")?)),
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--port-file" => args.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--bootstrap" => args.bootstrap = true,
            "--smoke" => args.smoke = Some(PathBuf::from(value("--smoke")?)),
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--queue-depth" => {
                args.queue_depth = Some(
                    value("--queue-depth")?.parse().map_err(|e| format!("--queue-depth: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_or_train(args: &Args) -> Result<ModelBundle, String> {
    if let Some(dir) = &args.model_dir {
        if dir.join(registry::MANIFEST).exists() {
            // The crash-safe loader: every file verified against its
            // manifest line, with automatic fallback to the last-good
            // generation when the current publish is torn.
            let load = registry::load_generation(dir).map_err(|e| format!("registry: {e}"))?;
            if load.fell_back {
                eprintln!(
                    "registry generation torn; serving last-good generation {}",
                    load.generation
                );
                for (file, err) in &load.errors {
                    eprintln!("  {file}: {err}");
                }
            }
            return ModelBundle::from_records(load.records).map_err(|e| format!("bundle: {e}"));
        }
    }
    eprintln!("no registry found; training a quick bundle (seed {:#x})", args.seed);
    Ok(ModelBundle::train(args.seed, &BundleConfig::quick()))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if args.bootstrap {
        let dir = args.model_dir.as_ref().ok_or("--bootstrap needs --model-dir")?;
        let bundle = ModelBundle::train(args.seed, &BundleConfig::quick());
        let records = bundle.to_records();
        registry::save_dir(dir, &records).map_err(|e| format!("save: {e}"))?;
        println!("wrote {} records to {}", records.len(), dir.display());
        return Ok(());
    }

    if let Some(path) = &args.smoke {
        let bundle = load_or_train(&args)?;
        let raw = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut arena = InferenceArena::new();
        let (status, json) = bundle.report_json(&raw, &mut arena);
        println!("{status}");
        println!("{json}");
        return Ok(());
    }

    let bundle = load_or_train(&args)?;
    let mut cfg = ServeConfig::from_env();
    cfg.port = args.port;
    if let Some(w) = args.workers {
        cfg.workers = w;
    }
    cfg.model_dir = args.model_dir.clone();
    if let Some(ms) = args.deadline_ms {
        cfg.request_deadline = std::time::Duration::from_millis(ms);
        cfg.header_deadline = cfg.request_deadline.min(std::time::Duration::from_secs(2));
    }
    if let Some(depth) = args.queue_depth {
        cfg.queue_depth = depth;
    }
    let server = Server::start(bundle, &cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    println!("listening on {addr} ({} workers)", cfg.workers);

    // Serve until killed; the Server's threads do all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("elev-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
