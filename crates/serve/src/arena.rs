//! Per-worker zero-alloc inference arenas.
//!
//! `neuralnet::TrainArena` made the training loop's steady state
//! allocation-free by owning every reusable buffer; this is the same
//! idea repurposed for the serving hot path. One [`InferenceArena`]
//! per connection worker owns:
//!
//! - the SVM margin buffer,
//! - the forest vote histogram,
//! - the dense scatter row the forest's trees index into (scattered
//!   from the sparse BoW before voting, re-zeroed after),
//! - the MLP's [`neuralnet::InferScratch`] (hidden + logit buffers),
//! - the streaming ingester ([`elev_core::ingest::StreamingIngest`])
//!   whose point buffer, timestamp arena, and repair scratch take
//!   uploads from raw bytes to an elevation profile with no DOM.
//!
//! After [`warm`](InferenceArena::warm) (or one cold request), every
//! classify call reuses these buffers: the classify path performs
//! **zero heap allocations**, asserted under a counting global
//! allocator in `crates/serve/tests/zero_alloc.rs` and reported by the
//! serve bench.

use elev_core::ingest::StreamingIngest;
use neuralnet::InferScratch;

/// Reusable classification scratch for one worker.
#[derive(Debug, Default)]
pub struct InferenceArena {
    /// SVM per-class margins.
    pub(crate) scores: Vec<f32>,
    /// Forest per-class vote counts.
    pub(crate) votes: Vec<usize>,
    /// Dense scatter row for the forest (sized to the widest task's
    /// feature count, zero except while a row is scattered in).
    pub(crate) dense: Vec<f32>,
    /// MLP hidden/logit buffers.
    pub(crate) scratch: InferScratch,
    /// Streaming (DOM-free) upload ingestion with reusable buffers.
    pub(crate) ingest: StreamingIngest,
}

impl InferenceArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the dense scatter row to at least `n_features`, zeroed.
    pub(crate) fn ensure_dense(&mut self, n_features: usize) {
        if self.dense.len() < n_features {
            self.dense.resize(n_features, 0.0);
        }
    }
}
