//! A minimal blocking HTTP/1.1 client.
//!
//! Just enough to drive the server from inside the tree: the request
//! harness, the conformance "served == offline" invariant, the verify
//! smoke tier, and the bench load generator all use it. Keep-alive is
//! the default, so one client = one connection = a stream of requests.
//!
//! Timeouts are configurable ([`ClientConfig`]) so deadline tests can
//! use tight values; the default 5 s can be overridden fleet-wide via
//! `ELEV_CLIENT_TIMEOUT_MS`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side socket deadlines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Read timeout (per `read` call).
    pub read_timeout: Duration,
    /// Write timeout (per `write` call).
    pub write_timeout: Duration,
}

impl ClientConfig {
    /// Both timeouts from `ELEV_CLIENT_TIMEOUT_MS` (default 5000).
    pub fn from_env() -> Self {
        let ms = exec::env_budget("ELEV_CLIENT_TIMEOUT_MS", || 5000) as u64;
        let t = Duration::from_millis(ms);
        Self { read_timeout: t, write_timeout: t }
    }

    /// Equal tight deadlines on both directions.
    pub fn tight(timeout: Duration) -> Self {
        Self { read_timeout: timeout, write_timeout: timeout }
    }
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers in wire order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (every in-tree response is JSON).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// One keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with environment-default timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure I/O errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::from_env())
    }

    /// Connects with explicit timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure I/O errors.
    pub fn connect_with(addr: SocketAddr, cfg: &ClientConfig) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        Ok(Self { stream, buf: Vec::with_capacity(4096) })
    }

    /// `GET target`.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed responses (as `InvalidData`).
    pub fn get(&mut self, target: &str) -> std::io::Result<Response> {
        self.request("GET", target, &[])
    }

    /// `POST target` with a body.
    ///
    /// # Errors
    ///
    /// I/O errors and malformed responses (as `InvalidData`).
    pub fn post(&mut self, target: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request("POST", target, body)
    }

    fn request(&mut self, method: &str, target: &str, body: &[u8]) -> std::io::Result<Response> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |what: &str| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("malformed response: {what}"))
        };
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(end) = crate::http::find_head_end(&self.buf) {
                break end;
            }
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("connection closed mid-head")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };

        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad("no status line"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("no status code"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(name, v)| (name.to_ascii_lowercase(), v.trim().to_owned()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(name, _)| name == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);

        let total = head_end + content_length;
        while self.buf.len() < total {
            match self.stream.read(&mut chunk)? {
                0 => return Err(bad("connection closed mid-body")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        Ok(Response { status, headers, body })
    }
}
