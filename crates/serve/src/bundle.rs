//! The served model bundle: TM-1 and TM-3 task models plus the pure
//! request → report function.
//!
//! A bundle holds, per task, the fitted text pipeline and the paper's
//! three text-side classifiers (SVM, random forest, MLP). The same
//! [`ModelBundle::report_json`] runs on the server's hot path and in
//! the offline pipeline — "served report == offline report" is an
//! identity of code, then pinned byte-for-byte by the conformance
//! suite rather than trusted.
//!
//! Classification after featurization is allocation-free: model scores
//! land in a per-worker [`InferenceArena`] (see [`crate::arena`]), and
//! BoW featurization hits the process-wide `featcache` for repeated
//! profiles.

use crate::arena::InferenceArena;
use crate::registry::{ModelPayload, ModelRecord};
use classicml::{ForestConfig, RandomForest, SvmClassifier, SvmConfig};
use datasets::Dataset;
use elev_core::experiments::{Corpora, ExperimentScale};
use elev_core::featcache::{adopt_pipeline, pipeline_for, SharedPipeline};
use elev_core::report::{IngestSummary, LeakageReport, ModelVote, TaskReport};
use exec::mix_seed;
use neuralnet::{models, train_sparse, FlatMlp, TrainConfig};
use sparsemat::{FeatureMatrix, SparseVec};
use std::collections::BTreeMap;
use std::sync::Arc;
use textrep::{Discretizer, FeatureSelection, TextPipeline};

/// Training recipe for a bundle (scale + per-model hyperparameters).
#[derive(Debug, Clone, PartialEq)]
pub struct BundleConfig {
    /// Corpus generation scale.
    pub scale: ExperimentScale,
    /// Model version stamped on every record.
    pub version: u32,
    /// Character n-gram order of the BoW featurizer.
    pub ngram: usize,
    /// SVM Pegasos epochs.
    pub svm_epochs: usize,
    /// SVM regularization.
    pub svm_lambda: f32,
    /// Forest size.
    pub rfc_trees: usize,
    /// MLP hidden width.
    pub mlp_hidden: usize,
    /// MLP epochs.
    pub mlp_epochs: usize,
    /// MLP learning rate.
    pub mlp_lr: f32,
}

impl BundleConfig {
    /// The bootstrap recipe: conformance-sized corpora, models large
    /// enough to separate the regimes, training in seconds.
    pub fn quick() -> Self {
        Self {
            scale: bundle_scale(),
            version: 1,
            ngram: 4,
            svm_epochs: 20,
            svm_lambda: 1e-4,
            rfc_trees: 25,
            mlp_hidden: 32,
            mlp_epochs: 10,
            mlp_lr: 3e-3,
        }
    }

    /// The test-harness recipe: same corpora, minimal models — the
    /// fastest bundle that still exercises every classify code path.
    pub fn tiny() -> Self {
        Self {
            svm_epochs: 8,
            rfc_trees: 10,
            mlp_hidden: 16,
            mlp_epochs: 4,
            ..Self::quick()
        }
    }
}

/// The corpus scale bundles train at — the conformance registry's
/// scale (small enough for seconds-long bootstrap, large enough that
/// every class keeps multiple samples).
fn bundle_scale() -> ExperimentScale {
    ExperimentScale {
        dataset_fraction: 0.04,
        folds: 3,
        cnn_epochs: 2,
        mlp_epochs: 10,
        min_per_class: 9,
    }
}

/// The three classifiers' predicted class indices for one profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskVotes {
    /// SVM argmax.
    pub svm: u32,
    /// Forest majority vote.
    pub rfc: u32,
    /// MLP argmax.
    pub mlp: u32,
}

/// One task's fitted pipeline + classifiers.
pub struct TaskModels {
    /// Task name (`tm1`, `tm3`).
    pub task: String,
    /// Class-index → label-name mapping.
    pub labels: Vec<String>,
    shared: SharedPipeline,
    svm: SvmClassifier,
    rfc: RandomForest,
    mlp: FlatMlp,
}

/// First strictly-greater maximum — the argmax rule every classifier
/// in the workspace uses (ties go to the lower class index).
fn argmax_first<T: PartialOrd>(scores: &[T]) -> u32 {
    let mut best = 0usize;
    for i in 1..scores.len() {
        if scores[i] > scores[best] {
            best = i;
        }
    }
    best as u32
}

impl TaskModels {
    fn fit(task: &str, ds: &Dataset, discretizer: Discretizer, cfg: &BundleConfig, seed: u64) -> Self {
        let signals: Vec<Vec<f64>> =
            ds.samples().iter().map(|s| s.elevation.clone()).collect();
        let shared =
            pipeline_for(&signals, discretizer, cfg.ngram, FeatureSelection::standard());
        let x = shared.pipeline().transform_all_csr(&signals);
        let y = ds.labels();
        let n_classes = ds.n_classes().max(2);

        let svm = SvmClassifier::fit_sparse(
            &x,
            &y,
            &SvmConfig { epochs: cfg.svm_epochs, lambda: cfg.svm_lambda },
            mix_seed(seed, 1),
        );
        let rfc = RandomForest::fit_matrix(
            &FeatureMatrix::Sparse(x.clone()),
            &y,
            &ForestConfig { n_trees: cfg.rfc_trees, ..Default::default() },
            mix_seed(seed, 2),
        );
        let mut net =
            models::mlp(x.n_cols(), cfg.mlp_hidden, n_classes, mix_seed(seed, 3));
        train_sparse(
            &mut net,
            &x,
            &y,
            &TrainConfig {
                epochs: cfg.mlp_epochs,
                lr: cfg.mlp_lr,
                seed: mix_seed(seed, 3),
                ..Default::default()
            },
        );
        let mlp = FlatMlp::capture(&mut net, x.n_cols(), cfg.mlp_hidden, n_classes);

        Self {
            task: task.to_owned(),
            labels: ds.label_names().to_vec(),
            shared,
            svm,
            rfc,
            mlp,
        }
    }

    /// Feature width of the task's pipeline.
    pub fn n_features(&self) -> usize {
        self.shared.pipeline().n_features()
    }

    /// The cached (or computed) BoW row for a profile.
    pub fn bow(&self, signal: &[f64]) -> Arc<SparseVec> {
        self.shared.bow(signal)
    }

    /// Classifies one featurized profile — **the zero-alloc hot path**:
    /// every model scores into the arena's reused buffers and no heap
    /// allocation occurs once the arena is warm.
    pub fn classify_bow(&self, bow: &SparseVec, arena: &mut InferenceArena) -> TaskVotes {
        self.svm.decision_function_sparse_into(bow, &mut arena.scores);
        let svm = argmax_first(&arena.scores);

        let nf = self.n_features();
        arena.ensure_dense(nf);
        for (i, v) in bow.iter() {
            arena.dense[i] = v;
        }
        self.rfc.votes_into(&arena.dense[..nf], &mut arena.votes);
        for (i, _) in bow.iter() {
            arena.dense[i] = 0.0;
        }
        let rfc = argmax_first(&arena.votes);

        let mlp = self.mlp.predict_sparse(bow, &mut arena.scratch);
        TaskVotes { svm, rfc, mlp }
    }

    /// Full task report for a profile (featurize → classify → name the
    /// labels). Label naming allocates; the classify step does not.
    pub fn report(&self, signal: &[f64], arena: &mut InferenceArena) -> TaskReport {
        let bow = self.bow(signal);
        let votes = self.classify_bow(&bow, arena);
        let name = |idx: u32| -> String {
            self.labels
                .get(idx as usize)
                .cloned()
                .unwrap_or_else(|| format!("class-{idx}"))
        };
        TaskReport::from_votes(
            self.task.clone(),
            vec![
                ModelVote { model: "svm", label: name(votes.svm) },
                ModelVote { model: "rfc", label: name(votes.rfc) },
                ModelVote { model: "mlp", label: name(votes.mlp) },
            ],
        )
    }

    fn to_records(&self, version: u32) -> Vec<ModelRecord> {
        let pipeline: TextPipeline = self.shared.pipeline().clone();
        let record = |suffix: &str, payload: ModelPayload| ModelRecord {
            name: format!("{}-{suffix}", self.task),
            version,
            task: self.task.clone(),
            labels: self.labels.clone(),
            pipeline: Some(pipeline.clone()),
            payload,
        };
        vec![
            record("svm", ModelPayload::Svm(self.svm.clone())),
            record("rfc", ModelPayload::Forest(self.rfc.clone())),
            record("mlp", ModelPayload::Mlp(self.mlp.clone())),
        ]
    }
}

/// The full served bundle: every task's models, in task order.
pub struct ModelBundle {
    /// Bundle version (max record version when loaded from disk).
    pub version: u32,
    tasks: Vec<TaskModels>,
}

impl ModelBundle {
    /// Trains a fresh bundle from `seed`: TM-1 on the user corpus with
    /// the floor discretizer, TM-3 on the city corpus with the mined
    /// codebook — the paper's table-4/table-5 settings at bootstrap
    /// scale. Pure in `(seed, cfg)`.
    pub fn train(seed: u64, cfg: &BundleConfig) -> Self {
        let corpora = Corpora::generate(seed, &cfg.scale);
        let tasks = vec![
            TaskModels::fit("tm1", &corpora.user, Discretizer::Floor, cfg, mix_seed(seed, 11)),
            TaskModels::fit("tm3", &corpora.city, Discretizer::mined(), cfg, mix_seed(seed, 12)),
        ];
        Self { version: cfg.version, tasks }
    }

    /// The bundle's tasks, in report order.
    pub fn tasks(&self) -> &[TaskModels] {
        &self.tasks
    }

    /// Looks a task up by name.
    pub fn task(&self, name: &str) -> Option<&TaskModels> {
        self.tasks.iter().find(|t| t.task == name)
    }

    /// Serializes every model into registry records.
    pub fn to_records(&self) -> Vec<ModelRecord> {
        self.tasks.iter().flat_map(|t| t.to_records(self.version)).collect()
    }

    /// Rebuilds a bundle from registry records (CNN records are stored
    /// and validated by the registry but not served; they are skipped
    /// here).
    ///
    /// # Errors
    ///
    /// Rejects record sets with a missing classifier, a missing
    /// pipeline, or inconsistent label sets within a task.
    pub fn from_records(records: Vec<ModelRecord>) -> Result<Self, String> {
        struct Partial {
            labels: Vec<String>,
            pipeline: Option<TextPipeline>,
            svm: Option<SvmClassifier>,
            rfc: Option<RandomForest>,
            mlp: Option<FlatMlp>,
        }
        let mut by_task: BTreeMap<String, Partial> = BTreeMap::new();
        let mut version = 0u32;
        for record in records {
            version = version.max(record.version);
            if matches!(record.payload, ModelPayload::Cnn { .. }) {
                continue;
            }
            let entry = by_task.entry(record.task.clone()).or_insert(Partial {
                labels: record.labels.clone(),
                pipeline: None,
                svm: None,
                rfc: None,
                mlp: None,
            });
            if entry.labels != record.labels {
                return Err(format!("task {}: records disagree on labels", record.task));
            }
            if entry.pipeline.is_none() {
                entry.pipeline = record.pipeline;
            }
            match record.payload {
                ModelPayload::Svm(m) => entry.svm = Some(m),
                ModelPayload::Forest(m) => entry.rfc = Some(m),
                ModelPayload::Mlp(m) => entry.mlp = Some(m),
                ModelPayload::Cnn { .. } => unreachable!("filtered above"),
            }
        }
        if by_task.is_empty() {
            return Err("no servable records".to_owned());
        }
        let mut tasks = Vec::with_capacity(by_task.len());
        for (task, partial) in by_task {
            let pipeline = partial
                .pipeline
                .ok_or_else(|| format!("task {task}: no record carries the pipeline"))?;
            let shared = adopt_pipeline(Arc::new(pipeline));
            tasks.push(TaskModels {
                task: task.clone(),
                labels: partial.labels,
                shared,
                svm: partial.svm.ok_or_else(|| format!("task {task}: missing svm"))?,
                rfc: partial.rfc.ok_or_else(|| format!("task {task}: missing rfc"))?,
                mlp: partial.mlp.ok_or_else(|| format!("task {task}: missing mlp"))?,
            });
        }
        Ok(Self { version, tasks })
    }

    /// Pre-grows an arena so even the first request on a worker stays
    /// allocation-free in the classify path.
    pub fn warm(&self, arena: &mut InferenceArena) {
        for t in &self.tasks {
            let classes = t.labels.len().max(2);
            if arena.scores.capacity() < classes {
                arena.scores.reserve(classes - arena.scores.len());
            }
            if arena.votes.capacity() < classes {
                arena.votes.reserve(classes - arena.votes.len());
            }
            arena.ensure_dense(t.n_features());
            arena.scratch.warm(&t.mlp);
        }
    }

    /// The full leakage report for raw uploaded bytes: quarantine
    /// ingestion → featurization → every task's classification.
    ///
    /// Ingestion takes the streaming path — the arena's
    /// [`elev_core::ingest::StreamingIngest`] reads the bytes DOM-free
    /// with reused buffers — which is bit-identical to the offline
    /// `ingest_one` path (pinned by the conformance suite's golden
    /// served reports and stream-parity fuzz campaign).
    pub fn leakage_report(&self, raw: &[u8], arena: &mut InferenceArena) -> LeakageReport {
        let (disposition, profile) = arena.ingest.ingest_bytes(raw);
        match profile {
            None => LeakageReport {
                ingest: IngestSummary::of(&disposition, 0),
                tasks: Vec::new(),
            },
            Some(signal) => LeakageReport {
                ingest: IngestSummary::of(&disposition, signal.len()),
                tasks: self.tasks.iter().map(|t| t.report(&signal, arena)).collect(),
            },
        }
    }

    /// The serving contract: `(HTTP status, report JSON)` for raw
    /// uploaded bytes. 200 when a profile reached the classifiers,
    /// 422 when ingestion quarantined the track. This exact function
    /// backs both `POST /v1/report` and the offline pipeline.
    pub fn report_json(&self, raw: &[u8], arena: &mut InferenceArena) -> (u16, String) {
        let report = self.leakage_report(raw, arena);
        let status = if report.status() == "ok" { 200 } else { 422 };
        (status, report.to_json())
    }

    /// Deterministic JSON for `GET /v1/models`.
    pub fn models_json(&self) -> String {
        let mut out = format!("{{\"version\": {}, \"models\": [", self.version);
        let entries: Vec<String> = self
            .tasks
            .iter()
            .flat_map(|t| {
                ["svm", "rfc", "mlp"].into_iter().map(move |kind| {
                    format!(
                        "{{\"name\": \"{}-{kind}\", \"task\": \"{}\", \"kind\": \"{kind}\", \"classes\": {}}}",
                        t.task,
                        t.task,
                        t.labels.len()
                    )
                })
            })
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("]}");
        out
    }
}
