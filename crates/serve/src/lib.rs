//! Attack-as-a-service: the serving layer over the offline pipeline.
//!
//! The paper's threat models are evaluated offline; the ROADMAP north
//! star is a long-running service that accepts GPX uploads and returns
//! a per-track location-leakage report. This crate is that service,
//! built with the workspace's offline-shim discipline — no tokio, no
//! hyper, no external HTTP stack:
//!
//! - [`http`]: a pure, panic-free HTTP/1.1 request parser (also the
//!   conformance fuzz driver's target),
//! - [`registry`]: the versioned `.elevmdl` model registry —
//!   length-prefixed, checksummed binary weight files plus a manifest,
//!   with load-on-start and poll-mtime hot reload,
//! - [`bundle`]: the TM-1/TM-3 model bundle (SVM + random forest +
//!   MLP per task, sharing one fitted text pipeline) and the pure
//!   request → [`elev_core::report::LeakageReport`] function both the
//!   server and the offline path call,
//! - [`arena`]: per-worker inference arenas — the serving counterpart
//!   of `neuralnet::TrainArena` — so the steady-state classify path
//!   performs zero heap allocations,
//! - [`server`]: the blocking-accept + worker-pool server,
//! - [`client`]: the minimal in-tree HTTP client the test harness,
//!   smoke tier, and load generator drive the server with.
//!
//! Every response is a deterministic function of the request bytes and
//! the loaded model bundle: reports are byte-identical across worker
//! counts, `ELEV_THREADS` settings, and the online/offline boundary —
//! pinned by `crates/serve/tests/` and the conformance suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod bundle;
pub mod client;
pub mod http;
pub mod registry;
pub mod server;

pub use arena::InferenceArena;
pub use bundle::{BundleConfig, ModelBundle, TaskModels};
pub use client::{ClientConfig, HttpClient};
pub use registry::{GenerationLoad, Manifest, ManifestEntry, ModelKind, ModelRecord, RegistryError};
pub use server::{ConnError, HealthSnapshot, ServeConfig, Server};
