//! The versioned on-disk model registry.
//!
//! One trained model per `.elevmdl` file, named `<name>@<version>`:
//! a fixed magic, a format version, a typed header (kind, task, label
//! names), a length-prefixed metadata section (the fitted
//! [`TextPipeline`] for text-side models), a length-prefixed weight
//! payload, and a trailing FNV-1a-64 checksum over everything before
//! it. Sections are length-prefixed so a reader can locate the payload
//! without parsing it (mmap-friendly: the weight image of MLP/CNN
//! records is a raw little-endian `f32` slab at a known offset).
//!
//! Weight fidelity is exact: SVM and forest payloads go through the
//! workspace's bit-exact JSON float round-trip, MLP/CNN payloads are
//! the raw `f32` bit patterns. Save→load equality `to_bits`-level is
//! pinned by `crates/serve/tests/registry_roundtrip.rs`, and the three
//! corruption modes (truncated, bad checksum, wrong version) map to
//! three distinct [`RegistryError`] variants.
//!
//! A directory of records carries a `manifest.txt` (a `generation N`
//! header plus one line per record, written last), which doubles as
//! the hot-reload signal: the server polls its mtime and swaps the
//! bundle when it changes.
//!
//! Publishes are crash-safe: every file lands via
//! [`atomic_write`] (write a sibling temp file, `fsync`, rename), the
//! previous manifest is preserved as [`MANIFEST_PREV`] before the new
//! one replaces it, and [`load_generation`] verifies every record's
//! length and FNV against its manifest line before decoding — on any
//! mismatch it falls back to the last-good generation and reports the
//! torn files as distinct structured [`RegistryError`]s.

use classicml::{RandomForest, SvmClassifier};
use neuralnet::{ArchSpec, FlatMlp};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use textrep::TextPipeline;

/// File magic: `ELEVMDL` + format generation byte.
pub const MAGIC: &[u8; 8] = b"ELEVMDL\x01";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// The model families the registry stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Linear one-vs-rest SVM (`classicml::SvmClassifier`).
    Svm,
    /// Random forest (`classicml::RandomForest`).
    Forest,
    /// Flat-weight MLP (`neuralnet::FlatMlp`).
    Mlp,
    /// The paper's CNN as an arch spec + flat weight image.
    Cnn,
}

impl ModelKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Svm => "svm",
            ModelKind::Forest => "rfc",
            ModelKind::Mlp => "mlp",
            ModelKind::Cnn => "cnn",
        }
    }

    fn tag(self) -> u32 {
        match self {
            ModelKind::Svm => 1,
            ModelKind::Forest => 2,
            ModelKind::Mlp => 3,
            ModelKind::Cnn => 4,
        }
    }

    fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            1 => Some(ModelKind::Svm),
            2 => Some(ModelKind::Forest),
            3 => Some(ModelKind::Mlp),
            4 => Some(ModelKind::Cnn),
            _ => None,
        }
    }
}

/// A model's weights in their registry form.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelPayload {
    /// SVM hyperplanes (JSON payload; floats round-trip bit-exactly).
    Svm(SvmClassifier),
    /// Forest trees (JSON payload; floats round-trip bit-exactly).
    Forest(RandomForest),
    /// MLP dims + raw `f32` weight image.
    Mlp(FlatMlp),
    /// CNN class count + raw `f32` weight image (visit order).
    Cnn {
        /// Output classes.
        n_classes: usize,
        /// Flat parameter image in `visit_params` order.
        params: Vec<f32>,
    },
}

impl ModelPayload {
    /// The payload's [`ModelKind`].
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelPayload::Svm(_) => ModelKind::Svm,
            ModelPayload::Forest(_) => ModelKind::Forest,
            ModelPayload::Mlp(_) => ModelKind::Mlp,
            ModelPayload::Cnn { .. } => ModelKind::Cnn,
        }
    }
}

/// One registry record: a named, versioned, labelled model plus the
/// featurization pipeline it expects (text-side kinds only).
#[derive(Debug, Clone)]
pub struct ModelRecord {
    /// Registry name (e.g. `tm1-svm`).
    pub name: String,
    /// Monotonic model version; part of the file name.
    pub version: u32,
    /// Task the model answers (`tm1`, `tm3`).
    pub task: String,
    /// Class-index → label-name mapping.
    pub labels: Vec<String>,
    /// The fitted featurization pipeline (text-side models).
    pub pipeline: Option<TextPipeline>,
    /// The weights.
    pub payload: ModelPayload,
}

/// Everything that can go wrong reading a registry file.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Filesystem error (message carries the OS detail).
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The file ends before a section it promised.
    Truncated {
        /// Byte offset where the reader stopped.
        offset: usize,
        /// Bytes the next field needed.
        needed: usize,
        /// Actual file length.
        len: usize,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// Unknown model-kind tag.
    BadKind(u32),
    /// A section parsed but its content is invalid (bad UTF-8, bad
    /// JSON, wrong parameter count...).
    Malformed(String),
}

impl RegistryError {
    /// Stable lowercase class name for tests and logs.
    pub fn name(&self) -> &'static str {
        match self {
            RegistryError::Io(_) => "io",
            RegistryError::BadMagic => "bad_magic",
            RegistryError::UnsupportedVersion { .. } => "unsupported_version",
            RegistryError::Truncated { .. } => "truncated",
            RegistryError::ChecksumMismatch { .. } => "checksum_mismatch",
            RegistryError::BadKind(_) => "bad_kind",
            RegistryError::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(m) => write!(f, "io error: {m}"),
            RegistryError::BadMagic => f.write_str("not an .elevmdl file (bad magic)"),
            RegistryError::UnsupportedVersion { found } => {
                write!(f, "unsupported container version {found} (expected {FORMAT_VERSION})")
            }
            RegistryError::Truncated { offset, needed, len } => {
                write!(f, "truncated at offset {offset}: needed {needed} more bytes of {len}")
            }
            RegistryError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            RegistryError::BadKind(tag) => write!(f, "unknown model kind tag {tag}"),
            RegistryError::Malformed(m) => write!(f, "malformed record: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// FNV-1a-64 over `bytes` — the registry's integrity checksum (and
/// nothing more: it detects corruption, not tampering).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- encoding ----------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn section(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.0.extend_from_slice(bytes);
    }
}

/// Serializes a record to its `.elevmdl` byte image (checksum
/// included).
pub fn encode_record(record: &ModelRecord) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.0.extend_from_slice(MAGIC);
    e.u32(FORMAT_VERSION);
    e.u32(record.payload.kind().tag());
    e.u32(record.version);
    e.str(&record.name);
    e.str(&record.task);
    e.u32(record.labels.len() as u32);
    for label in &record.labels {
        e.str(label);
    }
    let meta = match &record.pipeline {
        Some(p) => serde_json::to_string(p).expect("pipelines always serialize"),
        None => String::new(),
    };
    e.section(meta.as_bytes());
    let payload = match &record.payload {
        ModelPayload::Svm(m) => {
            serde_json::to_string(m).expect("svm serializes").into_bytes()
        }
        ModelPayload::Forest(m) => {
            serde_json::to_string(m).expect("forest serializes").into_bytes()
        }
        ModelPayload::Mlp(m) => {
            let mut p = Enc(Vec::new());
            p.u64(m.input_dim() as u64);
            p.u64(m.hidden() as u64);
            p.u64(m.n_classes() as u64);
            p.u64(m.params().len() as u64);
            for &w in m.params() {
                p.0.extend_from_slice(&w.to_le_bytes());
            }
            p.0
        }
        ModelPayload::Cnn { n_classes, params } => {
            let mut p = Enc(Vec::new());
            p.u64(*n_classes as u64);
            p.u64(params.len() as u64);
            for &w in params {
                p.0.extend_from_slice(&w.to_le_bytes());
            }
            p.0
        }
    };
    e.section(&payload);
    let checksum = fnv1a64(&e.0);
    e.u64(checksum);
    e.0
}

// ---- decoding ----------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RegistryError> {
        if self.buf.len() - self.pos < n {
            return Err(RegistryError::Truncated {
                offset: self.pos,
                needed: n - (self.buf.len() - self.pos),
                len: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, RegistryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, RegistryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn str(&mut self) -> Result<String, RegistryError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RegistryError::Malformed("non-UTF-8 string field".into()))
    }
    fn section(&mut self) -> Result<&'a [u8], RegistryError> {
        let n = self.u64()? as usize;
        self.take(n)
    }
}

/// Decodes one `.elevmdl` byte image.
///
/// # Errors
///
/// Every corruption mode maps onto a distinct [`RegistryError`]:
/// truncation → [`RegistryError::Truncated`], flipped content bytes →
/// [`RegistryError::ChecksumMismatch`], a future container version →
/// [`RegistryError::UnsupportedVersion`].
pub fn decode_record(buf: &[u8]) -> Result<ModelRecord, RegistryError> {
    let mut d = Dec { buf, pos: 0 };
    if d.take(MAGIC.len())? != MAGIC {
        return Err(RegistryError::BadMagic);
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(RegistryError::UnsupportedVersion { found: version });
    }

    // Verify the trailing checksum before trusting any length field
    // beyond the fixed header (a flipped length byte would otherwise
    // read as truncation instead of corruption).
    if buf.len() < 8 {
        return Err(RegistryError::Truncated { offset: 0, needed: 8 - buf.len(), len: buf.len() });
    }
    let content = &buf[..buf.len() - 8];
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a64(content);
    if stored != computed {
        return Err(RegistryError::ChecksumMismatch { stored, computed });
    }
    let mut d = Dec { buf: content, pos: d.pos };

    let kind_tag = d.u32()?;
    let kind = ModelKind::from_tag(kind_tag).ok_or(RegistryError::BadKind(kind_tag))?;
    let model_version = d.u32()?;
    let name = d.str()?;
    let task = d.str()?;
    let n_labels = d.u32()? as usize;
    if n_labels > 1 << 20 {
        return Err(RegistryError::Malformed(format!("absurd label count {n_labels}")));
    }
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        labels.push(d.str()?);
    }
    let meta = d.section()?;
    let payload_bytes = d.section()?;
    if d.pos != content.len() {
        return Err(RegistryError::Malformed(format!(
            "{} trailing bytes after payload",
            content.len() - d.pos
        )));
    }

    let pipeline = if meta.is_empty() {
        None
    } else {
        let json = std::str::from_utf8(meta)
            .map_err(|_| RegistryError::Malformed("non-UTF-8 pipeline metadata".into()))?;
        Some(
            serde_json::from_str::<TextPipeline>(json)
                .map_err(|e| RegistryError::Malformed(format!("pipeline metadata: {e}")))?,
        )
    };

    let payload_json = |what: &str| -> Result<&str, RegistryError> {
        std::str::from_utf8(payload_bytes)
            .map_err(|_| RegistryError::Malformed(format!("non-UTF-8 {what} payload")))
    };
    let payload = match kind {
        ModelKind::Svm => ModelPayload::Svm(
            serde_json::from_str(payload_json("svm")?)
                .map_err(|e| RegistryError::Malformed(format!("svm payload: {e}")))?,
        ),
        ModelKind::Forest => ModelPayload::Forest(
            serde_json::from_str(payload_json("forest")?)
                .map_err(|e| RegistryError::Malformed(format!("forest payload: {e}")))?,
        ),
        ModelKind::Mlp => {
            let mut p = Dec { buf: payload_bytes, pos: 0 };
            let input_dim = p.u64()? as usize;
            let hidden = p.u64()? as usize;
            let n_classes = p.u64()? as usize;
            let n_params = p.u64()? as usize;
            let params = read_f32s(&mut p, n_params)?;
            ModelPayload::Mlp(
                FlatMlp::from_params(input_dim, hidden, n_classes, params)
                    .map_err(RegistryError::Malformed)?,
            )
        }
        ModelKind::Cnn => {
            let mut p = Dec { buf: payload_bytes, pos: 0 };
            let n_classes = p.u64()? as usize;
            let n_params = p.u64()? as usize;
            let params = read_f32s(&mut p, n_params)?;
            ModelPayload::Cnn { n_classes, params }
        }
    };

    Ok(ModelRecord { name, version: model_version, task, labels, pipeline, payload })
}

fn read_f32s(p: &mut Dec<'_>, n: usize) -> Result<Vec<f32>, RegistryError> {
    let bytes = p.take(n.checked_mul(4).ok_or_else(|| {
        RegistryError::Malformed(format!("absurd parameter count {n}"))
    })?)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

// ---- files and directories ---------------------------------------------

/// The file name a record saves under: `<name>@<version>.elevmdl`.
pub fn file_name(record: &ModelRecord) -> String {
    format!("{}@{}.elevmdl", record.name, record.version)
}

/// Crash-safe file write: the bytes land in a sibling `.tmp` file,
/// are fsynced, then renamed over `path`. A crash at any point leaves
/// either the old content or the new content at `path`, never a torn
/// prefix; leftover `.tmp` files are ignored by every loader.
///
/// # Errors
///
/// Propagates filesystem errors as [`RegistryError::Io`].
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), RegistryError> {
    let io = |e: std::io::Error| RegistryError::Io(e.to_string());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = fs::File::create(&tmp).map_err(io)?;
    f.write_all(bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp, path).map_err(io)?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes one record into `dir` (atomically, see [`atomic_write`]).
///
/// # Errors
///
/// Propagates filesystem errors as [`RegistryError::Io`].
pub fn save_record(dir: &Path, record: &ModelRecord) -> Result<PathBuf, RegistryError> {
    let path = dir.join(file_name(record));
    atomic_write(&path, &encode_record(record))?;
    Ok(path)
}

/// Reads and decodes one `.elevmdl` file.
///
/// # Errors
///
/// [`RegistryError::Io`] for filesystem failures, otherwise whatever
/// [`decode_record`] reports.
pub fn load_record(path: &Path) -> Result<ModelRecord, RegistryError> {
    let bytes = fs::read(path).map_err(|e| RegistryError::Io(e.to_string()))?;
    decode_record(&bytes)
}

/// The manifest file name a registry directory carries.
pub const MANIFEST: &str = "manifest.txt";

/// The previous generation's manifest, preserved by [`save_dir`] so a
/// torn publish can fall back to the last-good file set.
pub const MANIFEST_PREV: &str = "manifest.prev.txt";

/// Writes `records` into `dir` (created if missing) plus a
/// `manifest.txt`, written last so its mtime bump is the hot-reload
/// signal. Every file lands via [`atomic_write`]; the outgoing
/// manifest (if any) is preserved as [`MANIFEST_PREV`] first, and the
/// new manifest's `generation` header is the old one plus one.
///
/// # Errors
///
/// Propagates filesystem errors as [`RegistryError::Io`].
pub fn save_dir(dir: &Path, records: &[ModelRecord]) -> Result<(), RegistryError> {
    fs::create_dir_all(dir).map_err(|e| RegistryError::Io(e.to_string()))?;
    let manifest = dir.join(MANIFEST);
    let generation = match fs::read_to_string(&manifest) {
        Ok(text) => {
            atomic_write(&dir.join(MANIFEST_PREV), text.as_bytes())?;
            parse_manifest(&text).map_or(0, |m| m.generation) + 1
        }
        Err(_) => 1,
    };
    let mut lines = Vec::with_capacity(records.len());
    for record in records {
        let path = save_record(dir, record)?;
        let bytes = fs::read(&path).map_err(|e| RegistryError::Io(e.to_string()))?;
        lines.push(format!(
            "{}@{} kind={} task={} labels={} bytes={} fnv1a64={:#018x}",
            record.name,
            record.version,
            record.payload.kind().name(),
            record.task,
            record.labels.len(),
            bytes.len(),
            fnv1a64(&bytes),
        ));
    }
    lines.sort();
    let mut text = format!("generation {generation}\n");
    for line in &lines {
        text.push_str(line);
        text.push('\n');
    }
    atomic_write(&manifest, text.as_bytes())
}

/// One manifest entry: the file it names and the integrity facts the
/// loader verifies before decoding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ManifestEntry {
    /// Record file name (`<name>@<version>.elevmdl`).
    pub file: String,
    /// Expected file length in bytes.
    pub bytes: usize,
    /// Expected FNV-1a-64 of the whole file.
    pub fnv: u64,
}

/// A parsed `manifest.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Publish generation (monotonic; pre-header manifests read as 0).
    pub generation: u64,
    /// Entries sorted by file name.
    pub entries: Vec<ManifestEntry>,
}

/// Parses manifest text (header optional for pre-generation files).
///
/// # Errors
///
/// [`RegistryError::Malformed`] naming the first unparseable line — a
/// torn manifest write must read as an error, never as a shorter
/// valid manifest.
pub fn parse_manifest(text: &str) -> Result<Manifest, RegistryError> {
    let bad = |line: &str, what: &str| {
        RegistryError::Malformed(format!("manifest line {line:?}: {what}"))
    };
    let mut generation = 0u64;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 {
            if let Some(g) = line.strip_prefix("generation ") {
                generation =
                    g.parse().map_err(|_| bad(line, "generation is not an integer"))?;
                continue;
            }
        }
        let mut fields = line.split(' ');
        let id = fields.next().filter(|s| !s.is_empty()).ok_or_else(|| bad(line, "empty"))?;
        if !id.contains('@') {
            return Err(bad(line, "missing name@version"));
        }
        let mut bytes = None;
        let mut fnv = None;
        for field in fields {
            if let Some(v) = field.strip_prefix("bytes=") {
                bytes = Some(v.parse().map_err(|_| bad(line, "bad bytes="))?);
            } else if let Some(v) = field.strip_prefix("fnv1a64=") {
                let hex = v.strip_prefix("0x").ok_or_else(|| bad(line, "bad fnv1a64="))?;
                fnv = Some(
                    u64::from_str_radix(hex, 16).map_err(|_| bad(line, "bad fnv1a64="))?,
                );
            }
        }
        entries.push(ManifestEntry {
            file: format!("{id}.elevmdl"),
            bytes: bytes.ok_or_else(|| bad(line, "missing bytes="))?,
            fnv: fnv.ok_or_else(|| bad(line, "missing fnv1a64="))?,
        });
    }
    entries.sort();
    Ok(Manifest { generation, entries })
}

/// What [`load_generation`] actually loaded.
#[derive(Debug)]
pub struct GenerationLoad {
    /// Records of the served generation, in manifest order.
    pub records: Vec<ModelRecord>,
    /// Generation number of the manifest the records came from.
    pub generation: u64,
    /// True when the current manifest's file set was torn and the
    /// previous generation was served instead.
    pub fell_back: bool,
    /// Per-file errors from the torn generation (empty on a clean
    /// load) — each torn file keeps its distinct error class.
    pub errors: Vec<(String, RegistryError)>,
}

fn load_manifest_records(
    dir: &Path,
    manifest: &Manifest,
) -> Result<Vec<ModelRecord>, Vec<(String, RegistryError)>> {
    let mut records = Vec::with_capacity(manifest.entries.len());
    let mut errors = Vec::new();
    for entry in &manifest.entries {
        let path = dir.join(&entry.file);
        let loaded = fs::read(&path).map_err(|e| RegistryError::Io(e.to_string())).and_then(
            |bytes| {
                if bytes.len() < entry.bytes {
                    return Err(RegistryError::Truncated {
                        offset: bytes.len(),
                        needed: entry.bytes - bytes.len(),
                        len: bytes.len(),
                    });
                }
                let computed = fnv1a64(&bytes);
                if bytes.len() != entry.bytes || computed != entry.fnv {
                    return Err(RegistryError::ChecksumMismatch {
                        stored: entry.fnv,
                        computed,
                    });
                }
                decode_record(&bytes)
            },
        );
        match loaded {
            Ok(record) => records.push(record),
            Err(e) => errors.push((entry.file.clone(), e)),
        }
    }
    if errors.is_empty() {
        Ok(records)
    } else {
        Err(errors)
    }
}

/// Loads the registry the crash-safe way: parse `manifest.txt`,
/// verify every listed file's length and FNV against its manifest
/// line, and decode. If anything about the current generation is torn
/// — unparseable manifest, missing file, short file, flipped bytes —
/// fall back to [`MANIFEST_PREV`] and serve the last-good generation,
/// reporting the torn files' distinct errors in
/// [`GenerationLoad::errors`].
///
/// # Errors
///
/// The current generation's first error when no previous generation
/// exists or the fallback is itself unloadable.
pub fn load_generation(dir: &Path) -> Result<GenerationLoad, RegistryError> {
    let manifest_text =
        fs::read_to_string(dir.join(MANIFEST)).map_err(|e| RegistryError::Io(e.to_string()));
    let current = manifest_text.and_then(|text| {
        let manifest = parse_manifest(&text)?;
        Ok((manifest.generation, load_manifest_records(dir, &manifest)))
    });
    let errors = match current {
        Ok((generation, Ok(records))) => {
            return Ok(GenerationLoad { records, generation, fell_back: false, errors: Vec::new() })
        }
        Ok((_, Err(errors))) => errors,
        Err(e) => vec![(MANIFEST.to_owned(), e)],
    };
    let fallback = fs::read_to_string(dir.join(MANIFEST_PREV))
        .map_err(|e| RegistryError::Io(e.to_string()))
        .and_then(|text| {
            let manifest = parse_manifest(&text)?;
            load_manifest_records(dir, &manifest)
                .map(|records| (manifest.generation, records))
                .map_err(|mut errs| errs.swap_remove(0).1)
        });
    match fallback {
        Ok((generation, records)) => {
            Ok(GenerationLoad { records, generation, fell_back: true, errors })
        }
        // No last-good generation: surface the torn generation's first
        // error (the fallback miss is secondary).
        Err(_) => Err(errors.into_iter().next().expect("at least one error").1),
    }
}

/// Loads every `.elevmdl` record in `dir`, sorted by file name (so
/// load order — and any error — is deterministic).
///
/// # Errors
///
/// [`RegistryError::Io`] when the directory is unreadable; the first
/// undecodable record's error otherwise.
pub fn load_dir(dir: &Path) -> Result<Vec<ModelRecord>, RegistryError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| RegistryError::Io(e.to_string()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "elevmdl"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_record(p)).collect()
}

/// The manifest's mtime, the hot-reload poll signal. `None` when the
/// manifest does not exist (nothing to reload yet).
pub fn manifest_mtime(dir: &Path) -> Option<std::time::SystemTime> {
    fs::metadata(dir.join(MANIFEST)).and_then(|m| m.modified()).ok()
}

/// Captures a CNN's registry payload from a trained network.
pub fn cnn_payload(net: &mut neuralnet::Sequential, n_classes: usize) -> ModelPayload {
    let mut params = Vec::new();
    net.export_params(&mut params);
    ModelPayload::Cnn { n_classes, params }
}

/// Restores a CNN record's network (arch rebuilt, weights imported).
///
/// # Errors
///
/// Rejects payloads whose parameter count does not match the
/// architecture.
pub fn restore_cnn(n_classes: usize, params: &[f32]) -> Result<neuralnet::Sequential, String> {
    let mut net = ArchSpec::PaperCnn { n_classes }.build(0);
    if net.n_params() != params.len() {
        return Err(format!(
            "cnn parameter count {} != architecture's {}",
            params.len(),
            net.n_params()
        ));
    }
    net.import_params(params);
    Ok(net)
}
