//! The blocking-accept + worker-pool HTTP server.
//!
//! No async runtime: one acceptor thread pushes connections onto a
//! condvar-guarded queue; `ELEV_SERVE_WORKERS` worker threads pop and
//! speak HTTP/1.1 (keep-alive, pipelining via leftover-buffer carry).
//! Each worker owns one [`InferenceArena`], so the steady-state
//! classify path allocates nothing and workers never contend on
//! scratch space.
//!
//! The loaded [`ModelBundle`] sits behind an `RwLock<Arc<_>>`: request
//! handlers clone the `Arc` (cheap, wait-free in the common case) and
//! the optional hot-reload thread swaps a new bundle in when the
//! registry manifest's mtime changes — in-flight requests finish on
//! the bundle they started with.
//!
//! Routes:
//!
//! | method + target      | response                                   |
//! |----------------------|--------------------------------------------|
//! | `GET /healthz`       | `200` liveness JSON                        |
//! | `GET /v1/models`     | `200` bundle version + model listing       |
//! | `POST /v1/report`    | `200` leakage report / `422` quarantined   |
//! | anything else        | `404` / `405` / `400` / `413` structured   |

use crate::arena::InferenceArena;
use crate::bundle::ModelBundle;
use crate::http::{self, Head, MAX_HEAD_BYTES};
use crate::registry;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request body the server will accept (a GPX upload).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, read back via
    /// [`Server::addr`]).
    pub port: u16,
    /// Worker-pool size.
    pub workers: usize,
    /// Registry directory to hot-reload from (manifest mtime polled);
    /// `None` disables reloading.
    pub model_dir: Option<PathBuf>,
    /// Manifest poll interval.
    pub reload_poll: Duration,
}

impl ServeConfig {
    /// Ephemeral port, worker count from `ELEV_SERVE_WORKERS`
    /// (default 4), no hot reload.
    pub fn from_env() -> Self {
        Self {
            port: 0,
            workers: exec::env_budget("ELEV_SERVE_WORKERS", || 4),
            model_dir: None,
            reload_poll: Duration::from_millis(200),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// State shared between the acceptor, the workers, and the reloader.
struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    stop: AtomicBool,
    bundle: RwLock<Arc<ModelBundle>>,
}

/// A running server; dropping it shuts the pool down cleanly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool, and returns once the socket is live.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(bundle: ModelBundle, cfg: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            bundle: RwLock::new(Arc::new(bundle)),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let reloader = cfg.model_dir.clone().map(|dir| {
            let shared = Arc::clone(&shared);
            let poll = cfg.reload_poll;
            std::thread::spawn(move || reload_loop(&dir, poll, &shared))
        });

        Ok(Self { addr, shared, acceptor: Some(acceptor), workers, reloader })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swaps the served bundle immediately (the programmatic twin of
    /// manifest hot reload).
    pub fn replace_bundle(&self, bundle: ModelBundle) {
        *self.shared.bundle.write().expect("bundle lock") = Arc::new(bundle);
    }

    /// Stops accepting, drains the pool, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor sits in a blocking accept; a throwaway local
        // connection wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        self.shared.cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.reloader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = stream {
            let mut queue = shared.queue.lock().expect("queue lock");
            queue.push_back(stream);
            drop(queue);
            shared.cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut arena = InferenceArena::new();
    shared.bundle.read().expect("bundle lock").warm(&mut arena);
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.cv.wait(queue).expect("queue lock");
            }
        };
        handle_connection(stream, shared, &mut arena);
    }
}

fn reload_loop(dir: &std::path::Path, poll: Duration, shared: &Shared) {
    let mut last = registry::manifest_mtime(dir);
    let slice = Duration::from_millis(25).min(poll.max(Duration::from_millis(1)));
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        elapsed += slice;
        if elapsed < poll {
            continue;
        }
        elapsed = Duration::ZERO;
        let now = registry::manifest_mtime(dir);
        if now == last || now.is_none() {
            continue;
        }
        last = now;
        // A half-written registry (or one that fails validation) keeps
        // the previous bundle serving; the swap is all-or-nothing.
        if let Ok(records) = registry::load_dir(dir) {
            if let Ok(bundle) = ModelBundle::from_records(records) {
                *shared.bundle.write().expect("bundle lock") = Arc::new(bundle);
            }
        }
    }
}

/// Serves one connection: read a request, respond, repeat while
/// keep-alive holds. Any leftover bytes after a request (pipelining)
/// are carried into the next iteration.
fn handle_connection(mut stream: TcpStream, shared: &Shared, arena: &mut InferenceArena) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Accumulate until the head terminator is in the buffer.
        let head_end = loop {
            if let Some(end) = http::find_head_end(&buf) {
                break end;
            }
            if buf.len() > MAX_HEAD_BYTES {
                respond_close(&mut stream, 400, "{\"error\": \"head_too_large\"}");
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if !buf.is_empty() {
                        respond_close(&mut stream, 400, "{\"error\": \"missing_terminator\"}");
                    }
                    return;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => return,
            }
        };

        let head = match http::parse_head(&buf[..head_end]) {
            Ok((head, _)) => head,
            Err(e) => {
                respond_close(&mut stream, 400, &format!("{{\"error\": \"{}\"}}", e.name()));
                return;
            }
        };
        if head.content_length > MAX_BODY_BYTES {
            respond_close(&mut stream, 413, "{\"error\": \"payload_too_large\"}");
            return;
        }

        // Accumulate the declared body.
        let total = head_end + head.content_length;
        while buf.len() < total {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    respond_close(&mut stream, 400, "{\"error\": \"bad_content_length\"}");
                    return;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => return,
            }
        }

        let (status, body) = route(&head, &buf[head_end..total], shared, arena);
        let response = http::render_response(status, &body);
        if stream.write_all(&response).is_err() {
            return;
        }
        if !head.keep_alive {
            return;
        }
        buf.drain(..total);
    }
}

fn respond_close(stream: &mut TcpStream, status: u16, body: &str) {
    let _ = stream.write_all(&http::render_response(status, body));
}

fn route(head: &Head, body: &[u8], shared: &Shared, arena: &mut InferenceArena) -> (u16, String) {
    let bundle = Arc::clone(&shared.bundle.read().expect("bundle lock"));
    match (head.method.as_str(), head.target.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\": \"ok\"}".to_owned()),
        ("GET", "/v1/models") => (200, bundle.models_json()),
        ("POST", "/v1/report") => bundle.report_json(body, arena),
        (_, "/healthz" | "/v1/models" | "/v1/report") => {
            (405, "{\"error\": \"method_not_allowed\"}".to_owned())
        }
        _ => (404, "{\"error\": \"not_found\"}".to_owned()),
    }
}
