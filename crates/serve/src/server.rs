//! The blocking-accept + worker-pool HTTP server.
//!
//! No async runtime: one acceptor thread pushes connections onto a
//! condvar-guarded queue; `ELEV_SERVE_WORKERS` worker threads pop and
//! speak HTTP/1.1 (keep-alive, pipelining via leftover-buffer carry).
//! Each worker owns one [`InferenceArena`], so the steady-state
//! classify path allocates nothing and workers never contend on
//! scratch space.
//!
//! The loaded [`ModelBundle`] sits behind an `RwLock<Arc<_>>`: request
//! handlers clone the `Arc` (cheap, wait-free in the common case) and
//! the optional hot-reload thread swaps a new bundle in when the
//! registry manifest's mtime changes — in-flight requests finish on
//! the bundle they started with.
//!
//! # Overload safety
//!
//! The server assumes clients are adversarial at the transport layer
//! (slowloris drip, half-open stalls, mid-body resets — exactly the
//! faults `faultsim::netfault` injects) and defends in depth:
//!
//! - **Deadlines**: every connection reads in short slices under a
//!   header deadline and a total per-request budget
//!   (`ELEV_SERVE_DEADLINE_MS`); a blown deadline answers `408` with a
//!   distinct error body. Writes carry the remaining budget as a write
//!   timeout, so a non-reading peer surfaces as a typed
//!   [`ConnError::WriteTimeout`] instead of wedging a worker.
//! - **Load shedding**: the admission queue is bounded
//!   (`ELEV_SERVE_QUEUE_DEPTH`); past it the acceptor answers `503` +
//!   `Retry-After: 1` and drops the connection. Optional per-IP-slot
//!   caps (`ELEV_SERVE_IP_CAP`) shed greedy sources the same way.
//!   Every shed is counted and surfaced by `GET /v1/health`.
//! - **Supervision**: a handler panic is caught per connection (the
//!   worker rebuilds its arena and keeps serving); a worker thread
//!   that dies anyway is respawned by a supervisor without dropping
//!   the listener.
//! - **Graceful drain**: [`Server::drain`] stops admitting, lets
//!   in-flight requests finish (responses gain `Connection: close`),
//!   and [`Server::shutdown`] joins everything.
//!
//! Routes:
//!
//! | method + target      | response                                   |
//! |----------------------|--------------------------------------------|
//! | `GET /healthz`       | `200` liveness JSON                        |
//! | `GET /v1/health`     | `200` overload/fault counters JSON         |
//! | `GET /v1/models`     | `200` bundle version + model listing       |
//! | `POST /v1/report`    | `200` leakage report / `422` quarantined   |
//! | anything else        | `404` / `405` / `400` / `408` / `413`      |

use crate::arena::InferenceArena;
use crate::bundle::ModelBundle;
use crate::http::{self, Head, MAX_HEAD_BYTES};
use crate::registry;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest request body the server will accept (a GPX upload).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Read-slice granularity: every blocking read wakes at least this
/// often to check deadlines, drain, and stop flags.
const READ_SLICE: Duration = Duration::from_millis(50);

/// Number of per-IP accounting slots (peer IPs hash into these).
const IP_SLOTS: usize = 64;

/// Consecutive bad reload attempts before the hot-reload circuit
/// breaker opens (polling then slows by [`BREAKER_BACKOFF`]x).
const BREAKER_THRESHOLD: u32 = 3;

/// Poll-interval multiplier while the reload breaker is open.
const BREAKER_BACKOFF: u32 = 8;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral, read back via
    /// [`Server::addr`]).
    pub port: u16,
    /// Worker-pool size.
    pub workers: usize,
    /// Registry directory to hot-reload from (manifest mtime polled);
    /// `None` disables reloading.
    pub model_dir: Option<PathBuf>,
    /// Manifest poll interval.
    pub reload_poll: Duration,
    /// Total per-request time budget, first byte to last response
    /// byte (`ELEV_SERVE_DEADLINE_MS`, default 5000).
    pub request_deadline: Duration,
    /// Budget for receiving a complete head (slowloris guard);
    /// derived as `min(2 s, request_deadline)` by [`Self::from_env`].
    pub header_deadline: Duration,
    /// How long a keep-alive connection may sit idle between
    /// requests before the server closes it.
    pub idle_timeout: Duration,
    /// Admission-queue bound: connections beyond it are shed with
    /// `503` + `Retry-After` (`ELEV_SERVE_QUEUE_DEPTH`, default 64).
    pub queue_depth: usize,
    /// Max concurrent connections per IP slot; 0 disables the cap
    /// (`ELEV_SERVE_IP_CAP`, default 0).
    pub ip_slot_cap: usize,
    /// Enables the `POST /v1/debug/{panic,die}` fault-injection
    /// routes — the test-only hook the chaos/supervision suites use.
    /// Never set outside tests.
    pub debug_routes: bool,
}

impl ServeConfig {
    /// Ephemeral port, knobs from the environment
    /// (`ELEV_SERVE_WORKERS`/`ELEV_SERVE_DEADLINE_MS`/
    /// `ELEV_SERVE_QUEUE_DEPTH`/`ELEV_SERVE_IP_CAP`), no hot reload,
    /// no debug routes.
    pub fn from_env() -> Self {
        let deadline =
            Duration::from_millis(exec::env_budget("ELEV_SERVE_DEADLINE_MS", || 5000) as u64);
        Self {
            port: 0,
            workers: exec::env_budget("ELEV_SERVE_WORKERS", || 4),
            model_dir: None,
            reload_poll: Duration::from_millis(200),
            request_deadline: deadline,
            header_deadline: deadline.min(Duration::from_secs(2)),
            idle_timeout: Duration::from_secs(5),
            queue_depth: exec::env_budget("ELEV_SERVE_QUEUE_DEPTH", || 64),
            ip_slot_cap: exec::env_budget("ELEV_SERVE_IP_CAP", || 0),
            debug_routes: false,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Typed connection-write failure: a stalled reader (the peer's
/// receive window filled and stayed full past the deadline) is a
/// different animal from a vanished peer, and the health counters
/// keep them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnError {
    /// The write timed out — the peer exists but is not reading.
    WriteTimeout,
    /// Any other I/O failure (reset, broken pipe, ...).
    Io,
}

impl ConnError {
    /// Classifies an I/O error from a deadline-carrying stream.
    pub fn from_io(e: &std::io::Error) -> Self {
        if is_timeout(e) {
            ConnError::WriteTimeout
        } else {
            ConnError::Io
        }
    }

    /// Stable lowercase name (health counters, logs).
    pub fn name(self) -> &'static str {
        match self {
            ConnError::WriteTimeout => "write_timeout",
            ConnError::Io => "io",
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
}

/// Monotonic overload/fault counters (all relaxed atomics; exactness
/// under concurrency matters, ordering between counters does not).
#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    active: AtomicU64,
    shed_queue: AtomicU64,
    shed_ip_cap: AtomicU64,
    header_timeouts: AtomicU64,
    request_timeouts: AtomicU64,
    write_timeouts: AtomicU64,
    io_errors: AtomicU64,
    worker_panics: AtomicU64,
    workers_restarted: AtomicU64,
    reload_successes: AtomicU64,
    reload_failures: AtomicU64,
    reload_fallbacks: AtomicU64,
    breaker_open: AtomicBool,
    generation: AtomicU64,
}

/// A point-in-time copy of the server's health counters — what
/// `GET /v1/health` serializes and tests assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Connections admitted past the shed checks.
    pub accepted: u64,
    /// Requests fully responded to (any status).
    pub completed: u64,
    /// Connections currently queued or in a worker.
    pub active: u64,
    /// Connections shed because the admission queue was full (or the
    /// server was draining).
    pub shed_queue: u64,
    /// Connections shed by the per-IP-slot cap.
    pub shed_ip_cap: u64,
    /// Requests answered `408` before a complete head arrived.
    pub header_timeouts: u64,
    /// Requests answered `408` after the total budget elapsed.
    pub request_timeouts: u64,
    /// Response writes abandoned on a stalled reader.
    pub write_timeouts: u64,
    /// Connections dropped on other I/O errors.
    pub io_errors: u64,
    /// Handler panics caught (worker survived).
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor.
    pub workers_restarted: u64,
    /// Hot reloads that swapped a new bundle in.
    pub reload_successes: u64,
    /// Hot reloads that failed outright (bundle kept).
    pub reload_failures: u64,
    /// Hot reloads that found a torn generation and kept serving the
    /// last-good one.
    pub reload_fallbacks: u64,
    /// Whether the reload circuit breaker is open.
    pub breaker_open: bool,
    /// Registry generation currently served (0 = no registry).
    pub generation: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

impl HealthSnapshot {
    /// Total connections shed, whatever the reason.
    pub fn shed(&self) -> u64 {
        self.shed_queue + self.shed_ip_cap
    }

    /// Deterministic JSON rendering (fixed key order, no floats).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"status\": \"ok\", \"accepted\": {}, \"completed\": {}, \"active\": {}, \
             \"shed_queue\": {}, \"shed_ip_cap\": {}, \"header_timeouts\": {}, \
             \"request_timeouts\": {}, \"write_timeouts\": {}, \"io_errors\": {}, \
             \"worker_panics\": {}, \"workers_restarted\": {}, \"reload_successes\": {}, \
             \"reload_failures\": {}, \"reload_fallbacks\": {}, \"breaker_open\": {}, \
             \"generation\": {}, \"draining\": {}}}",
            self.accepted,
            self.completed,
            self.active,
            self.shed_queue,
            self.shed_ip_cap,
            self.header_timeouts,
            self.request_timeouts,
            self.write_timeouts,
            self.io_errors,
            self.worker_panics,
            self.workers_restarted,
            self.reload_successes,
            self.reload_failures,
            self.reload_fallbacks,
            self.breaker_open,
            self.generation,
            self.draining,
        )
    }
}

/// One admitted connection plus the IP slot it charges.
struct Conn {
    stream: TcpStream,
    slot: usize,
}

/// State shared between the acceptor, the workers, the supervisor,
/// and the reloader.
struct Shared {
    queue: Mutex<VecDeque<Conn>>,
    cv: Condvar,
    stop: AtomicBool,
    draining: AtomicBool,
    bundle: RwLock<Arc<ModelBundle>>,
    stats: Stats,
    ip_slots: [AtomicU32; IP_SLOTS],
    cfg: ServeConfig,
}

impl Shared {
    fn bundle(&self) -> Arc<ModelBundle> {
        Arc::clone(&self.bundle.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn health(&self) -> HealthSnapshot {
        let s = &self.stats;
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        HealthSnapshot {
            accepted: c(&s.accepted),
            completed: c(&s.completed),
            active: c(&s.active),
            shed_queue: c(&s.shed_queue),
            shed_ip_cap: c(&s.shed_ip_cap),
            header_timeouts: c(&s.header_timeouts),
            request_timeouts: c(&s.request_timeouts),
            write_timeouts: c(&s.write_timeouts),
            io_errors: c(&s.io_errors),
            worker_panics: c(&s.worker_panics),
            workers_restarted: c(&s.workers_restarted),
            reload_successes: c(&s.reload_successes),
            reload_failures: c(&s.reload_failures),
            reload_fallbacks: c(&s.reload_fallbacks),
            breaker_open: s.breaker_open.load(Ordering::Relaxed),
            generation: c(&s.generation),
            draining: self.draining.load(Ordering::SeqCst),
        }
    }
}

/// A running server; dropping it shuts the pool down cleanly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool, and returns once the socket is live.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(bundle: ModelBundle, cfg: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            bundle: RwLock::new(Arc::new(bundle)),
            stats: Stats::default(),
            ip_slots: std::array::from_fn(|_| AtomicU32::new(0)),
            cfg: cfg.clone(),
        });
        if let Some(dir) = &cfg.model_dir {
            if let Ok(text) = std::fs::read_to_string(dir.join(registry::MANIFEST)) {
                if let Ok(manifest) = registry::parse_manifest(&text) {
                    shared.stats.generation.store(manifest.generation, Ordering::Relaxed);
                }
            }
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let handles: Vec<JoinHandle<()>> =
            (0..cfg.workers.max(1)).map(|_| spawn_worker(&shared)).collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise(&shared, handles))
        };
        let reloader = cfg.model_dir.clone().map(|dir| {
            let shared = Arc::clone(&shared);
            let poll = cfg.reload_poll;
            std::thread::spawn(move || reload_loop(&dir, poll, &shared))
        });

        Ok(Self { addr, shared, acceptor: Some(acceptor), supervisor: Some(supervisor), reloader })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the overload/fault counters (the
    /// programmatic twin of `GET /v1/health`).
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health()
    }

    /// Swaps the served bundle immediately (the programmatic twin of
    /// manifest hot reload).
    pub fn replace_bundle(&self, bundle: ModelBundle) {
        *self.shared.bundle.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(bundle);
    }

    /// Stops admitting new connections and lets in-flight requests
    /// finish; subsequent responses carry `Connection: close`.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }

    /// Drains, stops accepting, finishes queued and in-flight
    /// requests, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor sits in a blocking accept; a throwaway local
        // connection wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        self.shared.cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reloader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Hashes a peer IP into its accounting slot.
fn ip_slot(stream: &TcpStream) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    match stream.peer_addr().map(|a| a.ip()) {
        Ok(std::net::IpAddr::V4(ip)) => ip.octets().into_iter().for_each(&mut eat),
        Ok(std::net::IpAddr::V6(ip)) => ip.octets().into_iter().for_each(&mut eat),
        Err(_) => {}
    }
    (h % IP_SLOTS as u64) as usize
}

/// Answers `503` + `Retry-After` on a connection being shed and drops
/// it. The body is a handful of bytes (always fits the socket buffer)
/// and the stream carries a short write timeout, so a non-reading
/// peer cannot wedge the acceptor.
fn shed(mut stream: TcpStream, why: &str) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let body = format!("{{\"error\": \"{why}\"}}");
    let _ = stream.write_all(&http::render_response_with(
        503,
        &body,
        &[("Retry-After", "1"), ("Connection", "close")],
    ));
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.draining.load(Ordering::SeqCst) {
            shared.stats.shed_queue.fetch_add(1, Ordering::Relaxed);
            shed(stream, "draining");
            continue;
        }
        let slot = ip_slot(&stream);
        let cap = shared.cfg.ip_slot_cap;
        if cap > 0 && shared.ip_slots[slot].load(Ordering::SeqCst) as usize >= cap {
            shared.stats.shed_ip_cap.fetch_add(1, Ordering::Relaxed);
            shed(stream, "ip_capped");
            continue;
        }
        // Depth check and push under one lock so the bound is exact.
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= shared.cfg.queue_depth {
            drop(queue);
            shared.stats.shed_queue.fetch_add(1, Ordering::Relaxed);
            shed(stream, "overloaded");
            continue;
        }
        shared.ip_slots[slot].fetch_add(1, Ordering::SeqCst);
        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
        shared.stats.active.fetch_add(1, Ordering::Relaxed);
        queue.push_back(Conn { stream, slot });
        drop(queue);
        shared.cv.notify_one();
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared))
}

/// Respawns dead workers (a worker thread only dies via the
/// `/v1/debug/die` hook or a panic that escapes the per-connection
/// `catch_unwind`) without ever dropping the listener; joins the pool
/// at shutdown.
fn supervise(shared: &Arc<Shared>, mut handles: Vec<JoinHandle<()>>) {
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        for h in handles.iter_mut() {
            if h.is_finished() && !shared.stop.load(Ordering::SeqCst) {
                let dead = std::mem::replace(h, spawn_worker(shared));
                let _ = dead.join();
                shared.stats.workers_restarted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

/// What a finished connection tells its worker.
enum ConnDone {
    /// Serve the next connection.
    Keep,
    /// Exit the worker thread (debug hook); the supervisor respawns.
    KillWorker,
}

fn worker_loop(shared: &Shared) {
    let mut arena = InferenceArena::new();
    shared.bundle().warm(&mut arena);
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(conn) = queue.pop_front() {
                    break conn;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let slot = conn.slot;
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(conn.stream, shared, &mut arena)
        }));
        shared.ip_slots[slot].fetch_sub(1, Ordering::SeqCst);
        shared.stats.active.fetch_sub(1, Ordering::Relaxed);
        match verdict {
            Ok(ConnDone::Keep) => {}
            Ok(ConnDone::KillWorker) => return,
            Err(_) => {
                // The handler panicked mid-connection: count it, drop
                // the connection, rebuild the (possibly poisoned)
                // arena, and keep serving.
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                arena = InferenceArena::new();
                shared.bundle().warm(&mut arena);
            }
        }
    }
}

fn reload_loop(dir: &std::path::Path, poll: Duration, shared: &Shared) {
    let mut last = registry::manifest_mtime(dir);
    let slice = Duration::from_millis(25).min(poll.max(Duration::from_millis(1)));
    let mut elapsed = Duration::ZERO;
    let mut consecutive_bad = 0u32;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        elapsed += slice;
        // An open breaker slows the poll: a corrupt publish gets
        // probed occasionally instead of hammered every interval.
        let effective = if shared.stats.breaker_open.load(Ordering::Relaxed) {
            poll * BREAKER_BACKOFF
        } else {
            poll
        };
        if elapsed < effective {
            continue;
        }
        elapsed = Duration::ZERO;
        let now = registry::manifest_mtime(dir);
        if now == last || now.is_none() {
            continue;
        }
        last = now;
        let mut bad = |counter: &AtomicU64| {
            counter.fetch_add(1, Ordering::Relaxed);
            consecutive_bad += 1;
            if consecutive_bad >= BREAKER_THRESHOLD {
                shared.stats.breaker_open.store(true, Ordering::Relaxed);
            }
        };
        // A half-written registry (or one that fails validation) keeps
        // the previous bundle serving; the swap is all-or-nothing.
        match registry::load_generation(dir) {
            Ok(load) if !load.fell_back => match ModelBundle::from_records(load.records) {
                Ok(bundle) => {
                    *shared.bundle.write().unwrap_or_else(PoisonError::into_inner) =
                        Arc::new(bundle);
                    shared.stats.generation.store(load.generation, Ordering::Relaxed);
                    shared.stats.reload_successes.fetch_add(1, Ordering::Relaxed);
                    consecutive_bad = 0;
                    shared.stats.breaker_open.store(false, Ordering::Relaxed);
                }
                Err(_) => bad(&shared.stats.reload_failures),
            },
            // Torn publish: the loader fell back to the generation we
            // are already serving — keep the current bundle, count it.
            Ok(_) => bad(&shared.stats.reload_fallbacks),
            Err(_) => bad(&shared.stats.reload_failures),
        }
    }
}

/// Serves one connection: read a request under its deadlines,
/// respond, repeat while keep-alive holds. Any leftover bytes after a
/// request (pipelining) are carried into the next iteration.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    arena: &mut InferenceArena,
) -> ConnDone {
    let cfg = &shared.cfg;
    let stats = &shared.stats;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let _ = stream.set_write_timeout(Some(cfg.request_deadline));
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Idle phase: wait for the first byte of the next request
        // (pipelined leftovers skip it). Slice reads so stop/drain and
        // the idle timeout are observed promptly.
        let idle_start = Instant::now();
        while buf.is_empty() {
            match stream.read(&mut chunk) {
                Ok(0) => return ConnDone::Keep,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {
                    if shared.stop.load(Ordering::SeqCst)
                        || shared.draining.load(Ordering::SeqCst)
                        || idle_start.elapsed() >= cfg.idle_timeout
                    {
                        return ConnDone::Keep;
                    }
                }
                Err(_) => {
                    stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    return ConnDone::Keep;
                }
            }
        }
        // The request clock starts at its first byte.
        let clock = Instant::now();

        // Head phase: accumulate until the terminator, under the
        // header deadline (slowloris guard).
        let head_end = loop {
            if let Some(end) = http::find_head_end(&buf) {
                break end;
            }
            if buf.len() > MAX_HEAD_BYTES {
                respond_close(&mut stream, 400, "{\"error\": \"head_too_large\"}", stats);
                return ConnDone::Keep;
            }
            if clock.elapsed() >= cfg.header_deadline.min(cfg.request_deadline) {
                stats.header_timeouts.fetch_add(1, Ordering::Relaxed);
                respond_close(&mut stream, 408, "{\"error\": \"header_timeout\"}", stats);
                return ConnDone::Keep;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    respond_close(&mut stream, 400, "{\"error\": \"missing_terminator\"}", stats);
                    return ConnDone::Keep;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(_) => {
                    stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    return ConnDone::Keep;
                }
            }
        };

        let head = match http::parse_head(&buf[..head_end]) {
            Ok((head, _)) => head,
            Err(e) => {
                respond_close(&mut stream, 400, &format!("{{\"error\": \"{}\"}}", e.name()), stats);
                return ConnDone::Keep;
            }
        };
        if head.content_length > MAX_BODY_BYTES {
            respond_close(&mut stream, 413, "{\"error\": \"payload_too_large\"}", stats);
            return ConnDone::Keep;
        }

        // Body phase: accumulate the declared body under the total
        // request budget.
        let total = head_end + head.content_length;
        while buf.len() < total {
            if clock.elapsed() >= cfg.request_deadline {
                stats.request_timeouts.fetch_add(1, Ordering::Relaxed);
                respond_close(&mut stream, 408, "{\"error\": \"request_timeout\"}", stats);
                return ConnDone::Keep;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    respond_close(&mut stream, 400, "{\"error\": \"bad_content_length\"}", stats);
                    return ConnDone::Keep;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(_) => {
                    stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    return ConnDone::Keep;
                }
            }
        }

        let outcome = route(&head, &buf[head_end..total], shared, arena);
        let closing =
            shared.draining.load(Ordering::SeqCst) || shared.stop.load(Ordering::SeqCst);
        let response = if closing {
            http::render_response_with(outcome.status, &outcome.body, &[("Connection", "close")])
        } else {
            http::render_response(outcome.status, &outcome.body)
        };
        // The response write gets whatever budget the request has
        // left (floored so a served request always gets a beat).
        let budget = cfg
            .request_deadline
            .saturating_sub(clock.elapsed())
            .max(Duration::from_millis(50));
        let _ = stream.set_write_timeout(Some(budget));
        if let Err(e) = stream.write_all(&response) {
            match ConnError::from_io(&e) {
                ConnError::WriteTimeout => stats.write_timeouts.fetch_add(1, Ordering::Relaxed),
                ConnError::Io => stats.io_errors.fetch_add(1, Ordering::Relaxed),
            };
            return if outcome.die { ConnDone::KillWorker } else { ConnDone::Keep };
        }
        stats.completed.fetch_add(1, Ordering::Relaxed);
        if outcome.die {
            return ConnDone::KillWorker;
        }
        if !head.keep_alive || closing {
            return ConnDone::Keep;
        }
        buf.drain(..total);
    }
}

/// Writes a final error response (best effort, typed accounting) and
/// lets the connection close.
fn respond_close(stream: &mut TcpStream, status: u16, body: &str, stats: &Stats) {
    if let Err(e) = stream.write_all(&http::render_response(status, body)) {
        match ConnError::from_io(&e) {
            ConnError::WriteTimeout => stats.write_timeouts.fetch_add(1, Ordering::Relaxed),
            ConnError::Io => stats.io_errors.fetch_add(1, Ordering::Relaxed),
        };
    } else {
        stats.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// A routed response plus the debug kill-worker flag.
struct RouteOutcome {
    status: u16,
    body: String,
    die: bool,
}

fn route(head: &Head, body: &[u8], shared: &Shared, arena: &mut InferenceArena) -> RouteOutcome {
    let done = |status: u16, body: String| RouteOutcome { status, body, die: false };
    let bundle = shared.bundle();
    match (head.method.as_str(), head.target.as_str()) {
        ("GET", "/healthz") => done(200, "{\"status\": \"ok\"}".to_owned()),
        ("GET", "/v1/health") => done(200, shared.health().to_json()),
        ("GET", "/v1/models") => done(200, bundle.models_json()),
        ("POST", "/v1/report") => {
            let (status, body) = bundle.report_json(body, arena);
            done(status, body)
        }
        ("POST", "/v1/debug/panic") if shared.cfg.debug_routes => {
            panic!("debug route: injected handler panic")
        }
        ("POST", "/v1/debug/die") if shared.cfg.debug_routes => {
            RouteOutcome { status: 200, body: "{\"status\": \"dying\"}".to_owned(), die: true }
        }
        (_, "/healthz" | "/v1/health" | "/v1/models" | "/v1/report") => {
            done(405, "{\"error\": \"method_not_allowed\"}".to_owned())
        }
        _ => done(404, "{\"error\": \"not_found\"}".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_error_classifies_timeout_kinds() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let e = std::io::Error::new(kind, "stalled");
            assert_eq!(ConnError::from_io(&e), ConnError::WriteTimeout);
            assert_eq!(ConnError::from_io(&e).name(), "write_timeout");
        }
        let e = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone");
        assert_eq!(ConnError::from_io(&e), ConnError::Io);
    }

    #[test]
    fn health_json_is_deterministic_and_complete() {
        let snap = HealthSnapshot {
            accepted: 3,
            completed: 2,
            active: 1,
            shed_queue: 4,
            shed_ip_cap: 5,
            header_timeouts: 6,
            request_timeouts: 7,
            write_timeouts: 8,
            io_errors: 9,
            worker_panics: 0,
            workers_restarted: 0,
            reload_successes: 1,
            reload_failures: 0,
            reload_fallbacks: 0,
            breaker_open: false,
            generation: 2,
            draining: true,
        };
        let json = snap.to_json();
        assert_eq!(json, snap.to_json());
        assert_eq!(snap.shed(), 9);
        for key in [
            "\"accepted\": 3",
            "\"shed_queue\": 4",
            "\"shed_ip_cap\": 5",
            "\"header_timeouts\": 6",
            "\"breaker_open\": false",
            "\"generation\": 2",
            "\"draining\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn from_env_derives_header_deadline() {
        let cfg = ServeConfig::from_env();
        assert!(cfg.header_deadline <= cfg.request_deadline);
        assert!(cfg.header_deadline <= Duration::from_secs(2));
        assert!(!cfg.debug_routes);
    }
}
