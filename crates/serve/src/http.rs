//! A pure, panic-free HTTP/1.1 request parser.
//!
//! Exactly the subset the inference server speaks: a request line, up
//! to [`MAX_HEADERS`] headers, an optional `Content-Length` body. No
//! chunked encoding, no continuation lines, no obsolete folding. The
//! parser is total — any byte sequence maps to `Ok` or a structured
//! [`HttpError`], never a panic — because it doubles as the
//! conformance fuzz driver's target: `conformance::fuzz` feeds it 10k
//! seed-indexed mutants per campaign and asserts nothing escapes.
//!
//! Errors carry stable [`HttpError::name`]s; the fuzz histogram uses
//! them as its coverage proxy and the server maps them onto 400
//! responses.

/// Maximum number of headers a request may carry.
pub const MAX_HEADERS: usize = 64;

/// Maximum size of the head section (request line + headers +
/// terminator) the server will buffer.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Everything the server needs from a request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// Request method, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, verbatim (`/v1/report`).
    pub target: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 default
    /// close unless `Connection: keep-alive`).
    pub keep_alive: bool,
}

/// Every way a request head can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// No bytes at all.
    Empty,
    /// No `\r\n\r\n` head terminator within the buffered bytes.
    MissingTerminator,
    /// Head section larger than [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// Method token empty, overlong, or not ASCII-alphabetic.
    BadMethod,
    /// Target does not start with `/` or contains forbidden bytes.
    BadTarget,
    /// Version is neither `HTTP/1.1` nor `HTTP/1.0`.
    BadVersion,
    /// A header line has no `:` separator.
    BadHeaderLine,
    /// A header name contains bytes outside the token alphabet.
    BadHeaderName,
    /// `Content-Length` is not a plain decimal integer that fits a
    /// `usize`.
    BadContentLength,
    /// Two `Content-Length` headers disagree.
    ConflictingContentLength,
    /// More than [`MAX_HEADERS`] headers.
    TooManyHeaders,
}

impl HttpError {
    /// Stable lowercase class name (fuzz histogram key, 400-response
    /// error code).
    pub fn name(&self) -> &'static str {
        match self {
            HttpError::Empty => "empty",
            HttpError::MissingTerminator => "missing_terminator",
            HttpError::HeadTooLarge => "head_too_large",
            HttpError::BadRequestLine => "bad_request_line",
            HttpError::BadMethod => "bad_method",
            HttpError::BadTarget => "bad_target",
            HttpError::BadVersion => "bad_version",
            HttpError::BadHeaderLine => "bad_header_line",
            HttpError::BadHeaderName => "bad_header_name",
            HttpError::BadContentLength => "bad_content_length",
            HttpError::ConflictingContentLength => "conflicting_content_length",
            HttpError::TooManyHeaders => "too_many_headers",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Finds the `\r\n\r\n` head terminator, returning the offset just
/// past it.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Parses a head section (everything up to and including the
/// `\r\n\r\n` terminator is consumed from `buf`; trailing bytes are
/// ignored). Returns the parsed [`Head`] and the offset where the
/// body starts.
///
/// # Errors
///
/// A structured [`HttpError`]; never panics, whatever the input.
pub fn parse_head(buf: &[u8]) -> Result<(Head, usize), HttpError> {
    if buf.is_empty() {
        return Err(HttpError::Empty);
    }
    let head_end = find_head_end(buf).ok_or(if buf.len() > MAX_HEAD_BYTES {
        HttpError::HeadTooLarge
    } else {
        HttpError::MissingTerminator
    })?;
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    let head = &buf[..head_end - 4];
    let mut lines = head.split(|&b| b == b'\n').map(|l| l.strip_suffix(b"\r").unwrap_or(l));

    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(|&b| b == b' ');
    let method = parts.next().ok_or(HttpError::BadRequestLine)?;
    let target = parts.next().ok_or(HttpError::BadRequestLine)?;
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequestLine);
    }

    if method.is_empty() || method.len() > 16 || !method.iter().all(u8::is_ascii_uppercase) {
        return Err(HttpError::BadMethod);
    }
    if target.is_empty()
        || target[0] != b'/'
        || target.iter().any(|&b| b <= b' ' || b >= 0x7f)
    {
        return Err(HttpError::BadTarget);
    }
    let http11 = match version {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        _ => return Err(HttpError::BadVersion),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    let mut n_headers = 0usize;
    for line in lines {
        if line.is_empty() {
            // An empty header line before the terminator means a bare
            // `\n` split artifact of `\r\n\r\n` handling — the head
            // slice excludes the final terminator, so any empty line
            // here is a stray `\r\n` pair, i.e. a malformed head.
            return Err(HttpError::BadHeaderLine);
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::BadHeaderLine)?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return Err(HttpError::BadHeaderName);
        }
        let value = trim_ascii(&rest[1..]);
        if eq_ignore_case(name, b"content-length") {
            let parsed = parse_decimal(value).ok_or(HttpError::BadContentLength)?;
            match content_length {
                Some(prev) if prev != parsed => {
                    return Err(HttpError::ConflictingContentLength)
                }
                _ => content_length = Some(parsed),
            }
        } else if eq_ignore_case(name, b"connection") {
            if eq_ignore_case(value, b"close") {
                keep_alive = false;
            } else if eq_ignore_case(value, b"keep-alive") {
                keep_alive = true;
            }
        }
    }

    let head = Head {
        method: String::from_utf8_lossy(method).into_owned(),
        target: String::from_utf8_lossy(target).into_owned(),
        http11,
        content_length: content_length.unwrap_or(0),
        keep_alive,
    };
    Ok((head, head_end))
}

/// Parses a complete request (head + body) from one buffer — the fuzz
/// driver's entry point, and the one-shot path for tests.
///
/// # Errors
///
/// [`HttpError`] for a malformed head; a head whose declared
/// `Content-Length` exceeds the bytes present yields
/// [`HttpError::BadContentLength`] (a complete request was promised).
pub fn parse_request(buf: &[u8]) -> Result<(Head, &[u8]), HttpError> {
    let (head, body_start) = parse_head(buf)?;
    let body = &buf[body_start..];
    let len = head.content_length;
    if body.len() < len {
        return Err(HttpError::BadContentLength);
    }
    Ok((head, &body[..len]))
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.')
}

fn trim_ascii(mut v: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = v {
        v = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = v {
        v = rest;
    }
    v
}

fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.eq_ignore_ascii_case(b)
}

fn parse_decimal(v: &[u8]) -> Option<usize> {
    if v.is_empty() || v.len() > 19 || !v.iter().all(u8::is_ascii_digit) {
        return None;
    }
    let mut n = 0usize;
    for &b in v {
        n = n.checked_mul(10)?.checked_add((b - b'0') as usize)?;
    }
    Some(n)
}

/// Renders a response with deterministic headers (no `Date`, fixed
/// order) — byte-stable output is part of the serving contract.
pub fn render_response(status: u16, body: &str) -> Vec<u8> {
    render_response_with(status, body, &[])
}

/// [`render_response`] with extra headers inserted between
/// `Content-Length` and the terminator, in the order given. With no
/// extras the output is byte-identical to [`render_response`] — the
/// overload paths (`503` + `Retry-After`, drain's `Connection: close`)
/// ride this without disturbing any golden response bytes.
pub fn render_response_with(status: u16, body: &str, extra: &[(&str, &str)]) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut out = Vec::with_capacity(body.len() + 160);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        )
        .as_bytes(),
    );
    for (name, value) in extra {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(req: &str) -> Head {
        parse_request(req.as_bytes()).expect("parses").0
    }

    fn err(req: &[u8]) -> HttpError {
        parse_request(req).expect_err("rejects")
    }

    #[test]
    fn parses_minimal_get() {
        let head = ok("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/healthz");
        assert!(head.http11 && head.keep_alive);
        assert_eq!(head.content_length, 0);
    }

    #[test]
    fn parses_post_with_body() {
        let (head, body) =
            parse_request(b"POST /v1/report HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
                .expect("parses");
        assert_eq!(head.content_length, 5);
        assert_eq!(body, b"hello");
    }

    #[test]
    fn connection_semantics() {
        assert!(!ok("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!ok("GET / HTTP/1.0\r\nHost: x\r\n\r\n").keep_alive);
        assert!(ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn error_classes_are_distinct() {
        assert_eq!(err(b""), HttpError::Empty);
        assert_eq!(err(b"GET / HTTP/1.1\r\n"), HttpError::MissingTerminator);
        assert_eq!(err(b"GET /\r\n\r\n"), HttpError::BadRequestLine);
        assert_eq!(err(b"get / HTTP/1.1\r\n\r\n"), HttpError::BadMethod);
        assert_eq!(err(b"GET x HTTP/1.1\r\n\r\n"), HttpError::BadTarget);
        assert_eq!(err(b"GET / HTTP/2.0\r\n\r\n"), HttpError::BadVersion);
        assert_eq!(err(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"), HttpError::BadHeaderLine);
        assert_eq!(err(b"GET / HTTP/1.1\r\nb@d: x\r\n\r\n"), HttpError::BadHeaderName);
        assert_eq!(
            err(b"GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n"),
            HttpError::BadContentLength
        );
        assert_eq!(
            err(b"GET / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n"),
            HttpError::ConflictingContentLength
        );
    }

    #[test]
    fn too_many_headers() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            req.push_str(&format!("h{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert_eq!(err(req.as_bytes()), HttpError::TooManyHeaders);
    }

    #[test]
    fn short_body_is_bad_content_length() {
        assert_eq!(
            err(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            HttpError::BadContentLength
        );
    }

    #[test]
    fn never_panics_on_arbitrary_bytes() {
        // A few adversarial shapes; the fuzz campaign does this 10k
        // more times.
        for doc in [
            &b"\xff\xfe\xfd"[..],
            b"GET  /  HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\n: novalue\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n",
            b"\r\n\r\n",
            b"POST / HTTP/1.1\r\nConnection:\r\n\r\n",
        ] {
            let _ = parse_request(doc);
        }
    }

    #[test]
    fn response_rendering_is_deterministic() {
        let a = render_response(200, "{}");
        assert_eq!(
            a,
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}"
        );
    }

    #[test]
    fn extra_headers_render_in_order_and_empty_extras_match_plain() {
        assert_eq!(render_response_with(422, "{}", &[]), render_response(422, "{}"));
        let shed = render_response_with(
            503,
            "{\"error\": \"overloaded\"}",
            &[("Retry-After", "1"), ("Connection", "close")],
        );
        assert_eq!(
            shed,
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
              Content-Length: 23\r\nRetry-After: 1\r\nConnection: close\r\n\r\n\
              {\"error\": \"overloaded\"}"
                .as_slice()
        );
        let timeout = render_response(408, "{\"error\": \"request_timeout\"}");
        assert!(timeout.starts_with(b"HTTP/1.1 408 Request Timeout\r\n"));
    }
}
