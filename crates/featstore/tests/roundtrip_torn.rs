//! The feature-store record-format contracts, in the
//! `registry_torn.rs` discipline:
//!
//! - **bit-exact round-trip** — random CSR shards survive
//!   write → read → re-write with byte-identical files;
//! - **the torn-write ladder** — a write killed at *every* record
//!   boundary (and mid-record) reads as `Truncated`; flipped bytes as
//!   `ChecksumMismatch`; foreign or future files as `BadMagic` /
//!   `UnsupportedVersion`. No corruption mode ever decodes quietly.

use featstore::{
    fnv1a64, shard_file_name, FeatureStore, RowBuf, ShardEntry, ShardReader, ShardWriter,
    StoreManifest, HEADER_LEN,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("elev-fst-torn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A deterministic pseudo-random shard: `n_rows` rows over `n_cols`
/// columns, plus the record-boundary offsets `append_row` reported.
fn write_shard(
    dir: &Path,
    seed: u64,
    n_rows: usize,
    n_cols: u64,
) -> (PathBuf, Vec<u64>, Vec<RowBuf>) {
    let mut w = ShardWriter::create(dir, 0, n_cols, seed).expect("create");
    let mut boundaries = vec![HEADER_LEN as u64];
    let mut rows = Vec::new();
    for r in 0..n_rows {
        let mix = |i: u64| exec_mix(seed, r as u64 * 1_000 + i);
        let nnz = (mix(0) % 9) as usize;
        let mut indices: Vec<u32> = (0..nnz).map(|i| (mix(1 + i as u64) % n_cols) as u32).collect();
        indices.sort_unstable();
        indices.dedup();
        let values: Vec<f32> =
            (0..indices.len()).map(|i| f32::from_bits(0x3F00_0000 | (mix(100 + i as u64) as u32 & 0xFFFF))).collect();
        let row = RowBuf {
            athlete: r as u64,
            city: (mix(2) % 10) as u32,
            activity: (mix(3) % 4) as u32,
            indices,
            values,
        };
        boundaries
            .push(w.append_row(row.athlete, row.city, row.activity, &row.indices, &row.values).expect("append"));
        rows.push(row);
    }
    let meta = w.finish().expect("finish");
    (dir.join(meta.file), boundaries, rows)
}

/// Local copy of `exec::mix_seed` so the test stays dependency-light.
fn exec_mix(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn read_all(path: &Path) -> Result<Vec<RowBuf>, featstore::StoreError> {
    let mut r = ShardReader::open(path)?;
    let mut rows = Vec::new();
    let mut buf = RowBuf::default();
    while r.next_row(&mut buf)? {
        rows.push(buf.clone());
    }
    Ok(rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Round-trip every shard bit-exact: decoded rows match what was
    /// written, and re-encoding them reproduces the file byte for
    /// byte.
    #[test]
    fn shards_roundtrip_bit_exact(seed in 0u64..10_000, n_rows in 0usize..24) {
        let dir = TempDir::new(&format!("rt-{seed}-{n_rows}"));
        let (path, _, written) = write_shard(&dir.0, seed, n_rows, 64);
        let decoded = read_all(&path).expect("clean shard reads");
        prop_assert_eq!(&decoded, &written);

        // Re-encode: an independent writer fed the decoded rows must
        // produce byte-identical output (the format has exactly one
        // encoding per shard).
        let dir2 = TempDir::new(&format!("rt2-{seed}-{n_rows}"));
        let mut w = ShardWriter::create(&dir2.0, 0, 64, seed).expect("create");
        for row in &decoded {
            w.append_row(row.athlete, row.city, row.activity, &row.indices, &row.values)
                .expect("append");
        }
        let meta = w.finish().expect("finish");
        let a = std::fs::read(&path).expect("original bytes");
        let b = std::fs::read(dir2.0.join(meta.file)).expect("re-encoded bytes");
        prop_assert_eq!(a, b);
    }

    /// The torn-write ladder: truncate at every record boundary —
    /// where the file still looks superficially complete — and at
    /// every mid-record cut; each rung must read as `Truncated`.
    #[test]
    fn torn_write_ladder_reads_truncated(seed in 0u64..10_000) {
        let dir = TempDir::new(&format!("ladder-{seed}"));
        let (path, boundaries, _) = write_shard(&dir.0, seed, 6, 64);
        let original = std::fs::read(&path).expect("bytes");

        let mut cuts: Vec<usize> = boundaries.iter().map(|&b| b as usize).collect();
        // Mid-record and mid-header cuts ride along.
        cuts.extend(boundaries.iter().map(|&b| b as usize + 2));
        cuts.extend([0, 1, HEADER_LEN / 2, original.len() - 1]);
        for cut in cuts {
            prop_assert!(cut < original.len());
            std::fs::write(&path, &original[..cut]).expect("tear");
            let err = read_all(&path).expect_err("torn shard must not read clean");
            prop_assert_eq!(
                err.name(), "truncated",
                "cut at {}: got {:?}", cut, err
            );
        }
        std::fs::write(&path, &original).expect("restore");
        prop_assert!(read_all(&path).is_ok());
    }

    /// Same length, flipped byte: a distinct error class. Every byte
    /// region — header, record payload, record checksum, footer — is
    /// covered by some checksum.
    #[test]
    fn flipped_bytes_read_checksum_mismatch(seed in 0u64..10_000) {
        let dir = TempDir::new(&format!("flip-{seed}"));
        let (path, boundaries, _) = write_shard(&dir.0, seed, 5, 64);
        let original = std::fs::read(&path).expect("bytes");

        // One flip inside each region: header tail, each record, the
        // footer, and the final byte of the file.
        let mut flips: Vec<usize> = vec![HEADER_LEN - 1];
        flips.extend(boundaries.windows(2).map(|w| (w[0] as usize + w[1] as usize) / 2));
        flips.push(*boundaries.last().unwrap() as usize + 5);
        flips.push(original.len() - 1);
        for flip in flips {
            let mut bytes = original.clone();
            bytes[flip] ^= 0x10;
            std::fs::write(&path, &bytes).expect("flip");
            let err = read_all(&path).expect_err("corrupt shard must not read clean");
            prop_assert_eq!(
                err.name(), "checksum_mismatch",
                "flip at {}: got {:?}", flip, err
            );
        }
    }
}

#[test]
fn foreign_and_future_files_classify_distinctly() {
    let dir = TempDir::new("classes");
    let (path, _, _) = write_shard(&dir.0, 1, 3, 64);
    let original = std::fs::read(&path).expect("bytes");

    // Not a shard at all.
    std::fs::write(&path, b"<?xml version=\"1.0\"?><gpx></gpx>").expect("write");
    assert_eq!(ShardReader::open(&path).unwrap_err().name(), "bad_magic");

    // A future container version with an internally consistent header:
    // the version gate must fire, not the checksum.
    let mut future = original.clone();
    future[8..12].copy_from_slice(&2u32.to_le_bytes());
    let fnv = fnv1a64(&future[..HEADER_LEN - 8]);
    future[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&fnv.to_le_bytes());
    std::fs::write(&path, &future).expect("write");
    assert!(matches!(
        ShardReader::open(&path).unwrap_err(),
        featstore::StoreError::UnsupportedVersion { found: 2 }
    ));

    // Deleted outright.
    std::fs::remove_file(&path).expect("rm");
    assert_eq!(ShardReader::open(&path).unwrap_err().name(), "io");
}

#[test]
fn footer_pins_the_row_count() {
    // A shard whose footer promises more rows than it holds — e.g. a
    // concatenation accident — must classify as malformed, not read
    // short.
    let dir = TempDir::new("rowcount");
    let (path, boundaries, _) = write_shard(&dir.0, 2, 4, 64);
    let original = std::fs::read(&path).expect("bytes");

    // Drop record 2 (cut [b1, b2)) and splice header+rest together,
    // keeping the original footer.
    let (b1, b2) = (boundaries[1] as usize, boundaries[2] as usize);
    let mut spliced = original[..b1].to_vec();
    spliced.extend_from_slice(&original[b2..]);
    std::fs::write(&path, &spliced).expect("splice");
    let err = read_all(&path).expect_err("spliced shard must not read clean");
    // Either the row count or the whole-file checksum catches it —
    // both are content errors, never a quiet short read.
    assert!(
        matches!(err.name(), "malformed" | "checksum_mismatch"),
        "got {err:?}"
    );
}

#[test]
fn store_manifest_crosschecks_shard_headers() {
    let dir = TempDir::new("store");
    let (_, _, rows) = write_shard(&dir.0, 3, 4, 64);
    let manifest = StoreManifest {
        config: 3,
        n_cols: 64,
        shard_size: 8,
        athletes: 4,
        generation: 1,
        shards: vec![ShardEntry { index: 0, file: shard_file_name(0), rows: rows.len() as u64 }],
    };
    FeatureStore::publish_manifest(&dir.0, &manifest).expect("publish");
    let store = FeatureStore::open(&dir.0).expect("open");
    assert_eq!(store.rows(), rows.len() as u64);
    assert_eq!(store.reader(0).expect("reader").validate().expect("validates"), rows.len() as u64);

    // A manifest claiming a different config must refuse the shard.
    let mut wrong = manifest.clone();
    wrong.config = 999;
    FeatureStore::publish_manifest(&dir.0, &wrong).expect("publish");
    let store = FeatureStore::open(&dir.0).expect("open");
    assert_eq!(store.reader(0).unwrap_err().name(), "malformed");
}
