//! On-disk columnar feature store: append-only CSR shards.
//!
//! The scale experiments featurize millions of tracks; featurization
//! is by far the most expensive stage, so it is computed **once** and
//! every sweep streams the result from disk. The container follows the
//! `.elevmdl` framing discipline (`serve::registry`): little-endian,
//! length-prefixed, FNV-1a-64 checksummed, with every corruption mode
//! mapped onto a distinct structured error.
//!
//! # Shard layout
//!
//! One shard file (`shard-NNNNN.fst`) holds the sparse feature rows of
//! one population shard, in ascending athlete order:
//!
//! ```text
//! header   MAGIC(8) | version u32 | shard_index u64 | n_cols u64
//!          | config u64 | fnv u64 over the preceding 36 bytes
//! record*  len u32 | payload | fnv u64 over payload
//!          payload = tag u32 (ROW) | athlete u64 | city u32
//!                  | activity u32 | nnz u32 | indices nnz×u32
//!                  | values nnz×f32
//! footer   len u32 | payload | fnv u64 over payload
//!          payload = tag u32 (FOOTER) | rows u64
//!                  | fnv u64 over every preceding file byte
//! ```
//!
//! The footer makes truncation at a *record boundary* detectable (the
//! file would otherwise just look shorter), and its whole-file
//! checksum catches corruption in bytes a lazy reader skipped.
//!
//! # Reading
//!
//! [`ShardReader`] streams records with positioned (`pread`-style)
//! reads into caller-owned scratch ([`RowBuf`]) — bounded memory, zero
//! steady-state allocations, no interior seek state shared between
//! readers of the same file. Checksums are verified **before** any
//! length field beyond the fixed header is trusted, mirroring the
//! registry's decode order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Shard files start with these bytes.
pub const MAGIC: &[u8; 8] = b"ELEVFST\x01";

/// Container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed shard header (magic + version +
/// shard index + columns + config fingerprint + header checksum).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// Store manifest file name, written last on publish.
pub const MANIFEST: &str = "store.txt";

const TAG_ROW: u32 = 1;
const TAG_FOOTER: u32 = 2;

/// FNV-1a-64 over `bytes` — the store's integrity checksum (corruption
/// detection, not tampering).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Continues an FNV-1a-64 stream from state `h` — the running
/// whole-file checksum the framed containers (shards and the IVF
/// sidecars) maintain record by record.
pub fn fnv1a64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything that can go wrong reading or writing a store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem error (message carries the OS detail).
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The file ends before a record (or the footer) it promised.
    Truncated {
        /// Byte offset where the reader stopped.
        offset: usize,
        /// Bytes the next field needed.
        needed: usize,
        /// Actual file length.
        len: usize,
    },
    /// A stored checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// A record parsed but its content is invalid (unknown tag, index
    /// out of range, row count drift, trailing bytes...).
    Malformed(String),
}

impl StoreError {
    /// Stable lowercase class name for tests and logs.
    pub fn name(&self) -> &'static str {
        match self {
            StoreError::Io(_) => "io",
            StoreError::BadMagic => "bad_magic",
            StoreError::UnsupportedVersion { .. } => "unsupported_version",
            StoreError::Truncated { .. } => "truncated",
            StoreError::ChecksumMismatch { .. } => "checksum_mismatch",
            StoreError::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::BadMagic => f.write_str("not a feature-store shard (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported shard version {found} (expected {FORMAT_VERSION})")
            }
            StoreError::Truncated { offset, needed, len } => {
                write!(f, "truncated at offset {offset}: needed {needed} more bytes of {len}")
            }
            StoreError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            StoreError::Malformed(m) => write!(f, "malformed shard: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// Canonical file name of shard `index`.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.fst")
}

/// Writes `bytes` to `path` atomically: hidden temp sibling, fsync,
/// rename into place, directory fsync — the crash-safe publish
/// discipline every manifest in the workspace follows.
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .ok_or_else(|| StoreError::Io(format!("{} has no parent directory", path.display())))?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| StoreError::Io(format!("{} has no file name", path.display())))?;
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut f = File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

// ---- writing -----------------------------------------------------------

/// Append-only writer for one shard file.
///
/// Records are buffered, checksummed, and written in order; nothing is
/// visible to readers until [`finish`](Self::finish) writes the
/// footer, fsyncs, and atomically renames the temp file into place —
/// the registry's crash-safe publish discipline.
#[derive(Debug)]
pub struct ShardWriter {
    file: std::io::BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
    n_cols: u64,
    rows: u64,
    offset: u64,
    content_fnv: u64,
}

impl ShardWriter {
    /// Creates the shard file `shard_file_name(index)` under `dir`
    /// (via a hidden temp name until [`finish`](Self::finish)).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn create(dir: &Path, index: usize, n_cols: u64, config: u64) -> Result<Self, StoreError> {
        let path = dir.join(shard_file_name(index));
        let tmp = dir.join(format!(".{}.tmp", shard_file_name(index)));
        let file = File::create(&tmp).map_err(io_err)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(index as u64).to_le_bytes());
        header.extend_from_slice(&n_cols.to_le_bytes());
        header.extend_from_slice(&config.to_le_bytes());
        let fnv = fnv1a64(&header);
        header.extend_from_slice(&fnv.to_le_bytes());
        let mut w = Self {
            file: std::io::BufWriter::new(file),
            tmp,
            path,
            n_cols,
            rows: 0,
            offset: 0,
            content_fnv: 0xcbf2_9ce4_8422_2325,
        };
        w.write_raw(&header)?;
        Ok(w)
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file.write_all(bytes).map_err(io_err)?;
        self.content_fnv = fnv1a64_continue(self.content_fnv, bytes);
        self.offset += bytes.len() as u64;
        Ok(())
    }

    fn write_record(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut rec = Vec::with_capacity(4 + payload.len() + 8);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        self.write_raw(&rec)
    }

    /// Appends one sparse feature row.
    ///
    /// Returns the byte offset just past the appended record (the
    /// record boundaries, which the torn-write tests cut at).
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if `indices`/`values` disagree in
    /// length or an index is out of column range; [`StoreError::Io`]
    /// on write failure.
    pub fn append_row(
        &mut self,
        athlete: u64,
        city: u32,
        activity: u32,
        indices: &[u32],
        values: &[f32],
    ) -> Result<u64, StoreError> {
        if indices.len() != values.len() {
            return Err(StoreError::Malformed(format!(
                "row has {} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        if let Some(&bad) = indices.iter().find(|&&i| u64::from(i) >= self.n_cols) {
            return Err(StoreError::Malformed(format!(
                "index {bad} out of range for {} columns",
                self.n_cols
            )));
        }
        let mut p = Vec::with_capacity(4 + 8 + 4 + 4 + 4 + indices.len() * 8);
        p.extend_from_slice(&TAG_ROW.to_le_bytes());
        p.extend_from_slice(&athlete.to_le_bytes());
        p.extend_from_slice(&city.to_le_bytes());
        p.extend_from_slice(&activity.to_le_bytes());
        p.extend_from_slice(&(indices.len() as u32).to_le_bytes());
        for &i in indices {
            p.extend_from_slice(&i.to_le_bytes());
        }
        for &v in values {
            p.extend_from_slice(&v.to_le_bytes());
        }
        self.write_record(&p)?;
        self.rows += 1;
        Ok(self.offset)
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Writes the footer, fsyncs, and atomically publishes the file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write, sync, or rename failure.
    pub fn finish(mut self) -> Result<ShardMeta, StoreError> {
        let mut p = Vec::with_capacity(4 + 8 + 8);
        p.extend_from_slice(&TAG_FOOTER.to_le_bytes());
        p.extend_from_slice(&self.rows.to_le_bytes());
        p.extend_from_slice(&self.content_fnv.to_le_bytes());
        self.write_record(&p)?;
        self.file.flush().map_err(io_err)?;
        self.file.get_ref().sync_all().map_err(io_err)?;
        std::fs::rename(&self.tmp, &self.path).map_err(io_err)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(ShardMeta {
            file: self
                .path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            rows: self.rows,
            bytes: self.offset,
        })
    }
}

/// Summary of a published shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// File name under the store directory.
    pub file: String,
    /// Feature rows in the shard.
    pub rows: u64,
    /// Total file bytes (including the footer).
    pub bytes: u64,
}

// ---- reading -----------------------------------------------------------

/// One decoded feature row; reused across [`ShardReader::next_row`]
/// calls so steady-state reading allocates nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowBuf {
    /// Global athlete id the row belongs to.
    pub athlete: u64,
    /// Home-city label (index into the population's city list).
    pub city: u32,
    /// Activity index within the athlete's stream.
    pub activity: u32,
    /// Sorted feature indices.
    pub indices: Vec<u32>,
    /// Feature values, parallel to `indices`.
    pub values: Vec<f32>,
}

/// Streaming reader over one shard file using positioned reads.
#[derive(Debug)]
pub struct ShardReader {
    file: File,
    len: u64,
    offset: u64,
    /// Header fields.
    shard_index: u64,
    n_cols: u64,
    config: u64,
    rows_seen: u64,
    done: bool,
    content_fnv: u64,
    scratch: Vec<u8>,
}

impl ShardReader {
    /// Opens a shard file and validates its header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::BadMagic`] /
    /// [`StoreError::UnsupportedVersion`] /
    /// [`StoreError::Truncated`] / [`StoreError::ChecksumMismatch`].
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path).map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        let mut header = [0u8; HEADER_LEN];
        if (len as usize) < HEADER_LEN {
            // Even a torn header must classify: magic first, then size.
            let mut prefix = vec![0u8; len as usize];
            read_exact_at(&file, &mut prefix, 0)?;
            if len >= 8 && &prefix[..8] != MAGIC {
                return Err(StoreError::BadMagic);
            }
            return Err(StoreError::Truncated {
                offset: 0,
                needed: HEADER_LEN - len as usize,
                len: len as usize,
            });
        }
        read_exact_at(&file, &mut header, 0)?;
        if &header[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let stored = u64::from_le_bytes(header[HEADER_LEN - 8..].try_into().expect("8 bytes"));
        let computed = fnv1a64(&header[..HEADER_LEN - 8]);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        Ok(Self {
            file,
            len,
            offset: HEADER_LEN as u64,
            shard_index: u64::from_le_bytes(header[12..20].try_into().expect("8 bytes")),
            n_cols: u64::from_le_bytes(header[20..28].try_into().expect("8 bytes")),
            config: u64::from_le_bytes(header[28..36].try_into().expect("8 bytes")),
            rows_seen: 0,
            done: false,
            content_fnv: fnv1a64(&header),
            scratch: Vec::new(),
        })
    }

    /// Shard index recorded in the header.
    pub fn shard_index(&self) -> u64 {
        self.shard_index
    }

    /// Feature-space width recorded in the header.
    pub fn n_cols(&self) -> u64 {
        self.n_cols
    }

    /// Population-config fingerprint recorded in the header.
    pub fn config(&self) -> u64 {
        self.config
    }

    fn truncated(&self, needed: usize) -> StoreError {
        StoreError::Truncated {
            offset: self.offset as usize,
            needed,
            len: self.len as usize,
        }
    }

    /// Decodes the next row into `row`, returning `false` once the
    /// footer has been reached and verified.
    ///
    /// # Errors
    ///
    /// Every corruption mode maps onto a distinct [`StoreError`]: a
    /// cut anywhere — mid-record or exactly at a record boundary
    /// (missing footer) — reads as [`StoreError::Truncated`]; flipped
    /// bytes as [`StoreError::ChecksumMismatch`]; structural nonsense
    /// as [`StoreError::Malformed`].
    pub fn next_row(&mut self, row: &mut RowBuf) -> Result<bool, StoreError> {
        if self.done {
            return Ok(false);
        }
        let remaining = (self.len - self.offset) as usize;
        if remaining == 0 {
            // Clean EOF without a footer: a publish killed exactly at
            // a record boundary. Still truncation.
            return Err(self.truncated(4));
        }
        if remaining < 4 {
            return Err(self.truncated(4 - remaining));
        }
        let mut len4 = [0u8; 4];
        read_exact_at(&self.file, &mut len4, self.offset)?;
        let payload_len = u32::from_le_bytes(len4) as usize;
        if remaining < 4 + payload_len + 8 {
            return Err(self.truncated(4 + payload_len + 8 - remaining));
        }
        // Read payload + trailing checksum, verify before decoding any
        // interior length field.
        self.scratch.clear();
        self.scratch.resize(payload_len + 8, 0);
        read_exact_at(&self.file, &mut self.scratch, self.offset + 4)?;
        let (payload, fnv8) = self.scratch.split_at(payload_len);
        let stored = u64::from_le_bytes(fnv8.try_into().expect("8 bytes"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        let pre_record_fnv = self.content_fnv;
        self.content_fnv = fnv1a64_continue(self.content_fnv, &len4);
        self.content_fnv = fnv1a64_continue(self.content_fnv, &self.scratch);
        self.offset += 4 + self.scratch.len() as u64;

        let mut d = PayloadDec { buf: payload, pos: 0 };
        match d.u32()? {
            TAG_ROW => {
                decode_row_fields(&mut d, self.n_cols, row)?;
                self.rows_seen += 1;
                Ok(true)
            }
            TAG_FOOTER => {
                let rows = d.u64()?;
                let whole = d.u64()?;
                d.end()?;
                if rows != self.rows_seen {
                    return Err(StoreError::Malformed(format!(
                        "footer promises {rows} rows, shard contains {}",
                        self.rows_seen
                    )));
                }
                if whole != pre_record_fnv {
                    return Err(StoreError::ChecksumMismatch {
                        stored: whole,
                        computed: pre_record_fnv,
                    });
                }
                if self.offset != self.len {
                    return Err(StoreError::Malformed(format!(
                        "{} trailing bytes after footer",
                        self.len - self.offset
                    )));
                }
                self.done = true;
                Ok(false)
            }
            tag => Err(StoreError::Malformed(format!("unknown record tag {tag}"))),
        }
    }

    /// Byte offset of the next record the streaming cursor will
    /// decode — captured *before* a [`next_row`](Self::next_row) call,
    /// it addresses that row for later [`read_row_at`](Self::read_row_at)
    /// access (the handle the IVF posting lists store).
    pub fn stream_offset(&self) -> u64 {
        self.offset
    }

    /// Decodes the single row record starting at `offset` — a value a
    /// prior [`stream_offset`](Self::stream_offset) reported — without
    /// disturbing the streaming cursor. The record checksum is
    /// verified before any interior field is trusted, exactly as in
    /// streaming reads. Returns the offset just past the record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] / [`StoreError::ChecksumMismatch`] on
    /// torn or corrupt records; [`StoreError::Malformed`] when the
    /// record at `offset` is not a row.
    pub fn read_row_at(&mut self, offset: u64, row: &mut RowBuf) -> Result<u64, StoreError> {
        let remaining = self.len.saturating_sub(offset) as usize;
        if remaining < 4 {
            return Err(StoreError::Truncated {
                offset: offset as usize,
                needed: 4 - remaining,
                len: self.len as usize,
            });
        }
        let mut len4 = [0u8; 4];
        read_exact_at(&self.file, &mut len4, offset)?;
        let payload_len = u32::from_le_bytes(len4) as usize;
        if remaining < 4 + payload_len + 8 {
            return Err(StoreError::Truncated {
                offset: offset as usize,
                needed: 4 + payload_len + 8 - remaining,
                len: self.len as usize,
            });
        }
        self.scratch.clear();
        self.scratch.resize(payload_len + 8, 0);
        read_exact_at(&self.file, &mut self.scratch, offset + 4)?;
        let (payload, fnv8) = self.scratch.split_at(payload_len);
        let stored = u64::from_le_bytes(fnv8.try_into().expect("8 bytes"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        let mut d = PayloadDec { buf: payload, pos: 0 };
        let tag = d.u32()?;
        if tag != TAG_ROW {
            return Err(StoreError::Malformed(format!(
                "record at offset {offset} has tag {tag}, not a row"
            )));
        }
        decode_row_fields(&mut d, self.n_cols, row)?;
        Ok(offset + 4 + payload_len as u64 + 8)
    }

    /// Reads (and integrity-checks) the whole shard, returning the row
    /// count — the cheap full-file validation pass.
    ///
    /// # Errors
    ///
    /// Propagates any [`StoreError`] from [`next_row`](Self::next_row).
    pub fn validate(mut self) -> Result<u64, StoreError> {
        let mut row = RowBuf::default();
        while self.next_row(&mut row)? {}
        Ok(self.rows_seen)
    }
}

/// Decodes the row fields following a `TAG_ROW` tag into `row`.
fn decode_row_fields(
    d: &mut PayloadDec<'_>,
    n_cols: u64,
    row: &mut RowBuf,
) -> Result<(), StoreError> {
    row.athlete = d.u64()?;
    row.city = d.u32()?;
    row.activity = d.u32()?;
    let nnz = d.u32()? as usize;
    row.indices.clear();
    row.values.clear();
    for _ in 0..nnz {
        let i = d.u32()?;
        if u64::from(i) >= n_cols {
            return Err(StoreError::Malformed(format!(
                "index {i} out of range for {n_cols} columns"
            )));
        }
        row.indices.push(i);
    }
    for _ in 0..nnz {
        row.values.push(f32::from_bits(d.u32()?));
    }
    d.end()
}

/// Positioned read: `pread` on unix, seek+read elsewhere.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset).map_err(io_err)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        f.read_exact(buf).map_err(io_err)
    }
}

struct PayloadDec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl PayloadDec<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Malformed(format!(
                "payload ends at {} of a {n}-byte field",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn end(&self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---- the store directory ----------------------------------------------

/// One shard entry in the store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard index.
    pub index: usize,
    /// File name under the store directory.
    pub file: String,
    /// Feature rows in the shard.
    pub rows: u64,
}

/// The parsed store manifest (`store.txt`), written last on publish so
/// a complete manifest implies complete shard files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Population-config fingerprint the store was built from.
    pub config: u64,
    /// Feature-space width shared by every shard.
    pub n_cols: u64,
    /// Athletes per shard.
    pub shard_size: u64,
    /// Total athletes featurized.
    pub athletes: u64,
    /// Publish generation: 1 on first publish, bumped by every
    /// [`FeatureStore::append_shards`] — derived sidecars (e.g. the
    /// IVF index) record which generation they cover.
    pub generation: u64,
    /// Shard entries in ascending index order.
    pub shards: Vec<ShardEntry>,
}

impl StoreManifest {
    /// Renders the manifest text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("elevfst v1\n");
        out.push_str(&format!("config {:016x}\n", self.config));
        out.push_str(&format!("n_cols {}\n", self.n_cols));
        out.push_str(&format!("shard_size {}\n", self.shard_size));
        out.push_str(&format!("athletes {}\n", self.athletes));
        out.push_str(&format!("generation {}\n", self.generation));
        out.push_str(&format!("shards {}\n", self.shards.len()));
        for s in &self.shards {
            out.push_str(&format!("{} {} {}\n", s.index, s.file, s.rows));
        }
        out
    }

    /// Parses manifest text. The `generation` line is optional (stores
    /// published before appends existed read as generation 1).
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] on any structural defect.
    pub fn parse(text: &str) -> Result<Self, StoreError> {
        let mut lines = text.lines().peekable();
        let bad = |m: &str| StoreError::Malformed(format!("manifest: {m}"));
        if lines.next() != Some("elevfst v1") {
            return Err(bad("missing or unsupported header line"));
        }
        fn field<'a>(
            lines: &mut impl Iterator<Item = &'a str>,
            name: &str,
        ) -> Result<String, StoreError> {
            let bad = |m: &str| StoreError::Malformed(format!("manifest: {m}"));
            let line = lines.next().ok_or_else(|| bad(&format!("missing {name}")))?;
            line.strip_prefix(&format!("{name} "))
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("expected `{name} ...`, got `{line}`")))
        }
        let config = u64::from_str_radix(&field(&mut lines, "config")?, 16)
            .map_err(|_| bad("config is not hex"))?;
        let n_cols = field(&mut lines, "n_cols")?.parse().map_err(|_| bad("n_cols"))?;
        let shard_size =
            field(&mut lines, "shard_size")?.parse().map_err(|_| bad("shard_size"))?;
        let athletes = field(&mut lines, "athletes")?.parse().map_err(|_| bad("athletes"))?;
        let generation = if lines.peek().is_some_and(|l| l.starts_with("generation ")) {
            field(&mut lines, "generation")?.parse().map_err(|_| bad("generation"))?
        } else {
            1
        };
        let count: usize = field(&mut lines, "shards")?.parse().map_err(|_| bad("shards"))?;
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| bad("manifest ends mid shard list"))?;
            let mut parts = line.split_whitespace();
            let index = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(&format!("bad shard line `{line}`")))?;
            let file = parts
                .next()
                .ok_or_else(|| bad(&format!("bad shard line `{line}`")))?
                .to_owned();
            let rows = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(&format!("bad shard line `{line}`")))?;
            if parts.next().is_some() {
                return Err(bad(&format!("trailing fields in `{line}`")));
            }
            shards.push(ShardEntry { index, file, rows });
        }
        if shards.iter().enumerate().any(|(i, s)| s.index != i) {
            return Err(bad("shard indices are not dense ascending"));
        }
        Ok(Self { config, n_cols, shard_size, athletes, generation, shards })
    }
}

/// An opened feature store: a directory of shard files plus the parsed
/// manifest.
#[derive(Debug, Clone)]
pub struct FeatureStore {
    dir: PathBuf,
    manifest: StoreManifest,
}

impl FeatureStore {
    /// Opens a published store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the manifest is unreadable,
    /// [`StoreError::Malformed`] if it does not parse.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(dir.join(MANIFEST)).map_err(io_err)?;
        Ok(Self { dir: dir.to_path_buf(), manifest: StoreManifest::parse(&text)? })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total feature rows across all shards.
    pub fn rows(&self) -> u64 {
        self.manifest.shards.iter().map(|s| s.rows).sum()
    }

    /// Opens a streaming reader over shard `index` and cross-checks
    /// its header against the manifest.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from [`ShardReader::open`], plus
    /// [`StoreError::Malformed`] when the header disagrees with the
    /// manifest.
    pub fn reader(&self, index: usize) -> Result<ShardReader, StoreError> {
        let entry = self
            .manifest
            .shards
            .get(index)
            .ok_or_else(|| StoreError::Malformed(format!("no shard {index} in manifest")))?;
        let r = ShardReader::open(&self.dir.join(&entry.file))?;
        if r.shard_index() != index as u64
            || r.n_cols() != self.manifest.n_cols
            || r.config() != self.manifest.config
        {
            return Err(StoreError::Malformed(format!(
                "shard {index} header disagrees with manifest (index {}, n_cols {}, config {:016x})",
                r.shard_index(),
                r.n_cols(),
                r.config()
            )));
        }
        Ok(r)
    }

    /// Publishes `manifest` under `dir` (atomic write, manifest last).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn publish_manifest(dir: &Path, manifest: &StoreManifest) -> Result<(), StoreError> {
        atomic_write(&dir.join(MANIFEST), manifest.render().as_bytes())
    }

    /// Extends a published store with freshly written shards — the
    /// incremental-growth path. The vocabulary (and hence `n_cols`) is
    /// frozen, so appends only add rows: `config` must match the
    /// manifest fingerprint, every new shard must continue the dense
    /// ascending index sequence and carry a matching header, and the
    /// updated manifest (generation bumped, `athletes` raised) is
    /// published atomically last.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] on a config mismatch, a shrinking
    /// athlete count, or a shard whose name/header breaks the
    /// sequence; any [`StoreError`] from reading a new shard's header
    /// or publishing the manifest.
    pub fn append_shards(
        &mut self,
        config: u64,
        athletes: u64,
        metas: &[ShardMeta],
    ) -> Result<(), StoreError> {
        if config != self.manifest.config {
            return Err(StoreError::Malformed(format!(
                "append config {config:016x} does not match store config {:016x}",
                self.manifest.config
            )));
        }
        if athletes < self.manifest.athletes {
            return Err(StoreError::Malformed(format!(
                "append would shrink the store: {} -> {athletes} athletes",
                self.manifest.athletes
            )));
        }
        let mut shards = self.manifest.shards.clone();
        for m in metas {
            let index = shards.len();
            if m.file != shard_file_name(index) {
                return Err(StoreError::Malformed(format!(
                    "appended shard `{}` does not continue the sequence at index {index}",
                    m.file
                )));
            }
            let r = ShardReader::open(&self.dir.join(&m.file))?;
            if r.shard_index() != index as u64
                || r.n_cols() != self.manifest.n_cols
                || r.config() != self.manifest.config
            {
                return Err(StoreError::Malformed(format!(
                    "appended shard {index} header disagrees with manifest \
                     (index {}, n_cols {}, config {:016x})",
                    r.shard_index(),
                    r.n_cols(),
                    r.config()
                )));
            }
            shards.push(ShardEntry { index, file: m.file.clone(), rows: m.rows });
        }
        let manifest = StoreManifest {
            athletes,
            generation: self.manifest.generation + 1,
            shards,
            ..self.manifest.clone()
        };
        Self::publish_manifest(&self.dir, &manifest)?;
        self.manifest = manifest;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("elev-fst-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = temp_dir("rt");
        let mut w = ShardWriter::create(&dir, 0, 100, 0xABCD).expect("create");
        w.append_row(7, 3, 0, &[1, 5, 99], &[1.0, 2.5, -3.0]).expect("row");
        w.append_row(8, 4, 1, &[], &[]).expect("empty row");
        let meta = w.finish().expect("finish");
        assert_eq!(meta.rows, 2);

        let mut r = ShardReader::open(&dir.join(&meta.file)).expect("open");
        assert_eq!((r.shard_index(), r.n_cols(), r.config()), (0, 100, 0xABCD));
        let mut row = RowBuf::default();
        assert!(r.next_row(&mut row).expect("row 0"));
        assert_eq!((row.athlete, row.city, row.activity), (7, 3, 0));
        assert_eq!(row.indices, vec![1, 5, 99]);
        assert_eq!(row.values, vec![1.0, 2.5, -3.0]);
        assert!(r.next_row(&mut row).expect("row 1"));
        assert_eq!(row.indices, Vec::<u32>::new());
        assert!(!r.next_row(&mut row).expect("footer"));
        assert!(!r.next_row(&mut row).expect("idempotent EOF"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_rejects_bad_rows() {
        let dir = temp_dir("bad");
        let mut w = ShardWriter::create(&dir, 0, 10, 0).expect("create");
        assert_eq!(w.append_row(0, 0, 0, &[1], &[]).unwrap_err().name(), "malformed");
        assert_eq!(w.append_row(0, 0, 0, &[10], &[1.0]).unwrap_err().name(), "malformed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_rejects() {
        let m = StoreManifest {
            config: 0xDEAD_BEEF,
            n_cols: 512,
            shard_size: 64,
            athletes: 100,
            generation: 3,
            shards: vec![
                ShardEntry { index: 0, file: shard_file_name(0), rows: 128 },
                ShardEntry { index: 1, file: shard_file_name(1), rows: 70 },
            ],
        };
        let parsed = StoreManifest::parse(&m.render()).expect("parses");
        assert_eq!(parsed, m);
        assert!(StoreManifest::parse("elevfst v2\n").is_err());
        assert!(StoreManifest::parse("").is_err());
        let mut swapped = m.clone();
        swapped.shards.swap(0, 1);
        assert!(StoreManifest::parse(&swapped.render()).is_err(), "non-dense indices");

        // A pre-generation manifest (no `generation` line) parses as
        // generation 1.
        let legacy = m.render().lines().filter(|l| !l.starts_with("generation ")).fold(
            String::new(),
            |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            },
        );
        let parsed = StoreManifest::parse(&legacy).expect("legacy parses");
        assert_eq!(parsed.generation, 1);
        assert_eq!(parsed.shards, m.shards);
    }

    #[test]
    fn positioned_row_reads_match_streaming() {
        let dir = temp_dir("pread");
        let mut w = ShardWriter::create(&dir, 0, 100, 0xABCD).expect("create");
        w.append_row(7, 3, 0, &[1, 5, 99], &[1.0, 2.5, -3.0]).expect("row");
        w.append_row(8, 4, 1, &[2], &[0.5]).expect("row");
        let meta = w.finish().expect("finish");

        let mut r = ShardReader::open(&dir.join(&meta.file)).expect("open");
        let mut offsets = Vec::new();
        let mut streamed = Vec::new();
        let mut row = RowBuf::default();
        loop {
            let at = r.stream_offset();
            if !r.next_row(&mut row).expect("row") {
                break;
            }
            offsets.push(at);
            streamed.push(row.clone());
        }
        for (at, want) in offsets.iter().zip(&streamed) {
            let next = r.read_row_at(*at, &mut row).expect("pread row");
            assert_eq!(&row, want);
            assert!(next > *at);
        }
        // Streaming state survives interleaved positioned reads: a
        // fresh reader mixing both still verifies the footer.
        let mut r = ShardReader::open(&dir.join(&meta.file)).expect("open");
        assert!(r.next_row(&mut row).expect("row 0"));
        r.read_row_at(offsets[1], &mut row).expect("pread mid-stream");
        assert!(r.next_row(&mut row).expect("row 1"));
        assert!(!r.next_row(&mut row).expect("footer verifies"));

        // A positioned read aimed at the footer refuses to decode it
        // as a row; one aimed past the end classifies as truncation.
        let eof = r.stream_offset();
        let mut r = ShardReader::open(&dir.join(&meta.file)).expect("open");
        let footer_at = r.read_row_at(offsets[1], &mut row).expect("last row");
        assert_eq!(r.read_row_at(footer_at, &mut row).unwrap_err().name(), "malformed");
        assert_eq!(r.read_row_at(eof + 1_000, &mut row).unwrap_err().name(), "truncated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_shards_extends_and_guards() {
        let dir = temp_dir("append");
        let mut w = ShardWriter::create(&dir, 0, 10, 0xC0FFEE).expect("create");
        w.append_row(0, 0, 0, &[1], &[1.0]).expect("row");
        let m0 = w.finish().expect("finish");
        let manifest = StoreManifest {
            config: 0xC0FFEE,
            n_cols: 10,
            shard_size: 1,
            athletes: 1,
            generation: 1,
            shards: vec![ShardEntry { index: 0, file: m0.file.clone(), rows: m0.rows }],
        };
        FeatureStore::publish_manifest(&dir, &manifest).expect("publish");
        let mut store = FeatureStore::open(&dir).expect("open");

        let mut w = ShardWriter::create(&dir, 1, 10, 0xC0FFEE).expect("create");
        w.append_row(1, 1, 0, &[2], &[2.0]).expect("row");
        let m1 = w.finish().expect("finish");

        // Wrong config: rejected before anything is touched.
        assert_eq!(
            store.append_shards(0xBAD, 2, std::slice::from_ref(&m1)).unwrap_err().name(),
            "malformed"
        );
        // Shrinking athlete count: rejected.
        assert_eq!(
            store.append_shards(0xC0FFEE, 0, std::slice::from_ref(&m1)).unwrap_err().name(),
            "malformed"
        );
        store.append_shards(0xC0FFEE, 2, std::slice::from_ref(&m1)).expect("append");
        assert_eq!(store.manifest().generation, 2);
        assert_eq!(store.manifest().athletes, 2);
        assert_eq!(store.manifest().shards.len(), 2);

        // The published manifest agrees with the in-memory one.
        let reopened = FeatureStore::open(&dir).expect("reopen");
        assert_eq!(reopened.manifest(), store.manifest());
        assert_eq!(reopened.reader(1).expect("reader").validate().expect("valid"), 1);

        // Re-appending the same shard breaks the dense sequence.
        assert_eq!(
            store.append_shards(0xC0FFEE, 3, std::slice::from_ref(&m1)).unwrap_err().name(),
            "malformed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
