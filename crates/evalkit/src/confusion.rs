//! Confusion matrices and derived metrics.

use serde::{Deserialize, Serialize};

/// A `C × C` confusion matrix; `m[true][pred]` counts samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, inputs are empty, `n_classes` is zero,
    /// or any label/prediction is out of range.
    pub fn from_predictions(y_true: &[u32], y_pred: &[u32], n_classes: usize) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "one prediction per truth");
        assert!(!y_true.is_empty(), "cannot score zero samples");
        assert!(n_classes > 0, "need at least one class");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            assert!((t as usize) < n_classes, "true label {t} out of range");
            assert!((p as usize) < n_classes, "prediction {p} out of range");
            counts[t as usize][p as usize] += 1;
        }
        Self { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total number of scored samples.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Raw count `m[true][pred]`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth][pred]
    }

    /// Multiclass accuracy: fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / self.total() as f64
    }

    fn binary_counts(&self, class: usize) -> (usize, usize, usize, usize) {
        // (tp, fp, fn, tn) treating `class` as positive.
        let tp = self.counts[class][class];
        let fp: usize =
            (0..self.n_classes()).filter(|&t| t != class).map(|t| self.counts[t][class]).sum();
        let fn_: usize =
            (0..self.n_classes()).filter(|&p| p != class).map(|p| self.counts[class][p]).sum();
        let tn = self.total() - tp - fp - fn_;
        (tp, fp, fn_, tn)
    }

    /// One-vs-rest binary accuracy `(TP + TN) / N`, macro-averaged —
    /// the paper's reported "accuracy" (see crate docs).
    pub fn ovr_accuracy(&self) -> f64 {
        let n = self.total() as f64;
        let mut sum = 0.0;
        for c in 0..self.n_classes() {
            let (tp, _, _, tn) = self.binary_counts(c);
            sum += (tp + tn) as f64 / n;
        }
        sum / self.n_classes() as f64
    }

    /// Per-class precision `TP / (TP + FP)`; 0 when undefined.
    pub fn precision(&self, class: usize) -> f64 {
        let (tp, fp, _, _) = self.binary_counts(class);
        ratio(tp, tp + fp)
    }

    /// Per-class recall `TP / (TP + FN)`; 0 when undefined.
    pub fn recall(&self, class: usize) -> f64 {
        let (tp, _, fn_, _) = self.binary_counts(class);
        ratio(tp, tp + fn_)
    }

    /// Per-class specificity `TN / (TN + FP)`. When the class has no
    /// negative examples at all (`TN + FP = 0`), specificity is
    /// vacuously satisfied and reported as 1.
    pub fn specificity(&self, class: usize) -> f64 {
        let (_, fp, _, tn) = self.binary_counts(class);
        if tn + fp == 0 {
            1.0
        } else {
            ratio(tn, tn + fp)
        }
    }

    /// Per-class F1 (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged precision.
    pub fn macro_precision(&self) -> f64 {
        self.macro_over(Self::precision)
    }

    /// Macro-averaged recall.
    pub fn macro_recall(&self) -> f64 {
        self.macro_over(Self::recall)
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        self.macro_over(Self::f1)
    }

    /// Macro-averaged specificity.
    pub fn macro_specificity(&self) -> f64 {
        self.macro_over(Self::specificity)
    }

    fn macro_over(&self, f: impl Fn(&Self, usize) -> f64) -> f64 {
        let c = self.n_classes();
        (0..c).map(|i| f(self, i)).sum::<f64>() / c as f64
    }

    /// Cohen's kappa: agreement corrected for chance. 1 is perfect,
    /// 0 is chance-level, negative is worse than chance.
    pub fn cohens_kappa(&self) -> f64 {
        let n = self.total() as f64;
        let po = self.accuracy();
        let mut pe = 0.0;
        for c in 0..self.n_classes() {
            let row: usize = self.counts[c].iter().sum();
            let col: usize = (0..self.n_classes()).map(|t| self.counts[t][c]).sum();
            pe += (row as f64 / n) * (col as f64 / n);
        }
        if (1.0 - pe).abs() < 1e-15 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }

    /// Matthews correlation coefficient, multiclass (Gorodkin's R_K).
    /// 1 is perfect, 0 is chance-level.
    pub fn matthews_corrcoef(&self) -> f64 {
        let k = self.n_classes();
        let n = self.total() as f64;
        let c: f64 = (0..k).map(|i| self.counts[i][i] as f64).sum();
        let rows: Vec<f64> =
            (0..k).map(|t| self.counts[t].iter().sum::<usize>() as f64).collect();
        let cols: Vec<f64> = (0..k)
            .map(|p| (0..k).map(|t| self.counts[t][p]).sum::<usize>() as f64)
            .collect();
        let sum_rc: f64 = rows.iter().zip(&cols).map(|(r, q)| r * q).sum();
        let sum_r2: f64 = rows.iter().map(|r| r * r).sum();
        let sum_c2: f64 = cols.iter().map(|q| q * q).sum();
        let denom = ((n * n - sum_r2) * (n * n - sum_c2)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (c * n - sum_rc) / denom
        }
    }

    /// Element-wise sum of two matrices (for fold aggregation).
    ///
    /// # Panics
    ///
    /// Panics on class-count mismatch.
    pub fn merged(&self, other: &ConfusionMatrix) -> ConfusionMatrix {
        assert_eq!(self.n_classes(), other.n_classes(), "class count mismatch");
        let counts = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| a.iter().zip(b).map(|(x, y)| x + y).collect())
            .collect();
        ConfusionMatrix { counts }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "confusion matrix ({} classes):", self.n_classes())?;
        for row in &self.counts {
            for v in row {
                write!(f, "{v:>6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked 2-class example: 8 TP(0), 1 0→1, 2 1→0, 9 TP(1).
    fn cm() -> ConfusionMatrix {
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for _ in 0..8 {
            y_true.push(0);
            y_pred.push(0);
        }
        y_true.push(0);
        y_pred.push(1);
        for _ in 0..2 {
            y_true.push(1);
            y_pred.push(0);
        }
        for _ in 0..9 {
            y_true.push(1);
            y_pred.push(1);
        }
        ConfusionMatrix::from_predictions(&y_true, &y_pred, 2)
    }

    #[test]
    fn accuracy_fraction_correct() {
        assert!((cm().accuracy() - 17.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn two_class_ovr_accuracy_equals_accuracy() {
        let m = cm();
        assert!((m.ovr_accuracy() - m.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1_by_hand() {
        let m = cm();
        // Class 0: tp=8, fp=2, fn=1.
        assert!((m.precision(0) - 0.8).abs() < 1e-12);
        assert!((m.recall(0) - 8.0 / 9.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0 / 9.0);
        assert!((m.f1(0) - f1).abs() < 1e-12);
    }

    #[test]
    fn specificity_by_hand() {
        // Class 0: tn = 9, fp = 2 → 9/11.
        assert!((cm().specificity(0) - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn ovr_accuracy_exceeds_accuracy_for_many_classes() {
        // 4 classes, uniformly wrong half the time: plain accuracy 0.5,
        // but each binary view earns TN credit.
        let y_true = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        let y_pred = vec![0u32, 1, 2, 3, 1, 2, 3, 0];
        let m = ConfusionMatrix::from_predictions(&y_true, &y_pred, 4);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
        assert!(m.ovr_accuracy() > 0.7);
    }

    #[test]
    fn perfect_predictions() {
        let y = vec![0u32, 1, 2, 1, 0];
        let m = ConfusionMatrix::from_predictions(&y, &y, 3);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.macro_specificity(), 1.0);
    }

    #[test]
    fn absent_class_metrics_are_zero_not_nan() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        assert!(m.macro_f1().is_finite());
    }

    #[test]
    fn merged_adds_counts() {
        let a = cm();
        let b = cm();
        let m = a.merged(&b);
        assert_eq!(m.total(), 40);
        assert!((m.accuracy() - a.accuracy()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_labels() {
        ConfusionMatrix::from_predictions(&[5], &[0], 2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", cm()).is_empty());
    }

    #[test]
    fn kappa_and_mcc_are_one_for_perfect_and_zero_for_constant() {
        let y = vec![0u32, 1, 2, 1, 0, 2];
        let perfect = ConfusionMatrix::from_predictions(&y, &y, 3);
        assert!((perfect.cohens_kappa() - 1.0).abs() < 1e-12);
        assert!((perfect.matthews_corrcoef() - 1.0).abs() < 1e-12);
        // Constant predictor: chance-level agreement.
        let constant = vec![0u32; 6];
        let m = ConfusionMatrix::from_predictions(&y, &constant, 3);
        assert!(m.cohens_kappa().abs() < 1e-12);
        assert!(m.matthews_corrcoef().abs() < 1e-12);
    }

    #[test]
    fn binary_mcc_matches_textbook_formula() {
        // tp=8, fn=1, fp=2, tn=9 (class 0 as positive).
        let m = cm();
        let (tp, fp, fn_, tn) = (8.0f64, 2.0, 1.0, 9.0);
        let expect = (tp * tn - fp * fn_)
            / ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        assert!((m.matthews_corrcoef() - expect).abs() < 1e-12);
    }

    #[test]
    fn kappa_penalizes_imbalanced_luck() {
        // 90% majority class, predictor always says majority: high
        // accuracy, zero kappa.
        let mut t = vec![0u32; 90];
        t.extend(vec![1u32; 10]);
        let p = vec![0u32; 100];
        let m = ConfusionMatrix::from_predictions(&t, &p, 2);
        assert!(m.accuracy() > 0.89);
        assert!(m.cohens_kappa().abs() < 1e-12);
    }
}
