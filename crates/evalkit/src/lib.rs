//! Evaluation kit: confusion matrices, the paper's metric suite, and
//! fold aggregation.
//!
//! A reproduction note on the paper's **accuracy** column: Tables V/VI
//! report accuracies far above their macro recalls even on *balanced*
//! test sets, and accuracy *rises* with class count — the signature of
//! the one-vs-rest binary accuracy `(TP + TN) / N` averaged over
//! classes (scikit-learn's per-label accuracy), not the multiclass
//! fraction-correct. [`ConfusionMatrix`] exposes both:
//! [`ConfusionMatrix::accuracy`] (fraction correct) and
//! [`ConfusionMatrix::ovr_accuracy`] (the paper's table metric), plus
//! macro precision / recall / F1 / specificity (Tables VIII–IX use
//! specificity explicitly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confusion;
mod folds;
mod report;

pub use confusion::ConfusionMatrix;
pub use folds::{evaluate_folds, evaluate_folds_parallel, FoldOutcome, FoldSummary};
pub use report::ClassificationReport;
