//! Cross-validation fold aggregation.

use crate::confusion::ConfusionMatrix;

/// Aggregate metrics over folds.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldSummary {
    /// Per-fold confusion matrices.
    pub folds: Vec<ConfusionMatrix>,
    /// All folds merged (micro aggregation).
    pub pooled: ConfusionMatrix,
}

/// The per-fold quantities most tables report, averaged across folds
/// (the paper "averaged results of the 10 folds").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldOutcome {
    /// Mean multiclass accuracy.
    pub accuracy: f64,
    /// Mean one-vs-rest accuracy (the paper's A column).
    pub ovr_accuracy: f64,
    /// Mean macro precision.
    pub precision: f64,
    /// Mean macro recall.
    pub recall: f64,
    /// Mean macro F1.
    pub f1: f64,
    /// Mean macro specificity.
    pub specificity: f64,
}

impl FoldSummary {
    /// Fold-averaged metrics.
    pub fn outcome(&self) -> FoldOutcome {
        let n = self.folds.len() as f64;
        let mut o = FoldOutcome {
            accuracy: 0.0,
            ovr_accuracy: 0.0,
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            specificity: 0.0,
        };
        for m in &self.folds {
            o.accuracy += m.accuracy() / n;
            o.ovr_accuracy += m.ovr_accuracy() / n;
            o.precision += m.macro_precision() / n;
            o.recall += m.macro_recall() / n;
            o.f1 += m.macro_f1() / n;
            o.specificity += m.macro_specificity() / n;
        }
        o
    }
}

/// Runs `fit_predict` on each `(train, test)` fold and aggregates.
///
/// `fit_predict(train_indices, test_indices)` must return one predicted
/// label per test index, in order. The fold indices typically come from
/// `datasets::split::stratified_k_fold`.
///
/// # Panics
///
/// Panics if `folds` is empty or a closure returns the wrong number of
/// predictions.
pub fn evaluate_folds<F>(
    labels: &[u32],
    n_classes: usize,
    folds: &[(Vec<usize>, Vec<usize>)],
    mut fit_predict: F,
) -> FoldSummary
where
    F: FnMut(&[usize], &[usize]) -> Vec<u32>,
{
    assert!(!folds.is_empty(), "need at least one fold");
    let mut matrices = Vec::with_capacity(folds.len());
    for (train, test) in folds {
        let preds = fit_predict(train, test);
        assert_eq!(preds.len(), test.len(), "one prediction per test sample");
        let truth: Vec<u32> = test.iter().map(|&i| labels[i]).collect();
        matrices.push(ConfusionMatrix::from_predictions(&truth, &preds, n_classes));
    }
    let pooled = matrices
        .iter()
        .skip(1)
        .fold(matrices[0].clone(), |acc, m| acc.merged(m));
    FoldSummary { folds: matrices, pooled }
}

/// Parallel variant of [`evaluate_folds`]: folds run concurrently on
/// `executor`, results aggregate in fold order.
///
/// `fit_predict(fold_index, train_indices, test_indices)` receives the
/// fold's position so callers can derive a per-fold RNG stream from a
/// master seed (`exec::mix_seed`) — the closure must be deterministic
/// in its arguments for results to be identical at every thread count.
///
/// # Panics
///
/// Panics if `folds` is empty or a closure returns the wrong number of
/// predictions.
pub fn evaluate_folds_parallel<F>(
    labels: &[u32],
    n_classes: usize,
    folds: &[(Vec<usize>, Vec<usize>)],
    executor: &exec::Executor,
    fit_predict: F,
) -> FoldSummary
where
    F: Fn(usize, &[usize], &[usize]) -> Vec<u32> + Sync,
{
    assert!(!folds.is_empty(), "need at least one fold");
    let matrices = executor.map(folds, |fold_idx, (train, test)| {
        let preds = fit_predict(fold_idx, train, test);
        assert_eq!(preds.len(), test.len(), "one prediction per test sample");
        let truth: Vec<u32> = test.iter().map(|&i| labels[i]).collect();
        ConfusionMatrix::from_predictions(&truth, &preds, n_classes)
    });
    let pooled = matrices
        .iter()
        .skip(1)
        .fold(matrices[0].clone(), |acc, m| acc.merged(m));
    FoldSummary { folds: matrices, pooled }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_perfect_oracle() {
        let labels = vec![0u32, 1, 0, 1, 0, 1];
        let folds = vec![
            (vec![0, 1, 2, 3], vec![4, 5]),
            (vec![2, 3, 4, 5], vec![0, 1]),
        ];
        let summary = evaluate_folds(&labels, 2, &folds, |_, test| {
            test.iter().map(|&i| labels[i]).collect()
        });
        let o = summary.outcome();
        assert_eq!(o.accuracy, 1.0);
        assert_eq!(o.f1, 1.0);
        assert_eq!(summary.pooled.total(), 4);
    }

    #[test]
    fn averages_across_folds() {
        let labels = vec![0u32, 1, 0, 1];
        let folds = vec![
            (vec![2, 3], vec![0, 1]),
            (vec![0, 1], vec![2, 3]),
        ];
        // First fold perfect, second fold fully wrong.
        let mut call = 0;
        let summary = evaluate_folds(&labels, 2, &folds, |_, test| {
            call += 1;
            if call == 1 {
                test.iter().map(|&i| labels[i]).collect()
            } else {
                test.iter().map(|&i| 1 - labels[i]).collect()
            }
        });
        assert!((summary.outcome().accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one prediction per test sample")]
    fn rejects_wrong_prediction_count() {
        let labels = vec![0u32, 1];
        let folds = vec![(vec![0], vec![1])];
        evaluate_folds(&labels, 2, &folds, |_, _| vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one fold")]
    fn rejects_empty_folds() {
        evaluate_folds(&[0u32], 1, &[], |_, _| vec![]);
    }

    #[test]
    fn parallel_matches_sequential_at_any_thread_count() {
        let labels: Vec<u32> = (0..40).map(|i| i % 4).collect();
        let folds: Vec<(Vec<usize>, Vec<usize>)> = (0..5)
            .map(|f| {
                let test: Vec<usize> = (0..40).filter(|i| i % 5 == f).collect();
                let train: Vec<usize> = (0..40).filter(|i| i % 5 != f).collect();
                (train, test)
            })
            .collect();
        // A deterministic but fold-dependent "model".
        let predict = |fold_idx: usize, _train: &[usize], test: &[usize]| -> Vec<u32> {
            test.iter().map(|&i| ((i + fold_idx) % 4) as u32).collect()
        };
        let sequential = {
            let mut fold_idx = 0;
            evaluate_folds(&labels, 4, &folds, |train, test| {
                let p = predict(fold_idx, train, test);
                fold_idx += 1;
                p
            })
        };
        for threads in [1, 2, 4] {
            let parallel = evaluate_folds_parallel(
                &labels,
                4,
                &folds,
                &exec::Executor::new(threads),
                |i, train, test| predict(i, train, test),
            );
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }
}
