//! Per-class classification reports (scikit-learn style).

use crate::confusion::ConfusionMatrix;

/// A formatted per-class metric breakdown over a confusion matrix.
///
/// # Examples
///
/// ```
/// use evalkit::{ClassificationReport, ConfusionMatrix};
///
/// let m = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
/// let report = ClassificationReport::new(&m, &["Miami".into(), "Tampa".into()]);
/// let text = report.render();
/// assert!(text.contains("Miami"));
/// assert!(text.contains("macro avg"));
/// ```
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    rows: Vec<ReportRow>,
    accuracy: f64,
    ovr_accuracy: f64,
    kappa: f64,
    mcc: f64,
    total: usize,
}

#[derive(Debug, Clone)]
struct ReportRow {
    name: String,
    precision: f64,
    recall: f64,
    f1: f64,
    specificity: f64,
    support: usize,
}

impl ClassificationReport {
    /// Builds a report; class names default to indices when `names` is
    /// shorter than the class count.
    pub fn new(matrix: &ConfusionMatrix, names: &[String]) -> Self {
        let c = matrix.n_classes();
        let rows = (0..c)
            .map(|class| {
                let support: usize = (0..c).map(|p| matrix.count(class, p)).sum();
                ReportRow {
                    name: names
                        .get(class)
                        .cloned()
                        .unwrap_or_else(|| format!("class-{class}")),
                    precision: matrix.precision(class),
                    recall: matrix.recall(class),
                    f1: matrix.f1(class),
                    specificity: matrix.specificity(class),
                    support,
                }
            })
            .collect();
        Self {
            rows,
            accuracy: matrix.accuracy(),
            ovr_accuracy: matrix.ovr_accuracy(),
            kappa: matrix.cohens_kappa(),
            mcc: matrix.matthews_corrcoef(),
            total: matrix.total(),
        }
    }

    /// Renders a fixed-width text report.
    pub fn render(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(["macro avg".len()])
            .max()
            .unwrap_or(8);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>name_w$}  {:>9}  {:>9}  {:>9}  {:>11}  {:>7}\n",
            "", "precision", "recall", "f1", "specificity", "support"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>name_w$}  {:>9.3}  {:>9.3}  {:>9.3}  {:>11.3}  {:>7}\n",
                r.name, r.precision, r.recall, r.f1, r.specificity, r.support
            ));
        }
        let n = self.rows.len() as f64;
        out.push_str(&format!(
            "{:>name_w$}  {:>9.3}  {:>9.3}  {:>9.3}  {:>11.3}  {:>7}\n",
            "macro avg",
            self.rows.iter().map(|r| r.precision).sum::<f64>() / n,
            self.rows.iter().map(|r| r.recall).sum::<f64>() / n,
            self.rows.iter().map(|r| r.f1).sum::<f64>() / n,
            self.rows.iter().map(|r| r.specificity).sum::<f64>() / n,
            self.total,
        ));
        out.push_str(&format!(
            "\naccuracy {:.3} | ovr accuracy {:.3} | kappa {:.3} | mcc {:.3}\n",
            self.accuracy, self.ovr_accuracy, self.kappa, self.mcc
        ));
        out
    }
}

impl std::fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_every_class_and_summary() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2, 0, 1, 2], &[0, 1, 2, 1, 1, 0], 3);
        let names = vec!["a".into(), "b".into(), "c".into()];
        let text = ClassificationReport::new(&m, &names).render();
        for n in ["a", "b", "c", "macro avg", "kappa", "support"] {
            assert!(text.contains(n), "missing {n} in:\n{text}");
        }
    }

    #[test]
    fn missing_names_fall_back_to_indices() {
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 2);
        let text = ClassificationReport::new(&m, &[]).render();
        assert!(text.contains("class-0"));
        assert!(text.contains("class-1"));
    }

    #[test]
    fn support_counts_true_labels() {
        let m = ConfusionMatrix::from_predictions(&[0, 0, 0, 1], &[1, 1, 1, 0], 2);
        let report = ClassificationReport::new(&m, &["x".into(), "y".into()]);
        assert_eq!(report.rows[0].support, 3);
        assert_eq!(report.rows[1].support, 1);
    }
}
