//! Property-based tests for metric identities.

use evalkit::ConfusionMatrix;
use proptest::prelude::*;

fn arb_predictions() -> impl Strategy<Value = (Vec<u32>, Vec<u32>, usize)> {
    (2usize..6).prop_flat_map(|c| {
        prop::collection::vec((0u32..c as u32, 0u32..c as u32), 1..120)
            .prop_map(move |pairs| {
                let (t, p): (Vec<u32>, Vec<u32>) = pairs.into_iter().unzip();
                (t, p, c)
            })
    })
}

proptest! {
    #[test]
    fn all_metrics_are_in_unit_interval((t, p, c) in arb_predictions()) {
        let m = ConfusionMatrix::from_predictions(&t, &p, c);
        for v in [
            m.accuracy(),
            m.ovr_accuracy(),
            m.macro_precision(),
            m.macro_recall(),
            m.macro_f1(),
            m.macro_specificity(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v}");
        }
    }

    #[test]
    fn perfect_predictions_maximize_everything((t, _, c) in arb_predictions()) {
        let m = ConfusionMatrix::from_predictions(&t, &t, c);
        prop_assert_eq!(m.accuracy(), 1.0);
        prop_assert_eq!(m.ovr_accuracy(), 1.0);
        prop_assert_eq!(m.macro_specificity(), 1.0);
    }

    #[test]
    fn ovr_accuracy_dominates_accuracy((t, p, c) in arb_predictions()) {
        // Binary OvR accuracy earns true-negative credit, so it never
        // falls below the multiclass fraction-correct.
        let m = ConfusionMatrix::from_predictions(&t, &p, c);
        prop_assert!(m.ovr_accuracy() >= m.accuracy() - 1e-12);
    }

    #[test]
    fn f1_is_between_min_and_max_of_p_and_r((t, p, c) in arb_predictions()) {
        let m = ConfusionMatrix::from_predictions(&t, &p, c);
        for class in 0..c {
            let (pr, rc, f1) = (m.precision(class), m.recall(class), m.f1(class));
            if pr + rc > 0.0 {
                prop_assert!(f1 <= pr.max(rc) + 1e-12);
                prop_assert!(f1 >= pr.min(rc) - 1e-12 || f1 >= 0.0);
            } else {
                prop_assert_eq!(f1, 0.0);
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_count_preserving(
        (t1, p1, _) in arb_predictions(),
        (t2, p2, _) in arb_predictions(),
    ) {
        let c = 6; // superset class count
        let a = ConfusionMatrix::from_predictions(&t1, &p1, c);
        let b = ConfusionMatrix::from_predictions(&t2, &p2, c);
        let ab = a.merged(&b);
        let ba = b.merged(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn accuracy_equals_diagonal_mass((t, p, c) in arb_predictions()) {
        let m = ConfusionMatrix::from_predictions(&t, &p, c);
        let diag: usize = (0..c).map(|i| m.count(i, i)).sum();
        prop_assert!((m.accuracy() - diag as f64 / t.len() as f64).abs() < 1e-12);
    }
}
