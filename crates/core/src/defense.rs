//! Defenses against the elevation attack (the paper's future work).
//!
//! §VI: "In the future, we will explore compatible defenses such as
//! devising and using route statistics that serves the same purpose as
//! sharing elevation profile; demonstrating the roughness of the route,
//! while preserving users' privacy." This module implements three such
//! defenses and lets the rest of the pipeline measure how much attack
//! accuracy each one removes (see the `defense_evaluation` example and
//! the `ablation_defenses` bench):
//!
//! - [`Defense::Coarsen`]: quantize elevations to a coarse step,
//! - [`Defense::LaplaceNoise`]: add Laplace noise per point (the
//!   geo-indistinguishability mechanism applied to the z-axis),
//! - [`Defense::SummaryOnly`]: share only roughness statistics — total
//!   ascent/descent, elevation gain histogram — never the profile.

use datasets::{Dataset, Sample};

/// A privacy transformation applied to an elevation profile before it
/// is shared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Defense {
    /// Quantizes every elevation to multiples of `step_m` metres.
    /// Preserves the shape users care about at coarse granularity.
    Coarsen {
        /// Quantization step in metres.
        step_m: f64,
    },
    /// Adds zero-mean Laplace noise with scale `scale_m` to every
    /// point. Deterministic per (profile, seed) so experiments
    /// reproduce.
    LaplaceNoise {
        /// Laplace scale parameter b (variance = 2b²).
        scale_m: f64,
        /// Noise seed.
        seed: u64,
    },
    /// Replaces the profile with `2·bins` summary values: per-segment
    /// total ascent and descent — the "route statistics" defense. The
    /// absolute elevation never leaves the device.
    SummaryOnly {
        /// Number of route segments summarized.
        bins: usize,
    },
    /// Shares the profile *relative to its starting elevation*
    /// (`e_i − e_0`): the full shape and roughness survive, but the
    /// absolute elevation band — the strongest city identifier — never
    /// leaves the device. The defense a fitness platform could ship
    /// without changing its elevation chart at all.
    RelativeProfile,
}

impl Defense {
    /// Applies the defense to one profile.
    ///
    /// Empty profiles pass through unchanged.
    pub fn apply(&self, profile: &[f64]) -> Vec<f64> {
        if profile.is_empty() {
            return Vec::new();
        }
        match *self {
            Defense::Coarsen { step_m } => {
                assert!(step_m > 0.0, "coarsening step must be positive");
                profile.iter().map(|e| (e / step_m).round() * step_m).collect()
            }
            Defense::LaplaceNoise { scale_m, seed } => {
                assert!(scale_m >= 0.0, "noise scale must be non-negative");
                profile
                    .iter()
                    .enumerate()
                    .map(|(i, e)| e + laplace(scale_m, hash2(seed, i as u64)))
                    .collect()
            }
            Defense::RelativeProfile => {
                let base = profile[0];
                profile.iter().map(|e| e - base).collect()
            }
            Defense::SummaryOnly { bins } => {
                assert!(bins > 0, "need at least one summary bin");
                let mut out = Vec::with_capacity(bins * 2);
                for b in 0..bins {
                    let lo = b * profile.len() / bins;
                    let hi = (((b + 1) * profile.len()) / bins).max(lo + 1).min(profile.len());
                    let seg = &profile[lo..hi];
                    let mut ascent = 0.0;
                    let mut descent = 0.0;
                    for w in seg.windows(2) {
                        let d = w[1] - w[0];
                        if d > 0.0 {
                            ascent += d;
                        } else {
                            descent -= d;
                        }
                    }
                    out.push(ascent);
                    out.push(descent);
                }
                out
            }
        }
    }

    /// Applies the defense to every sample of a dataset (paths are
    /// dropped: a defended dataset is what the adversary scrapes).
    pub fn apply_to_dataset(&self, ds: &Dataset) -> Dataset {
        let mut out = Dataset::new(ds.label_names().to_vec());
        for (i, s) in ds.samples().iter().enumerate() {
            let defense = match *self {
                // Vary noise per sample, deterministically.
                Defense::LaplaceNoise { scale_m, seed } => Defense::LaplaceNoise {
                    scale_m,
                    seed: hash2(seed, i as u64),
                },
                other => other,
            };
            out.push(Sample {
                elevation: defense.apply(&s.elevation),
                label: s.label,
                path: None,
            })
            .expect("labels preserved");
        }
        out
    }
}

impl std::fmt::Display for Defense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defense::Coarsen { step_m } => write!(f, "coarsen({step_m} m)"),
            Defense::LaplaceNoise { scale_m, .. } => write!(f, "laplace(b={scale_m} m)"),
            Defense::SummaryOnly { bins } => write!(f, "summary-only({bins} bins)"),
            Defense::RelativeProfile => write!(f, "relative-profile"),
        }
    }
}

/// Deterministic Laplace sample from a hashed uniform.
fn laplace(scale: f64, hash: u64) -> f64 {
    // u uniform in (-0.5, 0.5), inverse CDF.
    let u = ((hash >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
    let u = u.clamp(-0.499_999_9, 0.499_999_9);
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Vec<f64> {
        (0..100).map(|i| 50.0 + (i as f64 * 0.2).sin() * 10.0).collect()
    }

    #[test]
    fn coarsen_quantizes() {
        let out = Defense::Coarsen { step_m: 5.0 }.apply(&profile());
        for v in out {
            assert!((v / 5.0 - (v / 5.0).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn coarsen_with_huge_step_flattens() {
        let out = Defense::Coarsen { step_m: 1000.0 }.apply(&profile());
        assert!(out.iter().all(|&v| v == out[0]));
    }

    #[test]
    fn laplace_noise_is_deterministic_and_zero_mean_ish() {
        let d = Defense::LaplaceNoise { scale_m: 3.0, seed: 9 };
        let a = d.apply(&profile());
        let b = d.apply(&profile());
        assert_eq!(a, b);
        let bias: f64 = a
            .iter()
            .zip(profile())
            .map(|(noisy, clean)| noisy - clean)
            .sum::<f64>()
            / a.len() as f64;
        assert!(bias.abs() < 1.5, "bias {bias}");
    }

    #[test]
    fn summary_only_reports_roughness() {
        let d = Defense::SummaryOnly { bins: 4 };
        let out = d.apply(&profile());
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|&v| v >= 0.0));
        // A monotone ramp has ascent but no descent.
        let ramp: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let s = Defense::SummaryOnly { bins: 1 }.apply(&ramp);
        assert_eq!(s, vec![49.0, 0.0]);
    }

    #[test]
    fn summary_only_hides_absolute_elevation() {
        let low: Vec<f64> = (0..50).map(|i| 2.0 + (i as f64 * 0.3).sin()).collect();
        let high: Vec<f64> = (0..50).map(|i| 1800.0 + (i as f64 * 0.3).sin()).collect();
        let d = Defense::SummaryOnly { bins: 2 };
        let (a, b) = (d.apply(&low), d.apply(&high));
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "summaries leaked base elevation");
        }
    }

    #[test]
    fn apply_to_dataset_strips_paths_and_keeps_labels() {
        let mut ds = Dataset::new(vec!["a".into()]);
        ds.push(Sample {
            elevation: profile(),
            label: 0,
            path: Some(vec![geoprim::LatLon::new(1.0, 2.0)]),
        })
        .unwrap();
        let out = Defense::Coarsen { step_m: 10.0 }.apply_to_dataset(&ds);
        assert_eq!(out.len(), 1);
        assert_eq!(out.samples()[0].label, 0);
        assert!(out.samples()[0].path.is_none());
    }

    #[test]
    fn per_sample_noise_differs() {
        let mut ds = Dataset::new(vec!["a".into()]);
        for _ in 0..2 {
            ds.push(Sample { elevation: profile(), label: 0, path: None }).unwrap();
        }
        let out = Defense::LaplaceNoise { scale_m: 2.0, seed: 4 }.apply_to_dataset(&ds);
        assert_ne!(out.samples()[0].elevation, out.samples()[1].elevation);
    }

    #[test]
    fn empty_profile_passes_through() {
        for d in [
            Defense::Coarsen { step_m: 1.0 },
            Defense::LaplaceNoise { scale_m: 1.0, seed: 0 },
            Defense::SummaryOnly { bins: 3 },
            Defense::RelativeProfile,
        ] {
            assert!(d.apply(&[]).is_empty());
        }
    }

    #[test]
    fn relative_profile_preserves_shape_and_hides_base() {
        let low: Vec<f64> = (0..50).map(|i| 2.0 + (i as f64 * 0.3).sin()).collect();
        let high: Vec<f64> = (0..50).map(|i| 1800.0 + (i as f64 * 0.3).sin()).collect();
        let d = Defense::RelativeProfile;
        let (a, b) = (d.apply(&low), d.apply(&high));
        assert_eq!(a[0], 0.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "same shape must survive identically");
        }
        // Differences between consecutive points are untouched.
        for (orig, rel) in low.windows(2).zip(a.windows(2)) {
            assert!(((orig[1] - orig[0]) - (rel[1] - rel[0])).abs() < 1e-12);
        }
    }
}
