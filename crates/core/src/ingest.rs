//! Resilient track ingestion: validate → repair → accept or quarantine.
//!
//! The clean experiment path assumes perfect recordings; real fitness
//! exports arrive with GPS dropouts, barometric spikes, NaN elevations,
//! duplicated points, shuffled timestamps, and truncated files. This
//! module is the production-style front door: every incoming track is
//! validated, repaired where the damage is recoverable, and otherwise
//! **quarantined** into a structured per-run [`IngestReport`] — one
//! corrupt track can never abort a batch run.
//!
//! Repairs are conservative and deterministic:
//!
//! - out-of-order timestamps → stable sort by time (only when every
//!   point carries a timestamp);
//! - exact duplicate runs → consecutive dedup;
//! - timestamp gaps (GPS dropout) → linear gap interpolation at the
//!   track's median sampling interval;
//! - NaN elevations → linear interpolation from the nearest finite
//!   neighbours;
//! - elevation spikes → rolling-median despike.
//!
//! A track that is untouched by all five passes is reported as
//! [`Disposition::Clean`] and its profile is returned **byte-identical**
//! to [`gpxfile::Gpx::elevation_profile`] — the zero-fault invariance
//! the experiment suite depends on.
//!
//! The repair passes run on [`gpxfile::stream::FlatPoint`] sequences
//! held in a reusable [`gpxfile::stream::PointBuf`], which two entry
//! points feed:
//!
//! - [`ingest_one`] / [`ingest_batch`] — the DOM path: parse (or take)
//!   a full [`Gpx`] document, flatten it, repair. Kept as the reference
//!   implementation and the executor-parallel batch front door.
//! - [`StreamingIngest`] — the zero-copy path: raw bytes go through the
//!   borrowing event reader straight into the flat point buffer, no DOM
//!   is built, and all working memory (point buffer, timestamp arena,
//!   repair scratch) is reused across calls. Produces bit-identical
//!   dispositions and profiles to the DOM path for every input.
//!
//! Each batch track is processed in isolation on the workspace executor
//! via [`exec::Executor::try_map`]; a panic inside a repair quarantines
//! that track ([`QuarantineReason::RepairPanicked`]) while every other
//! track completes.

use exec::Executor;
use gpxfile::stream::{FlatPoint, PointBuf};
use gpxfile::Gpx;

/// Ingestion thresholds. The defaults are tuned so that the clean
/// synthetic corpora pass through 100% untouched (no false repairs)
/// while every fault `faultsim` injects is either repaired or
/// quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Quarantine profiles shorter than this after repair.
    pub min_profile_len: usize,
    /// Rolling-median window for despiking (odd, ≥ 3).
    pub spike_window: usize,
    /// A point deviating from its window median by more than this many
    /// metres is a spike.
    pub spike_threshold_m: f64,
    /// A timestamp delta larger than `factor × median Δt` is a gap.
    pub max_time_gap_factor: f64,
    /// Never synthesize more than this many points for one gap.
    pub max_gap_fill_points: usize,
    /// Quarantine when repairs touched more than this fraction of the
    /// track's points (the signal is no longer trustworthy).
    pub max_repaired_fraction: f64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            min_profile_len: 24,
            spike_window: 5,
            spike_threshold_m: 40.0,
            max_time_gap_factor: 4.0,
            max_gap_fill_points: 64,
            max_repaired_fraction: 0.35,
        }
    }
}

/// One incoming track.
#[derive(Debug, Clone, PartialEq)]
pub enum TrackSource {
    /// An already-parsed document (possibly with model-level damage).
    Parsed(Gpx),
    /// Raw serialized bytes (possibly truncated, mangled, or invalid
    /// UTF-8).
    Raw(Vec<u8>),
}

/// One category of applied repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairKind {
    /// Points re-sorted into timestamp order.
    SortedByTime,
    /// Exact consecutive duplicates removed.
    DedupedPoints,
    /// Synthetic points interpolated across a timestamp gap.
    FilledGap,
    /// NaN elevations interpolated from finite neighbours.
    InterpolatedNan,
    /// Spikes replaced by the rolling median.
    DespikedElevation,
}

impl RepairKind {
    /// All repair kinds, in pipeline order.
    pub const ALL: [RepairKind; 5] = [
        RepairKind::SortedByTime,
        RepairKind::DedupedPoints,
        RepairKind::FilledGap,
        RepairKind::InterpolatedNan,
        RepairKind::DespikedElevation,
    ];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RepairKind::SortedByTime => "sort_time",
            RepairKind::DedupedPoints => "dedup",
            RepairKind::FilledGap => "fill_gap",
            RepairKind::InterpolatedNan => "interp_nan",
            RepairKind::DespikedElevation => "despike",
        }
    }
}

/// One applied repair: what, and how many points it touched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Repair {
    /// The repair category.
    pub kind: RepairKind,
    /// Number of points sorted, removed, synthesized, or rewritten.
    pub points: usize,
}

/// Why a track was quarantined instead of accepted.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineReason {
    /// The bytes did not parse as GPX (the message is the
    /// [`gpxfile::GpxError`] display).
    ParseFailed(String),
    /// No usable elevation values at all.
    EmptyProfile,
    /// Fewer points than [`IngestConfig::min_profile_len`] after repair.
    TooShort {
        /// Final profile length.
        points: usize,
    },
    /// Repairs touched more of the track than
    /// [`IngestConfig::max_repaired_fraction`] allows.
    TooCorrupt {
        /// Fraction of points touched by repairs.
        repaired_fraction: f64,
    },
    /// The repair pipeline itself panicked (isolated by
    /// [`exec::Executor::try_map`]).
    RepairPanicked(String),
}

impl QuarantineReason {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            QuarantineReason::ParseFailed(_) => "parse_failed",
            QuarantineReason::EmptyProfile => "empty_profile",
            QuarantineReason::TooShort { .. } => "too_short",
            QuarantineReason::TooCorrupt { .. } => "too_corrupt",
            QuarantineReason::RepairPanicked(_) => "repair_panicked",
        }
    }

    /// Every reason name, in canonical report order.
    pub const NAMES: [&'static str; 5] =
        ["parse_failed", "empty_profile", "too_short", "too_corrupt", "repair_panicked"];
}

/// The per-track outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Accepted untouched; the profile is byte-identical to the clean
    /// extraction path.
    Clean,
    /// Accepted after the listed repairs.
    Repaired(Vec<Repair>),
    /// Rejected; no profile is produced.
    Quarantined(QuarantineReason),
}

/// One track's entry in the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackReport {
    /// Input index of the track.
    pub index: usize,
    /// What happened to it.
    pub disposition: Disposition,
    /// Profile length delivered downstream (0 when quarantined).
    pub profile_len: usize,
}

/// The structured per-run ingestion report: every input track is
/// accounted for, in input order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestReport {
    /// Per-track outcomes, sorted by input index.
    pub tracks: Vec<TrackReport>,
}

impl IngestReport {
    /// Number of tracks accepted untouched.
    pub fn clean(&self) -> usize {
        self.tracks.iter().filter(|t| matches!(t.disposition, Disposition::Clean)).count()
    }

    /// Number of tracks accepted after repair.
    pub fn repaired(&self) -> usize {
        self.tracks
            .iter()
            .filter(|t| matches!(t.disposition, Disposition::Repaired(_)))
            .count()
    }

    /// Number of tracks quarantined.
    pub fn quarantined(&self) -> usize {
        self.tracks
            .iter()
            .filter(|t| matches!(t.disposition, Disposition::Quarantined(_)))
            .count()
    }

    /// Total points touched per repair kind, in [`RepairKind::ALL`]
    /// order.
    pub fn repair_counts(&self) -> Vec<(RepairKind, usize)> {
        RepairKind::ALL
            .into_iter()
            .map(|kind| {
                let points = self
                    .tracks
                    .iter()
                    .filter_map(|t| match &t.disposition {
                        Disposition::Repaired(rs) => Some(rs),
                        _ => None,
                    })
                    .flatten()
                    .filter(|r| r.kind == kind)
                    .map(|r| r.points)
                    .sum();
                (kind, points)
            })
            .collect()
    }

    /// Quarantined-track counts per reason, in
    /// [`QuarantineReason::NAMES`] order.
    pub fn quarantine_counts(&self) -> Vec<(&'static str, usize)> {
        QuarantineReason::NAMES
            .into_iter()
            .map(|name| {
                let n = self
                    .tracks
                    .iter()
                    .filter(|t| {
                        matches!(&t.disposition,
                            Disposition::Quarantined(r) if r.name() == name)
                    })
                    .count();
                (name, n)
            })
            .collect()
    }

    /// Checks the report's internal bookkeeping invariants: the three
    /// dispositions partition the tracks, indices are the input order,
    /// every repair entry touched at least one point, and the per-kind
    /// and per-reason breakdowns re-sum to the headline counts.
    ///
    /// Returns the first violated invariant, for conformance tests and
    /// fault-injection sweeps that must fail with a named invariant
    /// instead of a mismatched digest.
    pub fn validate(&self) -> Result<(), String> {
        if self.clean() + self.repaired() + self.quarantined() != self.tracks.len() {
            return Err(format!(
                "dispositions do not partition the report: {} + {} + {} != {}",
                self.clean(),
                self.repaired(),
                self.quarantined(),
                self.tracks.len()
            ));
        }
        for (pos, t) in self.tracks.iter().enumerate() {
            if t.index != pos {
                return Err(format!("track at position {pos} carries index {}", t.index));
            }
            if let Disposition::Repaired(rs) = &t.disposition {
                if rs.is_empty() {
                    return Err(format!("track {pos} is Repaired with no repairs"));
                }
                if let Some(r) = rs.iter().find(|r| r.points == 0) {
                    return Err(format!(
                        "track {pos} records a {} repair touching zero points",
                        r.kind.name()
                    ));
                }
            }
        }
        let per_reason: usize = self.quarantine_counts().iter().map(|(_, n)| n).sum();
        if per_reason != self.quarantined() {
            return Err(format!(
                "per-reason quarantine counts sum to {per_reason}, headline says {}",
                self.quarantined()
            ));
        }
        Ok(())
    }

    /// Renders the report as a JSON object (hand-formatted: flat,
    /// deterministic key order, safe for `jq`/`python -c` smoke
    /// checks).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"tracks\": {}, \"clean\": {}, \"repaired\": {}, \"quarantined\": {}",
            self.tracks.len(),
            self.clean(),
            self.repaired(),
            self.quarantined()
        ));
        out.push_str(", \"repairs\": {");
        let repairs: Vec<String> = self
            .repair_counts()
            .into_iter()
            .map(|(k, n)| format!("\"{}\": {n}", k.name()))
            .collect();
        out.push_str(&repairs.join(", "));
        out.push_str("}, \"quarantine_reasons\": {");
        let reasons: Vec<String> = self
            .quarantine_counts()
            .into_iter()
            .map(|(name, n)| format!("\"{name}\": {n}"))
            .collect();
        out.push_str(&reasons.join(", "));
        out.push_str("}}");
        out
    }

    /// Renders a compact human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "ingest: {} tracks — {} clean, {} repaired, {} quarantined\n",
            self.tracks.len(),
            self.clean(),
            self.repaired(),
            self.quarantined()
        );
        let repairs: Vec<String> = self
            .repair_counts()
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|(k, n)| format!("{} {n}", k.name()))
            .collect();
        if !repairs.is_empty() {
            out.push_str(&format!("  repairs (points): {}\n", repairs.join(", ")));
        }
        let reasons: Vec<String> = self
            .quarantine_counts()
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|(name, n)| format!("{name} {n}"))
            .collect();
        if !reasons.is_empty() {
            out.push_str(&format!("  quarantine: {}\n", reasons.join(", ")));
        }
        out
    }
}

/// Ingests a batch of tracks on the given executor.
///
/// Returns one slot per input (in input order): `Some(profile)` for
/// accepted tracks, `None` for quarantined ones, plus the full
/// [`IngestReport`]. Each track is processed independently and
/// panic-isolated, so the output is bit-identical at any thread count
/// and a poisoned track can never take down the batch.
pub fn ingest_batch(
    sources: &[TrackSource],
    cfg: &IngestConfig,
    executor: &Executor,
) -> (Vec<Option<Vec<f64>>>, IngestReport) {
    let outcomes = executor.try_map(sources, |_, src| ingest_one(src, cfg));
    let mut profiles = Vec::with_capacity(sources.len());
    let mut tracks = Vec::with_capacity(sources.len());
    for (index, slot) in outcomes.into_iter().enumerate() {
        let (disposition, profile) = match slot {
            Ok((d, p)) => (d, p),
            Err(panic) => (
                Disposition::Quarantined(QuarantineReason::RepairPanicked(panic.message)),
                None,
            ),
        };
        tracks.push(TrackReport {
            index,
            disposition,
            profile_len: profile.as_ref().map_or(0, Vec::len),
        });
        profiles.push(profile);
    }
    (profiles, IngestReport { tracks })
}

/// Ingests a single track (the pure per-task body, DOM path).
///
/// Raw bytes are parsed into a full [`Gpx`] document and flattened —
/// this is the reference implementation the streaming path
/// ([`StreamingIngest`]) is pinned against.
pub fn ingest_one(
    src: &TrackSource,
    cfg: &IngestConfig,
) -> (Disposition, Option<Vec<f64>>) {
    let mut buf = PointBuf::default();
    let mut scratch = IngestScratch::default();
    match src {
        TrackSource::Parsed(g) => buf.fill_from_gpx(g),
        TrackSource::Raw(bytes) => match Gpx::parse_bytes(bytes) {
            Ok(g) => buf.fill_from_gpx(&g),
            Err(e) => {
                return (
                    Disposition::Quarantined(QuarantineReason::ParseFailed(e.to_string())),
                    None,
                )
            }
        },
    }
    repair_flat(&mut buf, cfg, &mut scratch)
}

/// Reusable working memory for the repair passes: once grown to corpus
/// size, a repair run performs no allocation beyond the returned
/// profile.
#[derive(Debug, Default)]
struct IngestScratch {
    /// Parsed timestamp seconds, one per point.
    secs: Vec<i64>,
    /// Sorted inter-point deltas (median Δt extraction).
    dts: Vec<i64>,
    /// Gap-fill output staging, swapped into the point buffer.
    out: Vec<FlatPoint>,
    /// Pre-despike copy of the profile (detection never cascades).
    original: Vec<f64>,
    /// Rolling-median sort window.
    window: Vec<f64>,
}

/// Streaming ingestion: the zero-copy front door.
///
/// Raw GPX bytes flow through the borrowing event reader
/// ([`gpxfile::stream::StreamReader`]) directly into a flat point
/// buffer — no DOM is materialized — and the same five repair passes
/// run against reusable scratch. Dispositions, repair lists, and
/// profiles are bit-identical to [`ingest_one`] for every input; only
/// the allocation profile and throughput differ.
///
/// The struct owns all working memory, so a long-lived instance (one
/// per server arena, one per batch loop) reaches zero steady-state
/// allocation on the parse-and-repair side.
///
/// # Examples
///
/// ```
/// use elev_core::ingest::{Disposition, StreamingIngest};
///
/// let mut ing = StreamingIngest::default();
/// let (d, profile) = ing.ingest_bytes(b"not gpx at all");
/// assert!(matches!(d, Disposition::Quarantined(_)));
/// assert!(profile.is_none());
/// ```
#[derive(Debug, Default)]
pub struct StreamingIngest {
    cfg: IngestConfig,
    buf: PointBuf,
    scratch: IngestScratch,
}

impl StreamingIngest {
    /// Creates a streaming ingester with the given thresholds.
    pub fn new(cfg: IngestConfig) -> Self {
        Self { cfg, buf: PointBuf::default(), scratch: IngestScratch::default() }
    }

    /// The active thresholds.
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    /// Ingests one track from raw bytes, DOM-free.
    ///
    /// Parse failures are folded into the disposition
    /// ([`QuarantineReason::ParseFailed`]), exactly like
    /// [`ingest_one`] on a [`TrackSource::Raw`].
    pub fn ingest_bytes(&mut self, raw: &[u8]) -> (Disposition, Option<Vec<f64>>) {
        match self.try_ingest_bytes(raw) {
            Ok(out) => out,
            Err(e) => {
                (Disposition::Quarantined(QuarantineReason::ParseFailed(e.to_string())), None)
            }
        }
    }

    /// Ingests one track from raw bytes, surfacing the parse error
    /// itself (for callers that classify error variants, e.g. the
    /// conformance fuzz campaigns).
    ///
    /// # Errors
    ///
    /// Exactly the [`gpxfile::GpxError`] that [`Gpx::parse_bytes`]
    /// would produce for the same input.
    pub fn try_ingest_bytes(
        &mut self,
        raw: &[u8],
    ) -> Result<(Disposition, Option<Vec<f64>>), gpxfile::GpxError> {
        self.buf.fill_from_bytes(raw)?;
        Ok(repair_flat(&mut self.buf, &self.cfg, &mut self.scratch))
    }

    /// Ingests one [`TrackSource`]: raw bytes take the streaming path,
    /// already-parsed documents are flattened directly.
    pub fn ingest_source(&mut self, src: &TrackSource) -> (Disposition, Option<Vec<f64>>) {
        match src {
            TrackSource::Parsed(g) => {
                self.buf.fill_from_gpx(g);
                repair_flat(&mut self.buf, &self.cfg, &mut self.scratch)
            }
            TrackSource::Raw(bytes) => self.ingest_bytes(bytes),
        }
    }

    /// Ingests a batch serially on this instance's reusable buffers,
    /// producing the same `(profiles, report)` shape — and the same
    /// values — as [`ingest_batch`] on an executor.
    pub fn ingest_batch(
        &mut self,
        sources: &[TrackSource],
    ) -> (Vec<Option<Vec<f64>>>, IngestReport) {
        let mut profiles = Vec::with_capacity(sources.len());
        let mut tracks = Vec::with_capacity(sources.len());
        for (index, src) in sources.iter().enumerate() {
            let (disposition, profile) = self.ingest_source(src);
            tracks.push(TrackReport {
                index,
                disposition,
                profile_len: profile.as_ref().map_or(0, Vec::len),
            });
            profiles.push(profile);
        }
        (profiles, IngestReport { tracks })
    }
}

/// The timestamp text a point's arena range refers to.
fn time_of<'a>(arena: &'a str, p: &FlatPoint) -> Option<&'a str> {
    p.time.map(|(a, b)| &arena[a as usize..b as usize])
}

/// Runs the five repair passes and acceptance checks over the flattened
/// points in `buf`. The shared body of both ingestion paths.
fn repair_flat(
    buf: &mut PointBuf,
    cfg: &IngestConfig,
    scratch: &mut IngestScratch,
) -> (Disposition, Option<Vec<f64>>) {
    let (points, arena) = buf.parts_mut();
    let mut repairs: Vec<Repair> = Vec::new();

    // 1. Out-of-order timestamps (only when the recording is fully
    //    timestamped; a stable sort keeps untimed tracks untouched).
    if !points.is_empty() && points.iter().all(|p| p.time.is_some()) {
        let moved = count_out_of_order(points, arena);
        if moved > 0 {
            points.sort_by(|a, b| time_of(arena, a).cmp(&time_of(arena, b)));
            repairs.push(Repair { kind: RepairKind::SortedByTime, points: moved });
        }
    }

    // 2. Exact consecutive duplicates (logger stutter).
    let before = points.len();
    dedup_consecutive(points, arena);
    if points.len() < before {
        repairs.push(Repair { kind: RepairKind::DedupedPoints, points: before - points.len() });
    }

    // 3. Timestamp gaps → synthetic interpolated points.
    let filled = fill_time_gaps(points, arena, cfg, scratch);
    if filled > 0 {
        repairs.push(Repair { kind: RepairKind::FilledGap, points: filled });
    }

    // The elevation series downstream of structural repair.
    let mut profile: Vec<f64> =
        points.iter().filter_map(|p| p.elevation_m).collect();
    if profile.is_empty() {
        return (Disposition::Quarantined(QuarantineReason::EmptyProfile), None);
    }

    // 4. NaN elevations → linear interpolation.
    let interpolated = interpolate_nans(&mut profile);
    if interpolated > 0 {
        repairs.push(Repair { kind: RepairKind::InterpolatedNan, points: interpolated });
    }
    if profile.iter().any(|e| !e.is_finite()) {
        // Nothing finite to anchor the interpolation.
        return (Disposition::Quarantined(QuarantineReason::EmptyProfile), None);
    }

    // 5. Spikes → rolling median.
    let despiked = despike(&mut profile, cfg, scratch);
    if despiked > 0 {
        repairs.push(Repair { kind: RepairKind::DespikedElevation, points: despiked });
    }

    // Acceptance checks.
    if profile.len() < cfg.min_profile_len {
        return (
            Disposition::Quarantined(QuarantineReason::TooShort { points: profile.len() }),
            None,
        );
    }
    let touched: usize = repairs.iter().map(|r| r.points).sum();
    let fraction = touched as f64 / profile.len() as f64;
    if fraction > cfg.max_repaired_fraction {
        return (
            Disposition::Quarantined(QuarantineReason::TooCorrupt {
                repaired_fraction: fraction,
            }),
            None,
        );
    }

    if repairs.is_empty() {
        // Untouched: the extraction above IS the clean-path profile,
        // bit-identical to `Gpx::elevation_profile`.
        (Disposition::Clean, Some(profile))
    } else {
        (Disposition::Repaired(repairs), Some(profile))
    }
}

/// Number of points whose timestamp is smaller than a predecessor's —
/// the count reported for a [`RepairKind::SortedByTime`] repair.
fn count_out_of_order(points: &[FlatPoint], arena: &str) -> usize {
    points
        .windows(2)
        .filter(|w| time_of(arena, &w[1]) < time_of(arena, &w[0]))
        .count()
}

/// Removes points identical to their predecessor (coordinates,
/// elevation bits, and timestamp all equal — NaN elevations compare by
/// bit pattern so duplicated NaN points still collapse).
fn dedup_consecutive(points: &mut Vec<FlatPoint>, arena: &str) {
    points.dedup_by(|b, a| {
        a.coord == b.coord
            && time_of(arena, a) == time_of(arena, b)
            && match (a.elevation_m, b.elevation_m) {
                (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                (None, None) => true,
                _ => false,
            }
    });
}

/// Parses `YYYY-MM-DDTHH:MM:SSZ` into seconds since an arbitrary epoch
/// (only differences matter). Returns `None` for any other shape.
fn time_seconds(t: &str) -> Option<i64> {
    let b = t.as_bytes();
    if b.len() < 19 || b[4] != b'-' || b[7] != b'-' || b[10] != b'T' || b[13] != b':' || b[16] != b':'
    {
        return None;
    }
    let num = |range: std::ops::Range<usize>| -> Option<i64> {
        let s = t.get(range)?;
        // All-digit fast path (every real timestamp field); anything
        // else — signs, unicode digits, overflow — keeps `str::parse`'s
        // exact acceptance so behavior is unchanged.
        if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
            return Some(s.bytes().fold(0i64, |acc, b| acc * 10 + i64::from(b - b'0')));
        }
        s.parse::<i64>().ok()
    };
    let (y, mo, d) = (num(0..4)?, num(5..7)?, num(8..10)?);
    let (h, mi, s) = (num(11..13)?, num(14..16)?, num(17..19)?);
    // Days-from-civil (Howard Hinnant's algorithm), good enough for
    // ordering and differences across month/year boundaries.
    let y_adj = if mo <= 2 { y - 1 } else { y };
    let era = y_adj.div_euclid(400);
    let yoe = y_adj - era * 400;
    let mp = (mo + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    Some(days * 86_400 + h * 3_600 + mi * 60 + s)
}

/// Detects sampling gaps (Δt > `factor ×` median Δt) and inserts
/// linearly interpolated points. Returns the number of synthesized
/// points.
fn fill_time_gaps(
    points: &mut Vec<FlatPoint>,
    arena: &str,
    cfg: &IngestConfig,
    scratch: &mut IngestScratch,
) -> usize {
    if points.len() < 3 || points.iter().any(|p| p.time.is_none()) {
        return 0;
    }
    scratch.secs.clear();
    for p in points.iter() {
        match time_of(arena, p).and_then(time_seconds) {
            Some(s) => scratch.secs.push(s),
            None => return 0, // unparsable timestamps: leave the track alone
        }
    }
    let secs = &scratch.secs;
    scratch.dts.clear();
    scratch.dts.extend(secs.windows(2).map(|w| (w[1] - w[0]).max(0)));
    scratch.dts.sort_unstable();
    let median_dt = scratch.dts[scratch.dts.len() / 2].max(1);
    let threshold = (median_dt as f64 * cfg.max_time_gap_factor).ceil() as i64;

    scratch.out.clear();
    let mut inserted = 0usize;
    for i in 0..points.len() {
        if i > 0 {
            let dt = secs[i] - secs[i - 1];
            if dt > threshold {
                let missing =
                    (((dt as f64) / (median_dt as f64)).round() as usize - 1)
                        .min(cfg.max_gap_fill_points);
                let a = points[i - 1];
                let b = points[i];
                for k in 1..=missing {
                    let t = k as f64 / (missing + 1) as f64;
                    let ele = match (a.elevation_m, b.elevation_m) {
                        (Some(x), Some(y)) if x.is_finite() && y.is_finite() => {
                            Some(x + (y - x) * t)
                        }
                        _ => None,
                    };
                    let coord = geoprim::LatLon::new(
                        a.coord.lat + (b.coord.lat - a.coord.lat) * t,
                        a.coord.lon + (b.coord.lon - a.coord.lon) * t,
                    );
                    scratch.out.push(FlatPoint { coord, elevation_m: ele, time: None });
                    inserted += 1;
                }
            }
        }
        scratch.out.push(points[i]);
    }
    if inserted > 0 {
        std::mem::swap(points, &mut scratch.out);
    }
    inserted
}

/// Replaces non-finite elevations by linear interpolation between the
/// nearest finite neighbours (edge runs copy the nearest finite value).
/// Returns the number of values rewritten; leaves the series untouched
/// when nothing is finite.
fn interpolate_nans(profile: &mut [f64]) -> usize {
    let n = profile.len();
    if !profile.iter().any(|e| !e.is_finite()) {
        return 0;
    }
    if !profile.iter().any(|e| e.is_finite()) {
        return 0; // nothing to anchor on; caller quarantines
    }
    let mut fixed = 0usize;
    let mut i = 0usize;
    while i < n {
        if profile[i].is_finite() {
            i += 1;
            continue;
        }
        let start = i; // first bad index
        let mut end = i;
        while end < n && !profile[end].is_finite() {
            end += 1;
        }
        let left = start.checked_sub(1).map(|j| profile[j]);
        let right = if end < n { Some(profile[end]) } else { None };
        for (off, slot) in profile[start..end].iter_mut().enumerate() {
            *slot = match (left, right) {
                (Some(l), Some(r)) => {
                    let t = (off + 1) as f64 / (end - start + 1) as f64;
                    l + (r - l) * t
                }
                (Some(l), None) => l,
                (None, Some(r)) => r,
                (None, None) => unreachable!("a finite anchor exists"),
            };
            fixed += 1;
        }
        i = end;
    }
    fixed
}

/// Rolling-median despike: a value deviating from the median of its
/// window by more than the threshold is replaced by that median.
/// Detection runs on the original series (replacements do not cascade),
/// which keeps the pass order-independent and idempotent on clean data.
fn despike(profile: &mut [f64], cfg: &IngestConfig, scratch: &mut IngestScratch) -> usize {
    let n = profile.len();
    let w = cfg.spike_window.max(3) | 1; // force odd
    if n < w {
        return 0;
    }
    scratch.original.clear();
    scratch.original.extend_from_slice(profile);
    let half = w / 2;
    let mut fixed = 0usize;
    for (i, slot) in profile.iter_mut().enumerate() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        scratch.window.clear();
        scratch.window.extend_from_slice(&scratch.original[lo..hi]);
        scratch.window.sort_by(f64::total_cmp);
        let med = scratch.window[scratch.window.len() / 2];
        if (scratch.original[i] - med).abs() > cfg.spike_threshold_m {
            *slot = med;
            fixed += 1;
        }
    }
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::{corrupt_track, FaultKind, FaultPlan, Payload};
    use geoprim::LatLon;
    use gpxfile::{Track, TrackPoint, TrackSegment};
    use proptest::prelude::*;

    fn sample_gpx(n: usize) -> Gpx {
        let points = (0..n)
            .map(|i| {
                TrackPoint::with_elevation(
                    LatLon::new(38.0 + i as f64 * 1e-4, -77.0 + i as f64 * 5e-5),
                    120.0 + (i as f64 * 0.23).sin() * 6.0 + i as f64 * 0.05,
                )
            })
            .collect();
        Gpx {
            creator: "ingest test".into(),
            tracks: vec![Track { name: None, segments: vec![TrackSegment { points }] }],
        }
    }

    fn to_source(payload: Payload) -> TrackSource {
        match payload {
            Payload::Parsed(g) => TrackSource::Parsed(g),
            Payload::Raw(b) => TrackSource::Raw(b),
        }
    }

    #[test]
    fn clean_track_passes_through_byte_identical() {
        let gpx = sample_gpx(120);
        let (d, profile) = ingest_one(&TrackSource::Parsed(gpx.clone()), &IngestConfig::default());
        assert_eq!(d, Disposition::Clean);
        let clean = gpx.elevation_profile();
        let got = profile.unwrap();
        assert_eq!(got.len(), clean.len());
        assert!(got.iter().zip(&clean).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn streaming_clean_bytes_pass_through_byte_identical() {
        let bytes = sample_gpx(120).to_xml().into_bytes();
        let reparsed = Gpx::parse_bytes(&bytes).unwrap();
        let mut ing = StreamingIngest::default();
        let (d, profile) = ing.ingest_bytes(&bytes);
        assert_eq!(d, Disposition::Clean);
        let clean = reparsed.elevation_profile();
        let got = profile.unwrap();
        assert_eq!(got.len(), clean.len());
        assert!(got.iter().zip(&clean).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn every_model_fault_kind_is_repaired_or_quarantined() {
        let gpx = sample_gpx(200);
        let cfg = IngestConfig::default();
        for kind in [
            FaultKind::GpsGap,
            FaultKind::ElevationSpike,
            FaultKind::ElevationNan,
            FaultKind::DuplicatePoints,
            FaultKind::OutOfOrderTime,
        ] {
            for seed in 0..8 {
                let plan = FaultPlan { kinds: vec![kind], ..FaultPlan::uniform(1.0, seed) };
                let out = corrupt_track(&plan, 0, &gpx);
                assert_eq!(out.injected, vec![kind]);
                let (d, _) = ingest_one(&to_source(out.payload), &cfg);
                assert!(
                    !matches!(d, Disposition::Clean),
                    "{kind} (seed {seed}) slipped through as clean"
                );
            }
        }
    }

    #[test]
    fn spike_repair_restores_profile_closely() {
        let gpx = sample_gpx(150);
        let clean = gpx.elevation_profile();
        let plan =
            FaultPlan { kinds: vec![FaultKind::ElevationSpike], ..FaultPlan::uniform(1.0, 3) };
        let out = corrupt_track(&plan, 0, &gpx);
        let (d, profile) = ingest_one(&to_source(out.payload), &IngestConfig::default());
        assert!(matches!(d, Disposition::Repaired(_)));
        let got = profile.unwrap();
        assert_eq!(got.len(), clean.len());
        let worst = got
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 15.0, "despiked profile deviates by {worst} m");
    }

    #[test]
    fn shuffle_repair_restores_profile_exactly() {
        let gpx = sample_gpx(150);
        let plan =
            FaultPlan { kinds: vec![FaultKind::OutOfOrderTime], ..FaultPlan::uniform(1.0, 5) };
        let out = corrupt_track(&plan, 0, &gpx);
        let (d, profile) = ingest_one(&to_source(out.payload), &IngestConfig::default());
        assert!(matches!(d, Disposition::Repaired(_)), "got {d:?}");
        assert_eq!(profile.unwrap(), gpx.elevation_profile());
    }

    #[test]
    fn duplicate_repair_restores_profile_exactly() {
        let gpx = sample_gpx(150);
        let plan =
            FaultPlan { kinds: vec![FaultKind::DuplicatePoints], ..FaultPlan::uniform(1.0, 7) };
        let out = corrupt_track(&plan, 0, &gpx);
        let (d, profile) = ingest_one(&to_source(out.payload), &IngestConfig::default());
        assert!(matches!(d, Disposition::Repaired(_)), "got {d:?}");
        assert_eq!(profile.unwrap(), gpx.elevation_profile());
    }

    #[test]
    fn truncated_bytes_are_quarantined_not_fatal() {
        let gpx = sample_gpx(100);
        let plan =
            FaultPlan { kinds: vec![FaultKind::TruncateBytes], ..FaultPlan::uniform(1.0, 9) };
        let out = corrupt_track(&plan, 0, &gpx);
        let (d, profile) = ingest_one(&to_source(out.payload), &IngestConfig::default());
        assert!(
            matches!(d, Disposition::Quarantined(QuarantineReason::ParseFailed(_))),
            "got {d:?}"
        );
        assert!(profile.is_none());
    }

    #[test]
    fn too_short_tracks_are_quarantined() {
        let gpx = sample_gpx(10);
        let (d, _) = ingest_one(&TrackSource::Parsed(gpx), &IngestConfig::default());
        assert!(matches!(d, Disposition::Quarantined(QuarantineReason::TooShort { .. })));
    }

    #[test]
    fn all_nan_profile_is_quarantined() {
        let mut gpx = sample_gpx(60);
        for p in &mut gpx.tracks[0].segments[0].points {
            p.elevation_m = Some(f64::NAN);
        }
        let (d, _) = ingest_one(&TrackSource::Parsed(gpx), &IngestConfig::default());
        assert!(matches!(d, Disposition::Quarantined(QuarantineReason::EmptyProfile)));
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let gpx = sample_gpx(160);
        let plan = FaultPlan::uniform(0.5, 21);
        let sources: Vec<TrackSource> = (0..24)
            .map(|i| to_source(corrupt_track(&plan, i, &gpx).payload))
            .collect();
        let cfg = IngestConfig::default();
        let base = ingest_batch(&sources, &cfg, &Executor::new(1));
        for threads in [2, 4, 8] {
            let got = ingest_batch(&sources, &cfg, &Executor::new(threads));
            assert_eq!(got.1, base.1, "report differs at {threads} threads");
            assert_eq!(got.0.len(), base.0.len());
            for (a, b) in got.0.iter().zip(&base.0) {
                match (a, b) {
                    (Some(x), Some(y)) => {
                        assert!(x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()));
                    }
                    (None, None) => {}
                    _ => panic!("disposition flip at {threads} threads"),
                }
            }
        }
    }

    #[test]
    fn streaming_matches_dom_path_on_faulted_corpus() {
        // The central parity invariant: a reused StreamingIngest and the
        // per-call DOM path agree on disposition AND profile bits for
        // every faulted source, raw or parsed.
        let gpx = sample_gpx(160);
        let cfg = IngestConfig::default();
        let mut ing = StreamingIngest::new(cfg.clone());
        for seed in [0u64, 21, 33, 77] {
            let plan = FaultPlan::uniform(0.6, seed);
            for i in 0..16 {
                let src = to_source(corrupt_track(&plan, i, &gpx).payload);
                let (dom_d, dom_p) = ingest_one(&src, &cfg);
                let (str_d, str_p) = ing.ingest_source(&src);
                assert_eq!(dom_d, str_d, "disposition diverged (seed {seed}, track {i})");
                match (dom_p, str_p) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.len(), y.len());
                        assert!(
                            x.iter().zip(&y).all(|(p, q)| p.to_bits() == q.to_bits()),
                            "profile bits diverged (seed {seed}, track {i})"
                        );
                    }
                    (None, None) => {}
                    (x, y) => panic!("profile presence diverged: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn streaming_batch_matches_executor_batch() {
        let gpx = sample_gpx(160);
        let plan = FaultPlan::uniform(0.5, 21);
        let sources: Vec<TrackSource> = (0..24)
            .map(|i| to_source(corrupt_track(&plan, i, &gpx).payload))
            .collect();
        let cfg = IngestConfig::default();
        let (dom_profiles, dom_report) = ingest_batch(&sources, &cfg, &Executor::new(4));
        let (str_profiles, str_report) = StreamingIngest::new(cfg).ingest_batch(&sources);
        assert_eq!(dom_report, str_report);
        assert_eq!(dom_profiles.len(), str_profiles.len());
        for (a, b) in dom_profiles.iter().zip(&str_profiles) {
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert!(x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()));
                }
                (None, None) => {}
                _ => panic!("profile presence diverged between batch paths"),
            }
        }
    }

    #[test]
    fn report_accounts_for_every_track() {
        let gpx = sample_gpx(160);
        let plan = FaultPlan::uniform(0.6, 33);
        let sources: Vec<TrackSource> = (0..40)
            .map(|i| to_source(corrupt_track(&plan, i, &gpx).payload))
            .collect();
        let (profiles, report) =
            ingest_batch(&sources, &IngestConfig::default(), &Executor::new(4));
        assert_eq!(report.tracks.len(), 40);
        assert_eq!(report.clean() + report.repaired() + report.quarantined(), 40);
        for (i, t) in report.tracks.iter().enumerate() {
            assert_eq!(t.index, i);
            match &t.disposition {
                Disposition::Quarantined(_) => assert!(profiles[i].is_none()),
                _ => assert_eq!(profiles[i].as_ref().unwrap().len(), t.profile_len),
            }
        }
        let json = report.to_json();
        assert!(json.contains("\"tracks\": 40"));
        assert!(json.contains("\"quarantine_reasons\""));
    }

    #[test]
    fn panicking_repair_quarantines_only_that_track() {
        // A degenerate source that trips an internal panic: exercised
        // through the public batch API via a poisoned closure stand-in.
        // ingest_one itself is total, so simulate by checking try_map
        // integration: a Raw source with garbage is quarantined while
        // neighbours survive.
        let good = TrackSource::Parsed(sample_gpx(100));
        let bad = TrackSource::Raw(vec![0xFF, 0xFE, 0x00, 0x01]);
        let (profiles, report) = ingest_batch(
            &[good.clone(), bad, good],
            &IngestConfig::default(),
            &Executor::new(2),
        );
        assert!(profiles[0].is_some() && profiles[2].is_some());
        assert!(profiles[1].is_none());
        assert_eq!(report.quarantined(), 1);
    }

    #[test]
    fn batch_reports_validate() {
        let good = TrackSource::Parsed(sample_gpx(100));
        let bad = TrackSource::Raw(vec![0xFF, 0xFE, 0x00, 0x01]);
        let (_, report) = ingest_batch(
            &[good.clone(), bad, good],
            &IngestConfig::default(),
            &Executor::new(2),
        );
        report.validate().expect("batch report invariants");
        assert!(IngestReport::default().validate().is_ok());

        // Each bookkeeping violation is named.
        let mut broken = report.clone();
        broken.tracks[1].index = 7;
        assert!(broken.validate().unwrap_err().contains("position 1"));
        let mut broken = report.clone();
        broken.tracks[0].disposition = Disposition::Repaired(vec![]);
        assert!(broken.validate().unwrap_err().contains("no repairs"));
    }

    #[test]
    fn time_seconds_parses_and_orders() {
        let a = time_seconds("2020-01-11T08:00:00Z").unwrap();
        let b = time_seconds("2020-01-11T08:00:01Z").unwrap();
        let c = time_seconds("2020-01-12T08:00:00Z").unwrap();
        assert_eq!(b - a, 1);
        assert_eq!(c - a, 86_400);
        assert_eq!(time_seconds("not a time"), None);
        assert_eq!(time_seconds(""), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ingest_one_is_total_on_arbitrary_bytes(
            bytes in prop::collection::vec(0u32..=255, 0..256),
        ) {
            let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
            let (d, p) = ingest_one(&TrackSource::Raw(bytes), &IngestConfig::default());
            prop_assert_eq!(p.is_none(), matches!(d, Disposition::Quarantined(_)));
        }

        #[test]
        fn streaming_agrees_with_dom_on_arbitrary_bytes(
            bytes in prop::collection::vec(0u32..=255, 0..256),
        ) {
            let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
            let cfg = IngestConfig::default();
            let dom = ingest_one(&TrackSource::Raw(bytes.clone()), &cfg);
            let stream = StreamingIngest::new(cfg).ingest_bytes(&bytes);
            prop_assert_eq!(dom.0, stream.0);
            prop_assert_eq!(dom.1.is_some(), stream.1.is_some());
        }

        #[test]
        fn interpolate_nans_leaves_no_nans_when_anchored(
            mut profile in prop::collection::vec(-100.0f64..4000.0, 2..128),
            holes in prop::collection::vec(0usize..128, 0..32),
        ) {
            for &h in &holes {
                let len = profile.len();
                profile[h % len] = f64::NAN;
            }
            let any_finite = profile.iter().any(|e| e.is_finite());
            interpolate_nans(&mut profile);
            if any_finite {
                prop_assert!(profile.iter().all(|e| e.is_finite()));
            }
        }
    }
}
