//! The spectral-feature baseline the paper dismisses.
//!
//! §I: "Establishing that simple features of elevation profiles, e.g.,
//! spectral features, are insufficient, we devise ... text-like ... and
//! image-like representation(s)". This module implements that rejected
//! baseline so the claim is reproducible: profiles are resampled to a
//! power-of-two length, transformed with a from-scratch radix-2 FFT,
//! and summarized as magnitude spectra plus basic route statistics.
//! The `ablation_spectral_baseline` bench compares it against the
//! paper's representations.

use imgrep::resample_mean;

/// In-place radix-2 Cooley–Tukey FFT over `(re, im)` pairs.
///
/// # Panics
///
/// Panics unless the length is a power of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let even = start + k;
                let odd = start + k + len / 2;
                let tr = re[odd] * cr - im[odd] * ci;
                let ti = re[odd] * ci + im[odd] * cr;
                re[odd] = re[even] - tr;
                im[odd] = im[even] - ti;
                re[even] += tr;
                im[even] += ti;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
}

/// Number of resampled points fed to the FFT.
pub const SPECTRAL_POINTS: usize = 128;

/// Extracts the baseline feature vector for one profile:
/// `[mean, std, min, max, total ascent, total descent]` followed by the
/// first `SPECTRAL_POINTS / 2` FFT magnitudes of the mean-removed
/// signal, L2-normalized.
///
/// Empty profiles map to the zero vector.
pub fn spectral_features(profile: &[f64]) -> Vec<f32> {
    let dim = 6 + SPECTRAL_POINTS / 2;
    if profile.is_empty() {
        return vec![0.0; dim];
    }
    let resampled = resample_mean(profile, SPECTRAL_POINTS);
    let n = resampled.len() as f64;
    let mean = resampled.iter().sum::<f64>() / n;
    let var = resampled.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let min = resampled.iter().copied().fold(f64::INFINITY, f64::min);
    let max = resampled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (mut ascent, mut descent) = (0.0f64, 0.0f64);
    for w in resampled.windows(2) {
        let d = w[1] - w[0];
        if d > 0.0 {
            ascent += d;
        } else {
            descent -= d;
        }
    }

    let mut re: Vec<f64> = resampled.iter().map(|v| v - mean).collect();
    let mut im = vec![0.0f64; re.len()];
    fft(&mut re, &mut im);
    let mut features = vec![
        mean as f32,
        var.sqrt() as f32,
        min as f32,
        max as f32,
        ascent as f32,
        descent as f32,
    ];
    for k in 0..SPECTRAL_POINTS / 2 {
        features.push((re[k] * re[k] + im[k] * im[k]).sqrt() as f32);
    }
    // L2 normalization keeps the scales comparable across profiles.
    let norm: f32 = features.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        for f in &mut features {
            *f /= norm;
        }
    }
    features
}

/// Runs the same k-fold evaluation as [`crate::text::evaluate_text`],
/// but over the spectral baseline features — reproducing the paper's
/// negative result that these are weaker than the devised
/// representations.
pub fn evaluate_spectral(
    ds: &datasets::Dataset,
    model: crate::text::TextModel,
    cfg: &crate::text::TextAttackConfig,
) -> evalkit::FoldSummary {
    assert!(ds.n_classes() >= 2, "need at least two classes");
    let features: Vec<Vec<f32>> =
        ds.samples().iter().map(|s| spectral_features(&s.elevation)).collect();
    let labels = ds.labels();
    let folds = datasets::split::stratified_k_fold(&labels, cfg.folds, cfg.seed);
    evalkit::evaluate_folds(&labels, ds.n_classes(), &folds, |train, test| {
        // Spectral rows are short and dense, so they keep the dense view.
        let xt = sparsemat::FeatureMatrix::Dense(
            train.iter().map(|&i| features[i].clone()).collect(),
        );
        let yt: Vec<u32> = train.iter().map(|&i| labels[i]).collect();
        let mut fitted =
            crate::text::FittedTextModel::fit(model, &xt, &yt, cfg, cfg.seed ^ 0x5bec);
        let xs = sparsemat::FeatureMatrix::Dense(
            test.iter().map(|&i| features[i].clone()).collect(),
        );
        fitted.predict(&xs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12, "re[{k}] = {}", re[k]);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_detects_a_pure_tone() {
        let n = 64;
        let mut re: Vec<f64> =
            (0..n).map(|t| (2.0 * std::f64::consts::PI * 5.0 * t as f64 / n as f64).cos()).collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let mags: Vec<f64> =
            re.iter().zip(&im).map(|(r, i)| (r * r + i * i).sqrt()).collect();
        let peak = mags
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 5);
    }

    #[test]
    fn fft_matches_parseval() {
        let n = 32;
        let sig: Vec<f64> = (0..n).map(|t| ((t * t) % 13) as f64 - 6.0).collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let time_energy: f64 = sig.iter().map(|v| v * v).sum();
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        fft(&mut [0.0; 6], &mut [0.0; 6]);
    }

    #[test]
    fn features_have_fixed_dimension_and_unit_norm() {
        let profile: Vec<f64> = (0..300).map(|t| 100.0 + (t as f64 * 0.1).sin() * 20.0).collect();
        let f = spectral_features(&profile);
        assert_eq!(f.len(), 6 + SPECTRAL_POINTS / 2);
        let norm: f32 = f.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_profile_is_zero_vector() {
        let f = spectral_features(&[]);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn flat_and_hilly_profiles_differ() {
        let flat = spectral_features(&vec![5.0; 200]);
        let hilly: Vec<f64> = (0..200).map(|t| 5.0 + (t as f64 * 0.5).sin() * 50.0).collect();
        let hilly = spectral_features(&hilly);
        let dist: f32 =
            flat.iter().zip(&hilly).map(|(a, b)| (a - b).powi(2)).sum::<f32>().sqrt();
        assert!(dist > 0.1);
    }
}
