//! Accuracy-vs-population scale sweeps over the sharded corpus.
//!
//! The paper measures its attacks against paper-scale candidate pools
//! (hundreds of tracks, 10 cities), which leaves open the realism
//! question: how does location leakage degrade as the candidate
//! population grows toward fitness-app scale? This module answers it
//! with the two big-corpus substrates:
//!
//! - [`routegen::PopulationConfig`] streams millions of synthetic
//!   athletes shard-by-shard under a fixed seed tree (prefix-stable,
//!   so every population size is a prefix of the next);
//! - [`featstore`] persists each shard's BoW features once, as
//!   checksummed CSR records, so repeated sweeps stream from disk
//!   instead of re-featurizing.
//!
//! The attack at scale is *re-identification*: the adversary holds the
//! feature rows of every candidate athlete's history and observes one
//! fresh elevation profile (the probe — the athlete's next activity,
//! drawn from the same seed tree). Nearest-neighbour cosine matching
//! over the stored rows then scores two threat models at once:
//!
//! - **TM-1 (athlete)**: does the best match belong to the probe's
//!   athlete? (top-1 / top-3) — the user-level attack, which must
//!   degrade as the candidate pool grows;
//! - **TM-3 (city)**: does the best match come from the probe's home
//!   city? — the city-level attack, which stays comparatively flat
//!   because city relief is population-independent.
//!
//! The scan is shard-parallel on the two-level `exec` budget and
//! bit-identical at any thread count and shard order: per-row scores
//! are pure, per-shard partials are merged in shard order, and ties
//! break on `(score, athlete)` with total ordering.

use annindex::AnnIndex;
use exec::Executor;
use featstore::{
    FeatureStore, RowBuf, ShardEntry, ShardWriter, StoreError, StoreManifest, MANIFEST,
};
use routegen::PopulationConfig;
use sparsemat::{dot_sorted, SparseVec};
use std::path::{Path, PathBuf};
use textrep::{Discretizer, FeatureSelection};

/// The fixed featurization every scale corpus uses: the paper's
/// user-dataset setting (plain floor discretization, 4-grams,
/// standard selection), fitted once on shard 0 — a prefix of every
/// population size, so the vocabulary never depends on how large the
/// sweep is.
pub const SCALE_NGRAM: usize = 4;

/// Domain separator mixed into the store fingerprint for the
/// featurization config.
const FEAT_DOMAIN: u64 = 0xFEA7_5702;

/// IVF matching knobs (the sweep runs the exact brute-force scan when
/// these are absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnSettings {
    /// Centroids trained on shard-0 rows (`ELEV_ANN_CENTROIDS`).
    pub centroids: usize,
    /// Posting lists scanned per probe (`ELEV_ANN_NPROBE`).
    pub nprobe: usize,
}

impl Default for AnnSettings {
    fn default() -> Self {
        Self { centroids: 64, nprobe: 8 }
    }
}

/// Configuration of a scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// The population (its `athletes` field is the largest sweep size).
    pub population: PopulationConfig,
    /// Ascending candidate-pool sizes (athlete counts); the sweep
    /// reports one point per size.
    pub pop_sizes: Vec<usize>,
    /// Probe athletes drawn per city, stratified, from ids below the
    /// smallest population size (so every probe is a candidate at
    /// every size).
    pub probes_per_city: usize,
    /// Feature-store directory.
    pub store_dir: PathBuf,
    /// `Some` switches matching to the IVF index (with recall@3
    /// accounting against the exact scan); `None` is the exact path.
    pub ann: Option<AnnSettings>,
}

impl ScaleConfig {
    /// A sweep over `athletes` candidates rooted at `seed`, with the
    /// canonical half-decade size ladder and a `target/featstore`
    /// store (override via [`from_env`](Self::from_env)).
    pub fn new(athletes: usize, seed: u64) -> Self {
        Self {
            population: PopulationConfig::new(athletes, seed),
            pop_sizes: population_ladder(athletes),
            probes_per_city: 8,
            store_dir: PathBuf::from("target/featstore"),
            ann: None,
        }
    }

    /// Reads the scale knobs: `ELEV_POP_SIZE` (total athletes, default
    /// 10 000), `ELEV_SHARD_SIZE` (athletes per shard, default 1024),
    /// `ELEV_STORE_DIR` (store path, default `target/featstore`),
    /// `ELEV_ANN` (`1` switches matching to the IVF index),
    /// `ELEV_ANN_CENTROIDS` / `ELEV_ANN_NPROBE` (index shape,
    /// defaults 64 / 8).
    pub fn from_env(seed: u64) -> Self {
        let athletes = exec::env_budget("ELEV_POP_SIZE", || 10_000);
        let shard_size = exec::env_budget("ELEV_SHARD_SIZE", || 1_024);
        let mut cfg = Self::new(athletes, seed);
        cfg.population.shard_size = shard_size;
        if let Ok(dir) = std::env::var("ELEV_STORE_DIR") {
            if !dir.trim().is_empty() {
                cfg.store_dir = PathBuf::from(dir);
            }
        }
        let ann_on = std::env::var("ELEV_ANN")
            .map(|v| matches!(v.trim(), "1" | "true" | "yes" | "on"))
            .unwrap_or(false);
        if ann_on {
            let defaults = AnnSettings::default();
            cfg.ann = Some(AnnSettings {
                centroids: exec::env_budget("ELEV_ANN_CENTROIDS", || defaults.centroids),
                nprobe: exec::env_budget("ELEV_ANN_NPROBE", || defaults.nprobe),
            });
        }
        cfg
    }

    /// The store fingerprint: population config plus featurization
    /// config, so a store built for a different corpus or vocabulary
    /// is never silently reused. Built on the population's *prefix*
    /// fingerprint — the athlete count is deliberately excluded, so a
    /// grown population appends shards to its store instead of
    /// rebuilding it (the manifest's own `athletes` field guards the
    /// size).
    pub fn store_fingerprint(&self) -> u64 {
        exec::mix_seed(self.population.prefix_fingerprint() ^ FEAT_DOMAIN, SCALE_NGRAM as u64)
    }
}

/// The canonical 1–3 half-decade ladder capped at `max`:
/// `100, 300, 1000, 3000, …, max` (always ends exactly at `max`).
pub fn population_ladder(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut d = 100usize;
    loop {
        for s in [d, 3 * d] {
            if s < max {
                sizes.push(s);
            }
        }
        if 10 * d > max {
            break;
        }
        d *= 10;
    }
    if sizes.last() != Some(&max) {
        sizes.push(max);
    }
    sizes
}

fn fit_pipeline(pop: &PopulationConfig) -> crate::featcache::SharedPipeline {
    let terrain = pop.terrain();
    let shard0 = pop.generate_shard(&terrain, 0);
    let profiles: Vec<Vec<f64>> = shard0
        .athletes
        .iter()
        .flat_map(|a| &a.activities)
        .map(|act| act.elevation_profile())
        .collect();
    crate::featcache::pipeline_for(
        &profiles,
        Discretizer::Floor,
        SCALE_NGRAM,
        FeatureSelection::standard(),
    )
}

/// Outcome of [`build_store`]: shape of the published store and
/// whether an existing build was reused or grown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreBuildReport {
    /// Feature-space width.
    pub n_cols: usize,
    /// Total feature rows (tracks) across all shards.
    pub rows: u64,
    /// Number of shards.
    pub shards: usize,
    /// Total shard-file bytes.
    pub bytes: u64,
    /// `true` when a matching published store was reused as-is.
    pub reused: bool,
    /// Shards appended to an existing store (0 on reuse or rebuild).
    pub appended: usize,
}

/// Featurizes one population shard through `pipeline` into a shard
/// writer, returning its publish metadata.
fn featurize_shard(
    cfg: &ScaleConfig,
    pipeline: &crate::featcache::SharedPipeline,
    terrain: &terrain::SyntheticTerrain,
    n_cols: usize,
    fingerprint: u64,
    s: usize,
) -> Result<featstore::ShardMeta, StoreError> {
    let shard = cfg.population.generate_shard(terrain, s);
    let mut w = ShardWriter::create(&cfg.store_dir, s, n_cols as u64, fingerprint)?;
    for athlete in &shard.athletes {
        for (ai, act) in athlete.activities.iter().enumerate() {
            let sv = pipeline.pipeline().transform_sparse(&act.elevation_profile());
            w.append_row(
                athlete.habits.id,
                athlete.habits.city_index as u32,
                ai as u32,
                sv.indices(),
                sv.values(),
            )?;
        }
    }
    w.finish()
}

fn store_report(m: &StoreManifest, dir: &Path, reused: bool, appended: usize) -> StoreBuildReport {
    StoreBuildReport {
        n_cols: m.n_cols as usize,
        rows: m.shards.iter().map(|s| s.rows).sum(),
        shards: m.shards.len(),
        bytes: m
            .shards
            .iter()
            .filter_map(|s| std::fs::metadata(dir.join(&s.file)).ok())
            .map(|md| md.len())
            .sum(),
        reused,
        appended,
    }
}

/// Featurizes the population shard-parallel into `cfg.store_dir`,
/// computing each shard once: a published store whose manifest matches
/// the config fingerprint is reused as-is when the athlete count
/// matches, and **grown in place** when the population is a larger
/// extension of it — only the new shards are generated and
/// featurized (the vocabulary is fitted on shard 0, which appends
/// never touch), and the manifest generation bumps via the
/// crash-safe append path.
///
/// # Errors
///
/// Any [`StoreError`] from shard writing or manifest publishing.
pub fn build_store(cfg: &ScaleConfig, exec: &Executor) -> Result<StoreBuildReport, StoreError> {
    let pop = &cfg.population;
    let fingerprint = cfg.store_fingerprint();
    if let Ok(mut store) = FeatureStore::open(&cfg.store_dir) {
        let m = store.manifest().clone();
        let compatible = m.config == fingerprint && m.shard_size == pop.shard_size as u64;
        if compatible && m.athletes == pop.athletes as u64 {
            return Ok(store_report(&m, &cfg.store_dir, true, 0));
        }
        // Grow in place: the published store must be a whole-shard
        // prefix of the target population (a partial last shard would
        // have to be rewritten, which the append path refuses).
        if compatible
            && m.athletes < pop.athletes as u64
            && m.athletes % m.shard_size == 0
            && m.shards.len() * pop.shard_size == m.athletes as usize
        {
            let pipeline = fit_pipeline(pop);
            let n_cols = pipeline.pipeline().n_features();
            if n_cols as u64 == m.n_cols {
                let terrain = pop.terrain();
                let new_ids: Vec<usize> = (m.shards.len()..pop.n_shards()).collect();
                let metas = exec.map(&new_ids, |_, &s| {
                    featurize_shard(cfg, &pipeline, &terrain, n_cols, fingerprint, s)
                });
                let metas: Vec<featstore::ShardMeta> =
                    metas.into_iter().collect::<Result<_, _>>()?;
                store.append_shards(fingerprint, pop.athletes as u64, &metas)?;
                return Ok(store_report(
                    store.manifest(),
                    &cfg.store_dir,
                    false,
                    metas.len(),
                ));
            }
        }
    }
    std::fs::create_dir_all(&cfg.store_dir).map_err(|e| StoreError::Io(e.to_string()))?;

    let pipeline = fit_pipeline(pop);
    let n_cols = pipeline.pipeline().n_features();
    let terrain = pop.terrain();
    let shard_ids: Vec<usize> = (0..pop.n_shards()).collect();
    let metas = exec.map(&shard_ids, |_, &s| {
        featurize_shard(cfg, &pipeline, &terrain, n_cols, fingerprint, s)
    });
    let metas: Vec<featstore::ShardMeta> = metas.into_iter().collect::<Result<_, _>>()?;

    let manifest = StoreManifest {
        config: fingerprint,
        n_cols: n_cols as u64,
        shard_size: pop.shard_size as u64,
        athletes: pop.athletes as u64,
        generation: 1,
        shards: metas
            .iter()
            .enumerate()
            .map(|(i, m)| ShardEntry { index: i, file: m.file.clone(), rows: m.rows })
            .collect(),
    };
    FeatureStore::publish_manifest(&cfg.store_dir, &manifest)?;
    Ok(StoreBuildReport {
        n_cols,
        rows: metas.iter().map(|m| m.rows).sum(),
        shards: metas.len(),
        bytes: metas.iter().map(|m| m.bytes).sum(),
        reused: false,
        appended: 0,
    })
}

/// One probe: a fresh (held-out) activity of a candidate athlete.
#[derive(Debug, Clone)]
struct Probe {
    athlete: u64,
    city: u32,
    features: SparseVec,
    norm: f32,
}

/// One candidate hit during matching.
#[derive(Debug, Clone, Copy)]
struct Hit {
    score: f32,
    athlete: u64,
    city: u32,
}

/// Total, deterministic hit ordering: score desc, then athlete asc.
fn hit_before(a: &Hit, b: &Hit) -> bool {
    match a.score.total_cmp(&b.score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.athlete < b.athlete,
    }
}

/// Inserts `hit` into a top-k list of *distinct athletes* (an
/// athlete's best-scoring track represents them).
fn push_topk(top: &mut Vec<Hit>, hit: Hit, k: usize) {
    if let Some(existing) = top.iter_mut().find(|h| h.athlete == hit.athlete) {
        if hit_before(&hit, existing) {
            *existing = hit;
        }
    } else {
        top.push(hit);
    }
    top.sort_by(|a, b| if hit_before(a, b) { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater });
    top.truncate(k);
}

fn l2(values: &[f32]) -> f32 {
    values.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Width of the vocabulary-overlap bloom signature, in 64-bit words.
const BLOOM_WORDS: usize = 8;

/// A probe's overlap signature: feature-index range plus a 512-bit
/// bloom over its indices. A row whose signature shares no range and
/// no bloom bit with a probe provably has zero vocabulary overlap, so
/// its dot product is exactly zero — which the scan discards anyway.
/// The prefilter therefore only skips work, never changes output.
struct OverlapSig {
    first: u32,
    last: u32,
    bloom: [u64; BLOOM_WORDS],
}

impl OverlapSig {
    fn new(indices: &[u32]) -> Self {
        let mut bloom = [0u64; BLOOM_WORDS];
        for &i in indices {
            bloom[(i as usize >> 6) % BLOOM_WORDS] |= 1u64 << (i & 63);
        }
        Self {
            first: indices.first().copied().unwrap_or(u32::MAX),
            last: indices.last().copied().unwrap_or(0),
            bloom,
        }
    }

    fn may_overlap(&self, other: &Self) -> bool {
        if self.first > other.last || other.first > self.last {
            return false;
        }
        self.bloom.iter().zip(&other.bloom).any(|(a, b)| a & b != 0)
    }
}

/// First population-size index that includes `athlete`
/// (`sizes.len()` when none does) — the branchless replacement for
/// the linear `position` probe the scan used to run per row.
fn first_size_index(sizes: &[usize], athlete: u64) -> usize {
    sizes.partition_point(|&s| s as u64 <= athlete)
}

/// Folds per-bucket row counts into cumulative per-size track counts
/// (a row first counted at size `i` is present at every size `>= i`).
fn cumulative_tracks(buckets: &[u64]) -> Vec<u64> {
    buckets
        .iter()
        .scan(0u64, |acc, &b| {
            *acc += b;
            Some(*acc)
        })
        .collect()
}

/// One accuracy point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Candidate-pool size (athletes).
    pub athletes: usize,
    /// History tracks in the pool at this size.
    pub tracks: u64,
    /// TM-1: probe matched to its own athlete, top-1.
    pub tm1_top1: f64,
    /// TM-1: probe's athlete within the top-3 distinct candidates.
    pub tm1_top3: f64,
    /// TM-3: best match shares the probe's home city.
    pub tm3_top1: f64,
}

/// IVF accounting attached to an ANN-mode sweep: how much of the scan
/// was avoided, and what that cost in recall against the exact path.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnInfo {
    /// Centroids requested (`ELEV_ANN_CENTROIDS`).
    pub centroids: usize,
    /// Posting lists scanned per probe (`ELEV_ANN_NPROBE`).
    pub nprobe: usize,
    /// Candidate `(probe, row)` pairs the IVF scan rescored.
    pub rows_scanned: u64,
    /// Pairs the exact scan would have considered
    /// (`probes x candidate rows` at the largest size).
    pub rows_total: u64,
    /// Per-point recall@3 of the ANN hit lists against the exact
    /// scan's, aligned with `points`.
    pub recall3: Vec<f64>,
}

/// The full sweep result (one JSON artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Master seed.
    pub seed: u64,
    /// Athletes per shard.
    pub shard_size: usize,
    /// Feature-space width.
    pub n_cols: usize,
    /// Total feature rows in the store.
    pub store_rows: u64,
    /// Probe count (stratified across cities).
    pub probes: usize,
    /// One point per population size, ascending.
    pub points: Vec<ScalePoint>,
    /// IVF accounting — `None` in exact mode, whose JSON rendering is
    /// byte-identical to builds that predate the index.
    pub ann: Option<AnnInfo>,
}

impl ScaleReport {
    /// Stable machine-readable rendering (consumed by `verify.sh` and
    /// committed as the experiment artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"suite\": \"scale_population\", \"seed\": {}, \"shard_size\": {}, \
             \"n_cols\": {}, \"store_rows\": {}, \"probes\": {}, \"points\": [",
            self.seed, self.shard_size, self.n_cols, self.store_rows, self.probes
        ));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"athletes\": {}, \"tracks\": {}, \"tm1_top1\": {:.6}, \
                 \"tm1_top3\": {:.6}, \"tm3_top1\": {:.6}}}",
                p.athletes, p.tracks, p.tm1_top1, p.tm1_top3, p.tm3_top1
            ));
        }
        out.push(']');
        if let Some(ann) = &self.ann {
            out.push_str(&format!(
                ", \"ann\": {{\"centroids\": {}, \"nprobe\": {}, \"rows_scanned\": {}, \
                 \"rows_total\": {}, \"recall3\": [",
                ann.centroids, ann.nprobe, ann.rows_scanned, ann.rows_total
            ));
            for (i, r) in ann.recall3.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{r:.6}"));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Builds the stratified probe set: for each city, the first
/// `probes_per_city` athletes (by global id) living there among ids
/// below the smallest population size; each contributes their *next*
/// activity beyond the stored history.
fn build_probes(cfg: &ScaleConfig, pipeline: &crate::featcache::SharedPipeline) -> Vec<Probe> {
    let pop = &cfg.population;
    let terrain = pop.terrain();
    let min_size = *cfg.pop_sizes.first().expect("at least one population size") as u64;
    let mut per_city = vec![0usize; pop.cities.len()];
    let mut picks = Vec::new();
    for id in 0..min_size.min(pop.athletes as u64) {
        let habits = pop.habits(id);
        if per_city[habits.city_index] < cfg.probes_per_city {
            per_city[habits.city_index] += 1;
            picks.push(habits);
        }
    }
    picks
        .into_iter()
        .map(|habits| {
            let mut acts =
                pop.athlete_activities(&terrain, habits.id, habits.weekly_cadence + 1);
            let probe_act = acts.pop().expect("cadence + 1 activities");
            let features = pipeline.pipeline().transform_sparse(&probe_act.elevation_profile());
            let norm = l2(features.values());
            Probe { athlete: habits.id, city: habits.city_index as u32, features, norm }
        })
        .collect()
}

/// Per-probe, per-population-size top-3 hit lists.
type TopHits = Vec<Vec<Vec<Hit>>>;

/// Scans one shard exactly: for every probe and every population
/// size, the top-3 distinct-athlete hits among the shard's rows with
/// `athlete < size`, plus the shard's per-size row counts.
///
/// Two pruning steps keep the inner loop cheap without changing a
/// single output bit: the size bucket is a binary search folded into
/// a cumulative counter (instead of a linear probe per row), and the
/// [`OverlapSig`] prefilter skips probes that provably share no
/// vocabulary with the row (their dot is exactly zero, which the
/// `dot <= 0` gate discarded anyway).
fn scan_shard(
    store: &FeatureStore,
    shard: usize,
    probes: &[Probe],
    sigs: &[OverlapSig],
    sizes: &[usize],
    row: &mut RowBuf,
) -> Result<(TopHits, Vec<u64>), StoreError> {
    let mut top: TopHits = vec![vec![Vec::with_capacity(4); sizes.len()]; probes.len()];
    let mut buckets = vec![0u64; sizes.len()];
    let mut reader = store.reader(shard)?;
    while reader.next_row(row)? {
        let first_size = first_size_index(sizes, row.athlete);
        if first_size == sizes.len() {
            continue;
        }
        buckets[first_size] += 1;
        let row_norm = l2(&row.values);
        if row_norm == 0.0 {
            continue;
        }
        let row_sig = OverlapSig::new(&row.indices);
        for (pi, probe) in probes.iter().enumerate() {
            if !sigs[pi].may_overlap(&row_sig) {
                continue;
            }
            let dot = dot_sorted(
                probe.features.indices(),
                probe.features.values(),
                &row.indices,
                &row.values,
            );
            if dot <= 0.0 {
                continue;
            }
            let hit =
                Hit { score: dot / (probe.norm * row_norm), athlete: row.athlete, city: row.city };
            for per_size in top[pi].iter_mut().skip(first_size) {
                push_topk(per_size, hit, 3);
            }
        }
    }
    Ok((top, cumulative_tracks(&buckets)))
}

/// Scans one shard through the IVF index: for every probe, only the
/// rows in the probe's `nprobe` closest posting lists are rescored
/// with the exact dot product. Track counts still come from *all*
/// posting entries (every row lands in exactly one list), so they are
/// identical to the exact scan's. Returns the candidate `(probe,
/// row)` pairs rescored, the sublinearity evidence.
fn scan_shard_ann(
    store: &FeatureStore,
    index: &AnnIndex,
    shard: usize,
    probes: &[Probe],
    probe_lists: &[Vec<u32>],
    sizes: &[usize],
    row: &mut RowBuf,
) -> Result<(TopHits, Vec<u64>, u64), StoreError> {
    let mut top: TopHits = vec![vec![Vec::with_capacity(4); sizes.len()]; probes.len()];
    let mut buckets = vec![0u64; sizes.len()];
    let lists = index.postings(shard)?;

    // Invert probe -> centroid selections so each candidate row is
    // read once and rescored only against interested probes.
    let mut interested: Vec<Vec<u32>> = vec![Vec::new(); lists.len()];
    for (pi, tops) in probe_lists.iter().enumerate() {
        for &c in tops {
            interested[c as usize].push(pi as u32);
        }
    }

    for list in &lists {
        for e in list {
            let first_size = first_size_index(sizes, e.athlete);
            if first_size < sizes.len() {
                buckets[first_size] += 1;
            }
        }
    }

    let mut reader = store.reader(shard)?;
    let mut scanned = 0u64;
    for (c, list) in lists.iter().enumerate() {
        if interested[c].is_empty() {
            continue;
        }
        for e in list {
            let first_size = first_size_index(sizes, e.athlete);
            if first_size == sizes.len() || e.norm == 0.0 {
                continue;
            }
            reader.read_row_at(e.offset, row)?;
            for &pi in &interested[c] {
                scanned += 1;
                let probe = &probes[pi as usize];
                let dot = dot_sorted(
                    probe.features.indices(),
                    probe.features.values(),
                    &row.indices,
                    &row.values,
                );
                if dot <= 0.0 {
                    continue;
                }
                let hit =
                    Hit { score: dot / (probe.norm * e.norm), athlete: e.athlete, city: e.city };
                for per_size in top[pi as usize].iter_mut().skip(first_size) {
                    push_topk(per_size, hit, 3);
                }
            }
        }
    }
    Ok((top, cumulative_tracks(&buckets), scanned))
}

/// Runs the accuracy-vs-population sweep, shard-parallel, streaming
/// features from the published store ([`build_store`] runs first and
/// reuses a matching store).
///
/// # Errors
///
/// Any [`StoreError`] from the store build or the shard scans.
///
/// # Panics
///
/// Panics if `cfg.pop_sizes` is empty.
pub fn scale_sweep(cfg: &ScaleConfig, exec: &Executor) -> Result<ScaleReport, StoreError> {
    assert!(!cfg.pop_sizes.is_empty(), "sweep needs at least one population size");
    let build = build_store(cfg, exec)?;
    let store = FeatureStore::open(&cfg.store_dir)?;
    let pipeline = fit_pipeline(&cfg.population);
    let probes = build_probes(cfg, &pipeline);
    let sizes = &cfg.pop_sizes;

    let sigs: Vec<OverlapSig> =
        probes.iter().map(|p| OverlapSig::new(p.features.indices())).collect();

    let shard_ids: Vec<usize> = (0..store.manifest().shards.len()).collect();
    let partials = exec.map_with(
        &shard_ids,
        RowBuf::default,
        |row, _, &s| scan_shard(&store, s, &probes, &sigs, sizes, row),
    );
    let (exact_top, tracks) = merge_partials(partials, probes.len(), sizes.len())?;

    // ANN mode scans through the IVF index and keeps the exact pass
    // above as the recall reference; exact mode reports it directly.
    let (merged, ann) = match cfg.ann {
        None => (exact_top, None),
        Some(settings) => {
            let (index, _) =
                AnnIndex::ensure(&store, settings.centroids, cfg.population.seed, exec)?;
            let probe_lists: Vec<Vec<u32>> = probes
                .iter()
                .map(|p| {
                    index.codebook().top_centroids(
                        p.features.indices(),
                        p.features.values(),
                        settings.nprobe,
                    )
                })
                .collect();
            let ann_partials = exec.map_with(
                &shard_ids,
                RowBuf::default,
                |row, _, &s| scan_shard_ann(&store, &index, s, &probes, &probe_lists, sizes, row),
            );
            let mut rows_scanned = 0u64;
            let plain = ann_partials
                .into_iter()
                .map(|p| {
                    p.map(|(top, shard_tracks, scanned)| {
                        rows_scanned += scanned;
                        (top, shard_tracks)
                    })
                })
                .collect();
            let (ann_top, ann_tracks) = merge_partials(plain, probes.len(), sizes.len())?;
            debug_assert_eq!(ann_tracks, tracks, "posting lists must cover every row");
            let recall3 = (0..sizes.len())
                .map(|si| {
                    let sum: f64 = (0..probes.len())
                        .map(|pi| {
                            let exact = &exact_top[pi][si];
                            if exact.is_empty() {
                                return 1.0;
                            }
                            let kept = exact
                                .iter()
                                .filter(|h| {
                                    ann_top[pi][si].iter().any(|a| a.athlete == h.athlete)
                                })
                                .count();
                            kept as f64 / exact.len() as f64
                        })
                        .sum();
                    sum / probes.len().max(1) as f64
                })
                .collect();
            let info = AnnInfo {
                centroids: settings.centroids,
                nprobe: settings.nprobe,
                rows_scanned,
                rows_total: probes.len() as u64 * tracks.last().copied().unwrap_or(0),
                recall3,
            };
            (ann_top, Some(info))
        }
    };

    let points = sizes
        .iter()
        .enumerate()
        .map(|(si, &size)| {
            let (mut t1, mut t3, mut c1) = (0usize, 0usize, 0usize);
            for (pi, probe) in probes.iter().enumerate() {
                let top = &merged[pi][si];
                if top.first().is_some_and(|h| h.athlete == probe.athlete) {
                    t1 += 1;
                }
                if top.iter().any(|h| h.athlete == probe.athlete) {
                    t3 += 1;
                }
                if top.first().is_some_and(|h| h.city == probe.city) {
                    c1 += 1;
                }
            }
            let n = probes.len().max(1) as f64;
            ScalePoint {
                athletes: size,
                tracks: tracks[si],
                tm1_top1: t1 as f64 / n,
                tm1_top3: t3 as f64 / n,
                tm3_top1: c1 as f64 / n,
            }
        })
        .collect();

    Ok(ScaleReport {
        seed: cfg.population.seed,
        shard_size: cfg.population.shard_size,
        n_cols: build.n_cols,
        store_rows: build.rows,
        probes: probes.len(),
        points,
        ann,
    })
}

/// Merges per-shard scan partials in shard index order, giving the
/// same hit lists and track counts at any thread count.
fn merge_partials(
    partials: Vec<Result<(TopHits, Vec<u64>), StoreError>>,
    n_probes: usize,
    n_sizes: usize,
) -> Result<(TopHits, Vec<u64>), StoreError> {
    let mut merged: TopHits = vec![vec![Vec::with_capacity(4); n_sizes]; n_probes];
    let mut tracks = vec![0u64; n_sizes];
    for partial in partials {
        let (top, shard_tracks) = partial?;
        for (si, t) in shard_tracks.iter().enumerate() {
            tracks[si] += t;
        }
        for (pi, per_probe) in top.into_iter().enumerate() {
            for (si, hits) in per_probe.into_iter().enumerate() {
                for h in hits {
                    push_topk(&mut merged[pi][si], h, 3);
                }
            }
        }
    }
    Ok((merged, tracks))
}

/// Regenerates every population shard and returns its fingerprint —
/// the digest surface the `scale` verify tier diffs across thread
/// counts and regeneration orders.
pub fn shard_fingerprints(pop: &PopulationConfig, exec: &Executor) -> Vec<u64> {
    let terrain = pop.terrain();
    let shard_ids: Vec<usize> = (0..pop.n_shards()).collect();
    exec.map(&shard_ids, |_, &s| pop.generate_shard(&terrain, s).fingerprint())
}

/// Removes a store directory if (and only if) it looks like one —
/// refuses paths without a parseable manifest so a mistyped
/// `ELEV_STORE_DIR` never deletes unrelated data.
///
/// # Errors
///
/// [`StoreError::Malformed`] when the directory exists but has no
/// valid manifest; [`StoreError::Io`] on removal failure.
pub fn remove_store(dir: &Path) -> Result<(), StoreError> {
    if !dir.exists() {
        return Ok(());
    }
    if FeatureStore::open(dir).is_err() {
        return Err(StoreError::Malformed(format!(
            "{} does not contain a feature-store manifest ({MANIFEST}); refusing to remove",
            dir.display()
        )));
    }
    std::fs::remove_dir_all(dir).map_err(|e| StoreError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(tag: &str, athletes: usize) -> ScaleConfig {
        let mut cfg = ScaleConfig::new(athletes, 77);
        cfg.population.shard_size = 8;
        cfg.pop_sizes = vec![athletes / 2, athletes];
        cfg.probes_per_city = 2;
        cfg.store_dir = std::env::temp_dir()
            .join(format!("elev-scale-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
        cfg
    }

    #[test]
    fn ladder_is_half_decade_and_capped() {
        assert_eq!(population_ladder(10_000), vec![100, 300, 1_000, 3_000, 10_000]);
        assert_eq!(
            population_ladder(1_000_000),
            vec![100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000]
        );
        assert_eq!(population_ladder(2_500), vec![100, 300, 1_000, 2_500]);
        assert_eq!(population_ladder(50), vec![50]);
    }

    #[test]
    fn store_builds_streams_and_reuses() {
        let cfg = tiny_cfg("build", 24);
        let exec = Executor::new(2);
        let build = build_store(&cfg, &exec).expect("build");
        assert!(!build.reused);
        assert_eq!(build.shards, 3);
        assert!(build.rows >= 24, "each athlete contributes >= 1 track");

        // Every row must stream back clean and in ascending athlete order.
        let store = FeatureStore::open(&cfg.store_dir).expect("open");
        let mut row = RowBuf::default();
        let mut seen = 0u64;
        let mut last = None::<u64>;
        for s in 0..build.shards {
            let mut r = store.reader(s).expect("reader");
            while r.next_row(&mut row).expect("row") {
                assert!(last.is_none_or(|l| row.athlete >= l), "rows out of order");
                last = Some(row.athlete);
                seen += 1;
            }
        }
        assert_eq!(seen, build.rows);

        // A second build reuses the published store untouched.
        let again = build_store(&cfg, &exec).expect("rebuild");
        assert!(again.reused);
        assert_eq!((again.rows, again.n_cols), (build.rows, build.n_cols));
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn sweep_is_thread_and_order_invariant() {
        let cfg = tiny_cfg("sweep", 24);
        let base = scale_sweep(&cfg, &Executor::new(1)).expect("sweep t1");
        let wide = scale_sweep(&cfg, &Executor::new(4)).expect("sweep t4");
        assert_eq!(base, wide, "sweep must be bit-identical at any thread count");
        assert_eq!(base.points.len(), 2);
        // Larger pools can only keep or lose TM-1 accuracy, and the
        // smaller pool's tracks are a strict subset.
        assert!(base.points[0].tracks <= base.points[1].tracks);
        assert!(base.points[0].tm1_top1 >= base.points[1].tm1_top1 - 1e-12);
        let json = base.to_json();
        assert!(json.contains("\"points\": ["));
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn probes_reidentify_in_small_pools() {
        // With a handful of athletes, favourite-route reuse should let
        // cosine matching re-identify most probes — the attack has to
        // actually work before its degradation curve means anything.
        let cfg = tiny_cfg("reid", 16);
        let report = scale_sweep(&cfg, &Executor::new(2)).expect("sweep");
        let p0 = &report.points[0];
        assert!(
            p0.tm1_top3 >= 0.5,
            "TM-1 top-3 {:.2} at pool {} — matching is broken",
            p0.tm1_top3,
            p0.athletes
        );
        assert!(p0.tm3_top1 >= p0.tm1_top1, "city accuracy cannot trail athlete accuracy");
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn shard_fingerprints_are_executor_invariant() {
        let pop = {
            let mut p = PopulationConfig::new(20, 5);
            p.shard_size = 4;
            p
        };
        let a = shard_fingerprints(&pop, &Executor::new(1));
        let b = shard_fingerprints(&pop, &Executor::new(4));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn remove_store_refuses_foreign_directories() {
        let dir = std::env::temp_dir().join(format!("elev-notastore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("data.txt"), "precious").expect("write");
        assert_eq!(remove_store(&dir).unwrap_err().name(), "malformed");
        assert!(dir.join("data.txt").exists(), "foreign data must survive");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(remove_store(&dir).is_ok(), "missing dir is a no-op");
    }

    /// The scan as it existed before the prefilters: linear size probe
    /// per row, per-size track increments, no overlap signature. The
    /// optimized scan must reproduce it bit for bit.
    fn naive_scan(
        store: &FeatureStore,
        shard: usize,
        probes: &[Probe],
        sizes: &[usize],
    ) -> (TopHits, Vec<u64>) {
        let mut top: TopHits = vec![vec![Vec::new(); sizes.len()]; probes.len()];
        let mut tracks = vec![0u64; sizes.len()];
        let mut reader = store.reader(shard).expect("reader");
        let mut row = RowBuf::default();
        while reader.next_row(&mut row).expect("row") {
            let Some(first_size) = sizes.iter().position(|&s| row.athlete < s as u64) else {
                continue;
            };
            for t in tracks.iter_mut().skip(first_size) {
                *t += 1;
            }
            let row_norm = l2(&row.values);
            if row_norm == 0.0 {
                continue;
            }
            for (pi, probe) in probes.iter().enumerate() {
                let dot = dot_sorted(
                    probe.features.indices(),
                    probe.features.values(),
                    &row.indices,
                    &row.values,
                );
                if dot <= 0.0 {
                    continue;
                }
                let hit = Hit {
                    score: dot / (probe.norm * row_norm),
                    athlete: row.athlete,
                    city: row.city,
                };
                for per_size in top[pi].iter_mut().skip(first_size) {
                    push_topk(per_size, hit, 3);
                }
            }
        }
        (top, tracks)
    }

    fn flatten(top: &TopHits) -> Vec<(u32, u64, u32)> {
        top.iter().flatten().flatten().map(|h| (h.score.to_bits(), h.athlete, h.city)).collect()
    }

    #[test]
    fn pruned_scan_matches_naive_reference() {
        let cfg = tiny_cfg("naive", 24);
        let exec = Executor::new(2);
        build_store(&cfg, &exec).expect("build");
        let store = FeatureStore::open(&cfg.store_dir).expect("open");
        let pipeline = fit_pipeline(&cfg.population);
        let probes = build_probes(&cfg, &pipeline);
        assert!(!probes.is_empty(), "need probes for the comparison to mean anything");
        let sigs: Vec<OverlapSig> =
            probes.iter().map(|p| OverlapSig::new(p.features.indices())).collect();
        let mut row = RowBuf::default();
        for s in 0..store.manifest().shards.len() {
            let (top, tracks) =
                scan_shard(&store, s, &probes, &sigs, &cfg.pop_sizes, &mut row).expect("scan");
            let (naive_top, naive_tracks) = naive_scan(&store, s, &probes, &cfg.pop_sizes);
            assert_eq!(tracks, naive_tracks, "shard {s} track counts diverged");
            assert_eq!(flatten(&top), flatten(&naive_top), "shard {s} hits diverged");
        }
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn ann_sweep_is_thread_invariant_and_tracks_match_exact() {
        let mut cfg = tiny_cfg("annsweep", 24);
        cfg.ann = Some(AnnSettings { centroids: 8, nprobe: 3 });
        let base = scale_sweep(&cfg, &Executor::new(1)).expect("sweep t1");
        let wide = scale_sweep(&cfg, &Executor::new(4)).expect("sweep t4");
        assert_eq!(base, wide, "ANN sweep must be bit-identical at any thread count");

        let ann = base.ann.as_ref().expect("ANN accounting present");
        assert_eq!((ann.centroids, ann.nprobe), (8, 3));
        assert!(ann.rows_scanned <= ann.rows_total);
        assert_eq!(ann.recall3.len(), base.points.len());
        assert!(ann.recall3.iter().all(|r| (0.0..=1.0).contains(r)));
        assert!(base.to_json().contains("\"ann\": {"));

        // Exact mode over the same store: identical track counts, and
        // a JSON rendering with no ANN section at all (byte-compatible
        // with builds that predate the index).
        let mut exact_cfg = cfg.clone();
        exact_cfg.ann = None;
        let exact = scale_sweep(&exact_cfg, &Executor::new(2)).expect("exact sweep");
        assert!(exact.ann.is_none());
        assert!(!exact.to_json().contains("\"ann\""));
        let ann_tracks: Vec<u64> = base.points.iter().map(|p| p.tracks).collect();
        let exact_tracks: Vec<u64> = exact.points.iter().map(|p| p.tracks).collect();
        assert_eq!(ann_tracks, exact_tracks, "posting lists must cover every row");
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn ann_recall_meets_floor_at_thousand_athletes() {
        let mut cfg = ScaleConfig::new(1000, 99);
        cfg.population.shard_size = 128;
        cfg.pop_sizes = vec![300, 1000];
        cfg.probes_per_city = 2;
        cfg.store_dir =
            std::env::temp_dir().join(format!("elev-scale-recall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
        cfg.ann = Some(AnnSettings::default());

        let report = scale_sweep(&cfg, &Executor::new(4)).expect("sweep");
        let ann = report.ann.expect("ANN accounting present");
        for (p, r) in report.points.iter().zip(&ann.recall3) {
            assert!(*r >= 0.95, "recall@3 {:.3} at pool {} below floor", r, p.athletes);
        }
        assert!(
            ann.rows_scanned * 2 < ann.rows_total,
            "IVF scan rescored {}/{} pairs — not sublinear",
            ann.rows_scanned,
            ann.rows_total
        );
        let _ = std::fs::remove_dir_all(&cfg.store_dir);
    }

    #[test]
    fn grown_store_matches_fresh_build_bit_for_bit() {
        let exec = Executor::new(2);
        let mut small = tiny_cfg("grow", 16);
        small.ann = Some(AnnSettings { centroids: 8, nprobe: 3 });
        scale_sweep(&small, &exec).expect("small sweep");

        // Doubling the population appends shards in place (generation
        // bump) instead of refitting and rewriting everything.
        let mut grown = small.clone();
        grown.population.athletes = 32;
        grown.pop_sizes = vec![16, 32];
        let build = build_store(&grown, &exec).expect("grow");
        assert!(!build.reused);
        assert_eq!(build.appended, 2, "two new shards appended");
        assert_eq!(build.shards, 4);
        let store = FeatureStore::open(&grown.store_dir).expect("open grown");
        assert_eq!(store.manifest().generation, 2);
        let grown_report = scale_sweep(&grown, &exec).expect("grown sweep");

        // A from-scratch build of the same population must agree.
        let mut fresh = grown.clone();
        fresh.store_dir =
            std::env::temp_dir().join(format!("elev-scale-grow-fresh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&fresh.store_dir);
        let fresh_report = scale_sweep(&fresh, &exec).expect("fresh sweep");
        assert_eq!(grown_report, fresh_report, "grown and fresh sweeps diverged");

        // Beyond report equality: every shard payload and every ANN
        // sidecar (codebook included) is byte-identical; only the two
        // manifests differ, by generation.
        let fresh_store = FeatureStore::open(&fresh.store_dir).expect("open fresh");
        assert_eq!(fresh_store.manifest().generation, 1);
        let mut files: Vec<String> =
            store.manifest().shards.iter().map(|s| s.file.clone()).collect();
        for s in 0..store.manifest().shards.len() {
            files.push(annindex::ann_shard_file_name(s));
        }
        files.push("codebook.ann".to_string());
        for name in files {
            let a = std::fs::read(grown.store_dir.join(&name)).expect("grown file");
            let b = std::fs::read(fresh.store_dir.join(&name)).expect("fresh file");
            assert_eq!(a, b, "{name} diverged between grown and fresh builds");
        }

        // Re-running against the grown store is a pure reuse.
        let again = build_store(&grown, &exec).expect("reuse");
        assert!(again.reused);
        assert_eq!(again.appended, 0);
        let _ = std::fs::remove_dir_all(&grown.store_dir);
        let _ = std::fs::remove_dir_all(&fresh.store_dir);
    }
}
