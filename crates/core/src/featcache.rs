//! Memoized featurization shared across folds and threat-model sweeps.
//!
//! The experiment suite evaluates the *same* corpora many times — every
//! fold of a cross-validation re-reads the same feature rows, Table IV
//! evaluates each balanced dataset under 3 models × 2 fold settings,
//! and Table VII re-renders the same datasets for each CNN method. The
//! featurization (discretize → encode → BoW, or raster rendering) is
//! deterministic in the profile and the config, so this module caches:
//!
//! - fitted [`TextPipeline`]s keyed by (corpus fingerprint, discretizer
//!   / n-gram / selection config),
//! - per-profile **sparse** BoW vectors keyed by (pipeline identity,
//!   profile id) — BoW rows of an 8-gram vocabulary are overwhelmingly
//!   zero, so the cache stores [`sparsemat::SparseVec`]s and never
//!   materializes the dense row,
//! - per-profile rasters keyed by (raster config, profile id) — rasters
//!   are dense by nature and stay `Vec<f32>`,
//!
//! where a *profile id* is a 128-bit FNV-1a hash of the elevation
//! signal's raw bits. Values are `Arc`-shared; a cache hit returns the
//! identical bits a cold computation would (see
//! `crates/core/tests/featcache_correctness.rs`), so memoization never
//! affects experiment output — only wall-clock.
//!
//! All state is process-global behind mutexes, safe to use from the
//! parallel executor's workers. Hit/miss counters feed the `run_all`
//! summary.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use imgrep::{render, ImageConfig};
use sparsemat::SparseVec;
use textrep::{Discretizer, FeatureSelection, TextPipeline};

/// A 128-bit content id for one elevation profile.
pub fn profile_id(signal: &[f64]) -> u128 {
    // FNV-1a over the raw f64 bits, length-prefixed so [] and [0.0]
    // (and nested splits of equal prefixes) stay distinct.
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u128::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(signal.len() as u64);
    for &e in signal {
        eat(e.to_bits());
    }
    h
}

/// Fingerprint of a whole corpus (order-sensitive, like pipeline fit).
fn corpus_fingerprint(signals: &[Vec<f64>]) -> u128 {
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = 0xcbf29ce484222325u128;
    for s in signals {
        h ^= profile_id(s);
        h = h.wrapping_mul(PRIME);
    }
    h ^ (signals.len() as u128)
}

fn text_config_key(d: Discretizer, ngram: usize, sel: FeatureSelection) -> String {
    format!("{d:?}|n={ngram}|{sel:?}")
}

fn image_config_key(cfg: &ImageConfig) -> String {
    format!("{cfg:?}")
}

struct CachedPipeline {
    /// Distinguishes BoW entries of different fitted pipelines.
    id: u64,
    pipeline: Arc<TextPipeline>,
}

/// (pipeline id | raster config key) × profile id → shared feature row.
type FeatureMap<K, V> = Mutex<HashMap<K, Arc<V>>>;

#[derive(Default)]
struct Caches {
    pipelines: Mutex<HashMap<(u128, String), CachedPipeline>>,
    next_pipeline_id: AtomicU64,
    bow: FeatureMap<(u64, u128), SparseVec>,
    rasters: FeatureMap<(String, u128), Vec<f32>>,
    pipeline_hits: AtomicU64,
    pipeline_misses: AtomicU64,
    bow_hits: AtomicU64,
    bow_misses: AtomicU64,
    bow_nnz: AtomicU64,
    bow_dense_elems: AtomicU64,
    raster_hits: AtomicU64,
    raster_misses: AtomicU64,
}

fn caches() -> &'static Caches {
    static CACHES: OnceLock<Caches> = OnceLock::new();
    CACHES.get_or_init(Caches::default)
}

/// A fitted text pipeline plus the cache identity its BoW rows carry.
#[derive(Clone)]
pub struct SharedPipeline {
    id: u64,
    pipeline: Arc<TextPipeline>,
}

impl SharedPipeline {
    /// The fitted pipeline.
    pub fn pipeline(&self) -> &TextPipeline {
        &self.pipeline
    }

    /// The cached (or freshly computed) sparse BoW vector for one
    /// profile. Its `to_dense()` is bit-identical to
    /// `TextPipeline::transform` on the same signal.
    pub fn bow(&self, signal: &[f64]) -> Arc<SparseVec> {
        let c = caches();
        let key = (self.id, profile_id(signal));
        if let Some(hit) = c.bow.lock().expect("bow cache").get(&key) {
            c.bow_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        c.bow_misses.fetch_add(1, Ordering::Relaxed);
        let row = Arc::new(self.pipeline.transform_sparse(signal));
        c.bow_nnz.fetch_add(row.nnz() as u64, Ordering::Relaxed);
        c.bow_dense_elems.fetch_add(row.dim() as u64, Ordering::Relaxed);
        c.bow.lock().expect("bow cache").insert(key, Arc::clone(&row));
        row
    }
}

/// Wraps an externally fitted pipeline — e.g. one deserialized from
/// the model registry — so its BoW rows participate in the
/// process-wide cache. Each adoption gets a fresh cache identity:
/// rows are shared across repeated profiles hitting the *same* adopted
/// pipeline (the serving steady state), never across distinct loads.
pub fn adopt_pipeline(pipeline: Arc<TextPipeline>) -> SharedPipeline {
    let c = caches();
    SharedPipeline { id: c.next_pipeline_id.fetch_add(1, Ordering::Relaxed), pipeline }
}

/// The fitted pipeline for a corpus and text config, memoized.
///
/// Fitting is corpus-global (codebook + vocabulary over all signals,
/// "regardless of labels" per the paper), so the key is the corpus
/// fingerprint plus the featurization config — fold counts, seeds, and
/// classifier settings deliberately excluded.
pub fn pipeline_for(
    signals: &[Vec<f64>],
    discretizer: Discretizer,
    ngram: usize,
    selection: FeatureSelection,
) -> SharedPipeline {
    let c = caches();
    let key = (corpus_fingerprint(signals), text_config_key(discretizer, ngram, selection));
    if let Some(hit) = c.pipelines.lock().expect("pipeline cache").get(&key) {
        c.pipeline_hits.fetch_add(1, Ordering::Relaxed);
        return SharedPipeline { id: hit.id, pipeline: Arc::clone(&hit.pipeline) };
    }
    c.pipeline_misses.fetch_add(1, Ordering::Relaxed);
    // Fit outside the lock: fits are seconds-long and other configs
    // should not queue behind them. A racing duplicate fit is harmless
    // (deterministic result; first insert wins via entry check below).
    let fitted = Arc::new(TextPipeline::fit(discretizer, ngram, selection, signals));
    let mut map = c.pipelines.lock().expect("pipeline cache");
    let entry = map.entry(key).or_insert_with(|| CachedPipeline {
        id: c.next_pipeline_id.fetch_add(1, Ordering::Relaxed),
        pipeline: fitted,
    });
    SharedPipeline { id: entry.id, pipeline: Arc::clone(&entry.pipeline) }
}

/// The rendered `3 × H × W` raster for one profile, memoized.
pub fn raster_for(signal: &[f64], cfg: &ImageConfig) -> Arc<Vec<f32>> {
    let c = caches();
    let key = (image_config_key(cfg), profile_id(signal));
    if let Some(hit) = c.rasters.lock().expect("raster cache").get(&key) {
        c.raster_hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    c.raster_misses.fetch_add(1, Ordering::Relaxed);
    let pixels = Arc::new(render(signal, cfg).pixels);
    c.rasters.lock().expect("raster cache").insert(key, Arc::clone(&pixels));
    pixels
}

/// Cache hit/miss counters (process totals since start or [`reset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Fitted-pipeline lookups that hit.
    pub pipeline_hits: u64,
    /// Fitted-pipeline lookups that missed (fresh fits).
    pub pipeline_misses: u64,
    /// BoW-vector lookups that hit.
    pub bow_hits: u64,
    /// BoW-vector lookups that missed.
    pub bow_misses: u64,
    /// Total nonzeros across all cached (freshly computed) BoW rows.
    pub bow_nnz: u64,
    /// Total dense elements the same rows would occupy (sum of dims).
    pub bow_dense_elems: u64,
    /// Raster lookups that hit.
    pub raster_hits: u64,
    /// Raster lookups that missed.
    pub raster_misses: u64,
}

impl CacheStats {
    /// Total hits across all three caches.
    pub fn hits(&self) -> u64 {
        self.pipeline_hits + self.bow_hits + self.raster_hits
    }

    /// Total lookups across all three caches.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.pipeline_misses + self.bow_misses + self.raster_misses
    }

    /// Bytes the cached BoW rows occupy in sparse form
    /// (`u32` index + `f32` value per nonzero).
    pub fn sparse_feature_bytes(&self) -> u64 {
        self.bow_nnz * 8
    }

    /// Bytes the same rows would occupy densely (`f32` per element).
    pub fn dense_feature_bytes(&self) -> u64 {
        self.bow_dense_elems * 4
    }

    /// Fraction of BoW feature entries that are nonzero (0 when the
    /// cache is empty).
    pub fn bow_density(&self) -> f64 {
        if self.bow_dense_elems == 0 {
            0.0
        } else {
            self.bow_nnz as f64 / self.bow_dense_elems as f64
        }
    }
}

/// Reads the counters.
pub fn stats() -> CacheStats {
    let c = caches();
    CacheStats {
        pipeline_hits: c.pipeline_hits.load(Ordering::Relaxed),
        pipeline_misses: c.pipeline_misses.load(Ordering::Relaxed),
        bow_hits: c.bow_hits.load(Ordering::Relaxed),
        bow_misses: c.bow_misses.load(Ordering::Relaxed),
        bow_nnz: c.bow_nnz.load(Ordering::Relaxed),
        bow_dense_elems: c.bow_dense_elems.load(Ordering::Relaxed),
        raster_hits: c.raster_hits.load(Ordering::Relaxed),
        raster_misses: c.raster_misses.load(Ordering::Relaxed),
    }
}

/// Drops all cached values and zeroes the counters.
pub fn reset() {
    let c = caches();
    c.pipelines.lock().expect("pipeline cache").clear();
    c.bow.lock().expect("bow cache").clear();
    c.rasters.lock().expect("raster cache").clear();
    c.pipeline_hits.store(0, Ordering::Relaxed);
    c.pipeline_misses.store(0, Ordering::Relaxed);
    c.bow_hits.store(0, Ordering::Relaxed);
    c.bow_misses.store(0, Ordering::Relaxed);
    c.bow_nnz.store(0, Ordering::Relaxed);
    c.bow_dense_elems.store(0, Ordering::Relaxed);
    c.raster_hits.store(0, Ordering::Relaxed);
    c.raster_misses.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_ids_distinguish_contents_and_lengths() {
        assert_ne!(profile_id(&[]), profile_id(&[0.0]));
        assert_ne!(profile_id(&[1.0, 2.0]), profile_id(&[2.0, 1.0]));
        assert_eq!(profile_id(&[1.5, -3.0]), profile_id(&[1.5, -3.0]));
        // -0.0 and 0.0 have different bits; the cache keys on bits.
        assert_ne!(profile_id(&[0.0]), profile_id(&[-0.0]));
    }

    #[test]
    fn corpus_fingerprint_is_order_sensitive() {
        let a = vec![vec![1.0, 2.0], vec![3.0]];
        let b = vec![vec![3.0], vec![1.0, 2.0]];
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&a.clone()));
    }

    #[test]
    fn distinct_configs_get_distinct_pipelines() {
        let signals: Vec<Vec<f64>> =
            (0..4).map(|i| (0..20).map(|t| (i * 100 + t) as f64).collect()).collect();
        let a = pipeline_for(&signals, Discretizer::Floor, 2, FeatureSelection::keep_all());
        let b = pipeline_for(&signals, Discretizer::Floor, 3, FeatureSelection::keep_all());
        assert_ne!(a.id, b.id);
        let a2 = pipeline_for(&signals, Discretizer::Floor, 2, FeatureSelection::keep_all());
        assert_eq!(a.id, a2.id);
    }

    #[test]
    fn repeated_bow_lookups_share_one_allocation() {
        let signals: Vec<Vec<f64>> =
            (0..3).map(|i| (0..15).map(|t| (i * 7 + t) as f64 * 0.5).collect()).collect();
        let p = pipeline_for(&signals, Discretizer::Floor, 2, FeatureSelection::keep_all());
        let x = p.bow(&signals[0]);
        let y = p.bow(&signals[0]);
        assert!(Arc::ptr_eq(&x, &y), "second lookup must be a cache hit");
    }

    #[test]
    fn raster_cache_round_trips() {
        let cfg = ImageConfig::default();
        let signal: Vec<f64> = (0..50).map(|t| 10.0 + (t as f64 * 0.3).sin()).collect();
        let a = raster_for(&signal, &cfg);
        let b = raster_for(&signal, &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 3 * cfg.height * cfg.width);
    }
}
