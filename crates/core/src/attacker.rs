//! Train-once / predict-many attacker facades.
//!
//! [`TextAttacker`] and [`ImageAttacker`] are what a downstream user of
//! this library touches: fit on a labelled dataset, then aim at
//! arbitrary elevation profiles.

use crate::image::{train_cnn, ImageAttackConfig, ImageMethod};
use crate::text::{FittedTextModel, TextAttackConfig, TextModel};
use datasets::Dataset;
use imgrep::render;
use neuralnet::Sequential;
use sparsemat::{CsrMatrix, FeatureMatrix};
use tensorlite::Tensor;
use textrep::{Discretizer, TextPipeline};

/// A fitted text-side attacker (BoW features + SVM/RFC/MLP).
///
/// # Examples
///
/// ```no_run
/// use elev_core::attacker::TextAttacker;
/// use elev_core::text::{TextAttackConfig, TextModel};
/// use textrep::Discretizer;
///
/// let history = datasets::user_specific::build(1);
/// let mut attacker = TextAttacker::fit(
///     &history, Discretizer::Floor, TextModel::Svm, &TextAttackConfig::default());
/// let region = attacker.predict_name(&[20.0, 21.5, 22.0, 21.0]);
/// println!("the target trained in {region}");
/// ```
pub struct TextAttacker {
    pipeline: TextPipeline,
    model: FittedTextModel,
    label_names: Vec<String>,
}

impl std::fmt::Debug for TextAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TextAttacker({} classes)", self.label_names.len())
    }
}

impl TextAttacker {
    /// Fits preprocessing and classifier on the whole dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or single-class.
    pub fn fit(
        ds: &Dataset,
        discretizer: Discretizer,
        model: TextModel,
        cfg: &TextAttackConfig,
    ) -> Self {
        assert!(ds.n_classes() >= 2, "need at least two classes");
        assert!(!ds.is_empty(), "cannot fit on an empty dataset");
        let signals: Vec<Vec<f64>> =
            ds.samples().iter().map(|s| s.elevation.clone()).collect();
        let pipeline = TextPipeline::fit(discretizer, cfg.ngram, cfg.selection, &signals);
        let features = FeatureMatrix::Sparse(pipeline.transform_all_csr(&signals));
        let labels = ds.labels();
        let fitted = FittedTextModel::fit(model, &features, &labels, cfg, cfg.seed);
        Self { pipeline, model: fitted, label_names: ds.label_names().to_vec() }
    }

    /// Class names, indexed by predicted label.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Predicts the class index of one elevation profile.
    pub fn predict(&mut self, profile: &[f64]) -> u32 {
        let row = self.pipeline.transform_sparse(profile);
        let features = FeatureMatrix::Sparse(CsrMatrix::from_rows(std::iter::once(&row)));
        self.model.predict(&features)[0]
    }

    /// Predicts the class *name* of one elevation profile.
    pub fn predict_name(&mut self, profile: &[f64]) -> &str {
        let label = self.predict(profile);
        &self.label_names[label as usize]
    }

    /// Serializes the whole attacker (preprocessing + trained model) to
    /// JSON, so an adversary trains once and reuses the model.
    pub fn to_json(&mut self) -> String {
        let model = match &mut self.model {
            FittedTextModel::Svm(m) => SavedModel::Svm(m.clone()),
            FittedTextModel::Rfc(m) => SavedModel::Rfc(m.clone()),
            FittedTextModel::Mlp(net) => {
                let input_dim = self.pipeline.n_features();
                let arch = neuralnet::ArchSpec::Mlp {
                    input_dim,
                    hidden: 100,
                    n_classes: self.label_names.len().max(2),
                };
                SavedModel::Mlp(neuralnet::NetSnapshot::capture(arch, net))
            }
        };
        let saved = SavedAttacker {
            pipeline: self.pipeline.clone(),
            model,
            label_names: self.label_names.clone(),
        };
        serde_json::to_string(&saved).expect("attackers always serialize")
    }

    /// Restores an attacker from [`TextAttacker::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the serde error message for malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let saved: SavedAttacker = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let model = match saved.model {
            SavedModel::Svm(m) => FittedTextModel::Svm(m),
            SavedModel::Rfc(m) => FittedTextModel::Rfc(m),
            SavedModel::Mlp(snap) => FittedTextModel::Mlp(snap.restore()),
        };
        Ok(Self { pipeline: saved.pipeline, model, label_names: saved.label_names })
    }
}

/// Serialized form of a [`TextAttacker`].
#[derive(serde::Serialize, serde::Deserialize)]
struct SavedAttacker {
    pipeline: TextPipeline,
    model: SavedModel,
    label_names: Vec<String>,
}

#[derive(serde::Serialize, serde::Deserialize)]
enum SavedModel {
    Svm(classicml::SvmClassifier),
    Rfc(classicml::RandomForest),
    Mlp(neuralnet::NetSnapshot),
}

/// A fitted image-side attacker (line-graph rendering + the Fig. 7 CNN).
pub struct ImageAttacker {
    net: Sequential,
    cfg: ImageAttackConfig,
    label_names: Vec<String>,
}

impl std::fmt::Debug for ImageAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ImageAttacker({} classes)", self.label_names.len())
    }
}

impl ImageAttacker {
    /// Fits the CNN on the whole dataset with the given imbalance
    /// remedy.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or single-class.
    pub fn fit(ds: &Dataset, method: ImageMethod, cfg: &ImageAttackConfig) -> Self {
        assert!(ds.n_classes() >= 2, "need at least two classes");
        assert!(!ds.is_empty(), "cannot fit on an empty dataset");
        let x = crate::image::render_dataset(ds, &cfg.image);
        let labels = ds.labels();
        let net = train_cnn(&x, &labels, ds.n_classes(), method, cfg);
        Self { net, cfg: cfg.clone(), label_names: ds.label_names().to_vec() }
    }

    /// Class names, indexed by predicted label.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Predicts the class index of one elevation profile.
    pub fn predict(&mut self, profile: &[f64]) -> u32 {
        let img = render(profile, &self.cfg.image);
        let x = Tensor::from_vec(
            img.pixels,
            &[1, 3, self.cfg.image.height, self.cfg.image.width],
        );
        self.net.predict(&x)[0]
    }

    /// Predicts the class *name* of one elevation profile.
    pub fn predict_name(&mut self, profile: &[f64]) -> &str {
        let label = self.predict(profile);
        &self.label_names[label as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::Sample;

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::new(vec!["low".into(), "high".into()]);
        for i in 0..25 {
            let phase = i as f64 * 0.41;
            let low: Vec<f64> =
                (0..80).map(|t| 4.0 + ((t as f64) * 0.2 + phase).sin() * 1.5).collect();
            let high: Vec<f64> =
                (0..80).map(|t| 900.0 + ((t as f64) * 0.3 + phase).cos() * 60.0).collect();
            ds.push(Sample { elevation: low, label: 0, path: None }).unwrap();
            ds.push(Sample { elevation: high, label: 1, path: None }).unwrap();
        }
        ds
    }

    #[test]
    fn text_attacker_end_to_end() {
        let ds = toy_dataset();
        let cfg = TextAttackConfig { ngram: 4, svm_epochs: 10, ..Default::default() };
        let mut attacker = TextAttacker::fit(&ds, Discretizer::Floor, TextModel::Svm, &cfg);
        let low_probe: Vec<f64> = (0..80).map(|t| 4.5 + ((t as f64) * 0.2).sin()).collect();
        let high_probe: Vec<f64> = (0..80).map(|t| 920.0 + ((t as f64) * 0.3).cos() * 50.0).collect();
        assert_eq!(attacker.predict_name(&low_probe), "low");
        assert_eq!(attacker.predict_name(&high_probe), "high");
    }

    #[test]
    fn image_attacker_end_to_end() {
        let ds = toy_dataset();
        let cfg = ImageAttackConfig { epochs: 4, ..Default::default() };
        let mut attacker = ImageAttacker::fit(&ds, ImageMethod::WeightedLoss, &cfg);
        let low_probe: Vec<f64> = (0..200).map(|t| 4.5 + ((t as f64) * 0.1).sin()).collect();
        let high_probe: Vec<f64> =
            (0..200).map(|t| 920.0 + ((t as f64) * 0.2).cos() * 55.0).collect();
        assert_eq!(attacker.predict_name(&low_probe), "low");
        assert_eq!(attacker.predict_name(&high_probe), "high");
    }

    #[test]
    fn text_attacker_json_roundtrip() {
        let ds = toy_dataset();
        for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
            let cfg = TextAttackConfig {
                ngram: 4,
                svm_epochs: 10,
                rfc_trees: 10,
                mlp_epochs: 20,
                ..Default::default()
            };
            let mut attacker = TextAttacker::fit(&ds, Discretizer::Floor, model, &cfg);
            let json = attacker.to_json();
            let mut restored = TextAttacker::from_json(&json).unwrap();
            for probe in [
                (0..80).map(|t| 4.2 + ((t as f64) * 0.2).sin()).collect::<Vec<f64>>(),
                (0..80).map(|t| 930.0 + ((t as f64) * 0.3).cos() * 40.0).collect(),
            ] {
                assert_eq!(attacker.predict(&probe), restored.predict(&probe));
            }
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TextAttacker::from_json("{oops").is_err());
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn text_attacker_rejects_single_class() {
        let mut ds = Dataset::new(vec!["only".into()]);
        ds.push(Sample { elevation: vec![1.0], label: 0, path: None }).unwrap();
        TextAttacker::fit(&ds, Discretizer::Floor, TextModel::Svm, &Default::default());
    }
}
