//! Per-phase wall-clock accounting for the experiment pipeline.
//!
//! The pipeline has three hot phases — featurization (BoW/raster),
//! model fitting, and prediction — and `run_all` reports how the total
//! wall-clock splits across them. Counters are process-global atomics:
//! spans recorded on worker threads of the parallel executor simply
//! accumulate, so with `ELEV_THREADS > 1` the totals are summed
//! thread-time, which can exceed elapsed wall-clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The accounted pipeline phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Featurization: discretize → encode → BoW, or raster rendering.
    Featurize,
    /// Classifier training (SVM / RFC / MLP / CNN).
    Fit,
    /// CNN training specifically — a *subset* of [`Phase::Fit`] (the
    /// span nests inside a `Fit` span), broken out because it dominates
    /// the image-side tables. Excluded from [`PhaseTimes::total`].
    CnnTrain,
    /// Inference on held-out samples.
    Predict,
}

static FEATURIZE_NS: AtomicU64 = AtomicU64::new(0);
static FIT_NS: AtomicU64 = AtomicU64::new(0);
static CNN_TRAIN_NS: AtomicU64 = AtomicU64::new(0);
static PREDICT_NS: AtomicU64 = AtomicU64::new(0);

fn counter(phase: Phase) -> &'static AtomicU64 {
    match phase {
        Phase::Featurize => &FEATURIZE_NS,
        Phase::Fit => &FIT_NS,
        Phase::CnnTrain => &CNN_TRAIN_NS,
        Phase::Predict => &PREDICT_NS,
    }
}

/// Runs `f`, charging its elapsed time to `phase`.
pub fn time<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    counter(phase).fetch_add(ns, Ordering::Relaxed);
    out
}

/// Accumulated per-phase totals since process start (or [`reset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimes {
    /// Total featurization time.
    pub featurize: Duration,
    /// Total fitting time.
    pub fit: Duration,
    /// CNN-training share of `fit` (nested spans; not added to
    /// [`total`](Self::total)).
    pub cnn_train: Duration,
    /// Total prediction time.
    pub predict: Duration,
}

impl PhaseTimes {
    /// Sum of the disjoint phases. `cnn_train` is excluded: its spans
    /// nest inside `fit` spans and are already counted there.
    pub fn total(&self) -> Duration {
        self.featurize + self.fit + self.predict
    }
}

/// Reads the current totals.
pub fn snapshot() -> PhaseTimes {
    PhaseTimes {
        featurize: Duration::from_nanos(FEATURIZE_NS.load(Ordering::Relaxed)),
        fit: Duration::from_nanos(FIT_NS.load(Ordering::Relaxed)),
        cnn_train: Duration::from_nanos(CNN_TRAIN_NS.load(Ordering::Relaxed)),
        predict: Duration::from_nanos(PREDICT_NS.load(Ordering::Relaxed)),
    }
}

/// Zeroes all counters (tests and per-run reporting).
pub fn reset() {
    FEATURIZE_NS.store(0, Ordering::Relaxed);
    FIT_NS.store(0, Ordering::Relaxed);
    CNN_TRAIN_NS.store(0, Ordering::Relaxed);
    PREDICT_NS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_snapshot() {
        // Other tests in the process may also record spans; assert
        // relative growth instead of absolute values.
        let before = snapshot();
        let out = time(Phase::Fit, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(out, 7);
        let after = snapshot();
        assert!(after.fit >= before.fit + Duration::from_millis(2));
        assert!(after.total() > before.total());
    }

    #[test]
    fn phases_are_charged_independently() {
        let before = snapshot();
        time(Phase::Featurize, || std::thread::sleep(Duration::from_millis(1)));
        let after = snapshot();
        assert!(after.featurize > before.featurize);
        assert_eq!(after.predict, before.predict);
    }
}
