//! The image-side attack: colored line graphs into the Fig. 7 CNN.

use crate::featcache;
use crate::timing::{self, Phase};
use datasets::split::inverse_proportional_test_split;
use datasets::Dataset;
use evalkit::ConfusionMatrix;
use imgrep::ImageConfig;
use neuralnet::finetune::{fine_tune, make_rounds, FineTuneConfig};
use neuralnet::loss::inverse_frequency_weights;
use neuralnet::models::paper_cnn;
use neuralnet::{train, Sequential, TrainConfig};
use tensorlite::Tensor;

/// The paper's three ways of coping with unbalanced data (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageMethod {
    /// Plain cross-entropy — the *biased* baseline (UWL column of
    /// Table VII; "the results are biased" toward the majority class).
    UnweightedLoss,
    /// Class-weighted cross-entropy, weights inversely proportional to
    /// class size (WL column).
    WeightedLoss,
    /// Round-based fine-tuning (FT column, Figs. 10–11).
    FineTune,
}

impl std::fmt::Display for ImageMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ImageMethod::UnweightedLoss => "UWL",
            ImageMethod::WeightedLoss => "WL",
            ImageMethod::FineTune => "FT",
        })
    }
}

/// Configuration of the image-side evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageAttackConfig {
    /// Rendering parameters (the paper's 200-point 32×32 line graphs).
    pub image: ImageConfig,
    /// CNN training epochs (per round, for fine-tuning).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Learning rate of the final fine-tuning round.
    pub final_lr: f32,
    /// Fraction of samples selected as the test set (by inverse class
    /// probability, per the paper).
    pub test_fraction: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Gradient lanes per CNN mini-batch (see
    /// [`neuralnet::TrainConfig::shards`]); `None` sizes lanes from the
    /// two-level `ELEV_THREADS`/`ELEV_INNER_THREADS` budget. Trained
    /// weights are bit-identical at any setting.
    pub shards: Option<usize>,
}

impl Default for ImageAttackConfig {
    fn default() -> Self {
        Self {
            image: ImageConfig::default(),
            epochs: 12,
            lr: 2e-3,
            final_lr: 1e-3,
            test_fraction: 0.2,
            batch_size: 32,
            seed: 0,
            shards: None,
        }
    }
}

/// Renders every sample of a dataset into one `[N, 3, H, W]` tensor.
///
/// Per-sample rasters render in parallel on the `ELEV_THREADS`
/// executor and are memoized process-wide (see [`crate::featcache`]),
/// so re-evaluating the same dataset — e.g. under each Table VII
/// method — renders each profile once.
pub fn render_dataset(ds: &Dataset, image: &ImageConfig) -> Tensor {
    let (h, w) = (image.height, image.width);
    let rows = exec::Executor::from_env()
        .map(ds.samples(), |_, s| featcache::raster_for(&s.elevation, image));
    let mut data = Vec::with_capacity(ds.len() * 3 * h * w);
    for row in rows {
        data.extend_from_slice(&row);
    }
    Tensor::from_vec(data, &[ds.len(), 3, h, w])
}

/// The fine-tuning drop schedule for a class count, following the
/// paper's round counts (TM-1: 4 classes → 3 rounds; TM-3: 10 classes →
/// 5 rounds dropping 1, 2, 1, 2).
pub fn default_drops(n_classes: usize) -> Vec<usize> {
    if n_classes <= 2 {
        return Vec::new();
    }
    if n_classes <= 5 {
        return vec![1; n_classes - 2];
    }
    // Alternate 1, 2, 1, 2, … until 4 classes remain.
    let mut drops = Vec::new();
    let mut remaining = n_classes;
    let mut step = 1usize;
    while remaining > 4 {
        let d = step.min(remaining - 4);
        drops.push(d);
        remaining -= d;
        step = if step == 1 { 2 } else { 1 };
    }
    drops
}

/// The result of one image-side evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageOutcome {
    /// Confusion matrix on the held-out test set.
    pub confusion: ConfusionMatrix,
    /// The method evaluated.
    pub method: ImageMethod,
}

/// Trains the Fig. 7 CNN on `ds` with the given imbalance remedy and
/// scores it on an inverse-proportionally selected test set.
///
/// # Panics
///
/// Panics if the dataset has fewer than two classes or too few samples
/// to split.
pub fn evaluate_image(
    ds: &Dataset,
    method: ImageMethod,
    cfg: &ImageAttackConfig,
) -> ImageOutcome {
    assert!(ds.n_classes() >= 2, "need at least two classes");
    let labels = ds.labels();
    let test_count = ((ds.len() as f64) * cfg.test_fraction).round().max(1.0) as usize;
    let (train_idx, test_idx) =
        inverse_proportional_test_split(&labels, test_count, cfg.seed);

    let x = timing::time(Phase::Featurize, || render_dataset(ds, &cfg.image));
    let y_train: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
    let x_train = neuralnet::gather_samples(&x, &train_idx);
    let x_test = neuralnet::gather_samples(&x, &test_idx);
    let y_test: Vec<u32> = test_idx.iter().map(|&i| labels[i]).collect();

    let mut net = timing::time(Phase::Fit, || {
        train_cnn(&x_train, &y_train, ds.n_classes(), method, cfg)
    });
    let preds = timing::time(Phase::Predict, || net.predict(&x_test));
    ImageOutcome {
        confusion: ConfusionMatrix::from_predictions(&y_test, &preds, ds.n_classes()),
        method,
    }
}

/// Trains a CNN on pre-rendered tensors (exposed for the epoch-sweep
/// experiments of Table VIII).
pub fn train_cnn(
    x_train: &Tensor,
    y_train: &[u32],
    n_classes: usize,
    method: ImageMethod,
    cfg: &ImageAttackConfig,
) -> Sequential {
    timing::time(Phase::CnnTrain, || {
        let mut net = paper_cnn(n_classes.max(2), cfg.seed);
        match method {
            ImageMethod::UnweightedLoss | ImageMethod::WeightedLoss => {
                let class_weights = if method == ImageMethod::WeightedLoss {
                    Some(inverse_frequency_weights(y_train, n_classes))
                } else {
                    None
                };
                train(
                    &mut net,
                    x_train,
                    y_train,
                    &TrainConfig {
                        epochs: cfg.epochs,
                        batch_size: cfg.batch_size,
                        lr: cfg.lr,
                        seed: cfg.seed,
                        class_weights,
                        shards: cfg.shards,
                    },
                );
            }
            ImageMethod::FineTune => {
                let drops = default_drops(n_classes);
                let rounds = make_rounds(y_train, n_classes, &drops, cfg.seed);
                fine_tune(
                    &mut net,
                    x_train,
                    y_train,
                    &rounds,
                    &FineTuneConfig {
                        epochs_per_round: cfg.epochs,
                        batch_size: cfg.batch_size,
                        lr: cfg.lr,
                        final_lr: cfg.final_lr,
                        seed: cfg.seed,
                        shards: cfg.shards,
                    },
                );
            }
        }
        net
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{Dataset, Sample};

    fn toy_dataset(n_per: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["flat-low".into(), "hilly-high".into()]);
        for i in 0..n_per {
            let phase = i as f64 * 0.61;
            let low: Vec<f64> =
                (0..200).map(|t| 3.0 + ((t as f64) * 0.05 + phase).sin() * 1.0).collect();
            let high: Vec<f64> =
                (0..200).map(|t| 800.0 + ((t as f64) * 0.4 + phase).sin() * 90.0).collect();
            ds.push(Sample { elevation: low, label: 0, path: None }).unwrap();
            ds.push(Sample { elevation: high, label: 1, path: None }).unwrap();
        }
        ds
    }

    fn quick_cfg() -> ImageAttackConfig {
        ImageAttackConfig { epochs: 4, ..Default::default() }
    }

    #[test]
    fn default_drops_match_paper_round_counts() {
        assert_eq!(default_drops(4).len(), 2); // 3 rounds for TM-1
        assert_eq!(default_drops(10), vec![1, 2, 1, 2]); // 5 rounds for TM-3
        assert!(default_drops(2).is_empty());
    }

    #[test]
    fn render_dataset_shapes() {
        let ds = toy_dataset(3);
        let x = render_dataset(&ds, &ImageConfig::default());
        assert_eq!(x.shape(), &[6, 3, 32, 32]);
    }

    #[test]
    fn weighted_loss_separates_toy_classes() {
        let outcome = evaluate_image(&toy_dataset(20), ImageMethod::WeightedLoss, &quick_cfg());
        let acc = outcome.confusion.accuracy();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn fine_tune_runs_end_to_end() {
        // 3 classes so rounds exist.
        let mut ds = toy_dataset(12);
        ds = {
            let mut bigger = Dataset::new(vec![
                "flat-low".into(),
                "hilly-high".into(),
                "mid".into(),
            ]);
            for s in ds.samples() {
                bigger.push(s.clone()).unwrap();
            }
            for i in 0..6 {
                let phase = i as f64;
                let mid: Vec<f64> =
                    (0..200).map(|t| 120.0 + ((t as f64) * 0.1 + phase).cos() * 10.0).collect();
                bigger.push(Sample { elevation: mid, label: 2, path: None }).unwrap();
            }
            bigger
        };
        let outcome = evaluate_image(&ds, ImageMethod::FineTune, &quick_cfg());
        assert_eq!(outcome.method, ImageMethod::FineTune);
        assert!(outcome.confusion.total() > 0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ds = toy_dataset(8);
        let a = evaluate_image(&ds, ImageMethod::UnweightedLoss, &quick_cfg());
        let b = evaluate_image(&ds, ImageMethod::UnweightedLoss, &quick_cfg());
        assert_eq!(a.confusion, b.confusion);
    }
}
