//! The elevation-profile location-inference attack (the paper's core
//! contribution).
//!
//! *Understanding the Potential Risks of Sharing Elevation Information
//! on Fitness Applications* (ICDCS 2020) shows that the elevation
//! profile of a workout — shared publicly even when the route map is
//! hidden — suffices to infer the athlete's location at region,
//! borough, or city granularity. This crate assembles the full attack
//! from the workspace's substrates:
//!
//! - [`threat`]: the three threat models TM-1/TM-2/TM-3,
//! - [`text`]: the text-side attack (discretize → encode → n-gram BoW →
//!   SVM / RFC / MLP),
//! - [`image`]: the image-side attack (colored line graphs → the Fig. 7
//!   CNN) with the paper's three imbalance remedies (unweighted loss,
//!   weighted loss, fine-tuning rounds),
//! - [`attacker`]: a downstream-friendly train-once / predict-many API,
//! - [`defense`]: the future-work defenses (coarsening, noise,
//!   summary-only sharing) and their effect on the attack,
//! - [`experiments`]: the parameterized experiment runners behind every
//!   table and figure reproduction in `crates/bench`,
//! - [`ingest`]: the resilient validate/repair/quarantine ingestion
//!   front door for corrupted real-world recordings,
//! - [`report`]: the per-track location-leakage report (the serving
//!   layer's JSON output contract),
//! - [`robustness`]: the accuracy-vs-corruption-rate sweep built on
//!   `faultsim` + [`ingest`].
//!
//! # Examples
//!
//! ```no_run
//! use datasets::user_specific;
//! use elev_core::attacker::TextAttacker;
//! use elev_core::text::{TextAttackConfig, TextModel};
//! use textrep::Discretizer;
//!
//! // TM-1: the adversary has the target's workout history...
//! let history = user_specific::build(42);
//! let mut attacker = TextAttacker::fit(
//!     &history,
//!     Discretizer::Floor,
//!     TextModel::Mlp,
//!     &TextAttackConfig::default(),
//! );
//! // ...and deanonymizes a fresh elevation profile.
//! let profile: Vec<f64> = vec![21.0, 22.5, 23.0, 24.0, 22.0];
//! println!("last workout region: {}", attacker.predict_name(&profile));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod defense;
pub mod experiments;
pub mod featcache;
pub mod image;
pub mod ingest;
pub mod report;
pub mod robustness;
pub mod scale;
pub mod spectral;
pub mod text;
pub mod threat;
pub mod timing;

pub use attacker::{ImageAttacker, TextAttacker};
pub use threat::ThreatModel;
