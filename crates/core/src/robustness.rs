//! The robustness experiment: attack accuracy vs corruption rate.
//!
//! The paper's evaluation assumes clean recordings. This module asks
//! how the attack degrades when the corpus is damaged the way real
//! fitness exports are: each track is run through the `faultsim`
//! corruption plan, then through the [`crate::ingest`] repair/
//! quarantine pipeline, and the text attack is re-evaluated on the
//! surviving corpus. The sweep reports, per corruption rate:
//!
//! - attack accuracy for TM-1 (user-specific) and TM-3 (city-level),
//! - the full ingestion disposition (clean / repaired / quarantined),
//! - a ground-truth accounting of every injected fault kind, and
//! - substrate stats for the DEM-void and flaky-service fault models.
//!
//! Everything derives from `(plan seed, stable track index)`, so a
//! sweep is bit-identical across thread counts and re-runs.

use crate::experiments::{balanced_top_classes, Corpora, ExperimentScale};
use crate::ingest::{ingest_batch, Disposition, IngestConfig, IngestReport, TrackSource};
use crate::text::{evaluate_text, TextAttackConfig, TextModel};
use datasets::{Dataset, Sample};
use evalkit::FoldOutcome;
use faultsim::dem::{fill_voids, punch_voids};
use faultsim::{corrupt_track, FaultKind, FaultPlan, FlakyElevationService, FlakyStats, Payload};
use geoprim::LatLon;
use gpxfile::{Gpx, Track, TrackPoint, TrackSegment};
use terrain::{CityId, ElevationModel, RasterDem, SyntheticTerrain};
use textrep::Discretizer;

/// The corruption rates the stock sweep visits (0 is the invariance
/// anchor: it must reproduce the clean corpus exactly).
pub const DEFAULT_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Ground-truth accounting for one injected fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindAccount {
    /// The fault kind.
    pub kind: FaultKind,
    /// Tracks this kind was injected into.
    pub injected: usize,
    /// …of which were accepted after repair.
    pub repaired: usize,
    /// …of which were quarantined.
    pub quarantined: usize,
    /// …of which slipped through undetected (accepted as clean).
    pub undetected: usize,
}

/// One `(rate, threat model)` cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// Threat-model label ("TM-1" / "TM-3").
    pub setting: String,
    /// Track corruption rate of the plan.
    pub rate: f64,
    /// Attack metrics on the surviving corpus.
    pub outcome: FoldOutcome,
    /// Folds actually used (shrunk when quarantine thins a class).
    pub folds: usize,
    /// The full ingestion report.
    pub report: IngestReport,
    /// Per-kind ground-truth accounting (every injected fault lands in
    /// exactly one of repaired / quarantined / undetected).
    pub accounting: Vec<KindAccount>,
}

/// Degradation stats for the non-track fault models at one rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateStats {
    /// The plan's track corruption rate (void/service rates are ¼ of
    /// it, see [`FaultPlan::uniform`]).
    pub rate: f64,
    /// Cells in the probe DEM.
    pub dem_cells: usize,
    /// NODATA voids punched into it.
    pub dem_voids: usize,
    /// Voids repaired by neighbour-mean filling.
    pub dem_filled: usize,
    /// Worst repair error across probe points, metres.
    pub dem_worst_err_m: f64,
    /// Flaky elevation-service accounting over the probe workload.
    pub service: FlakyStats,
    /// Probe requests that exhausted the retry budget.
    pub service_errors: u64,
}

/// Reconstructs a GPX document from a dataset sample so `faultsim` can
/// corrupt it like a real upload. When the sample kept its trajectory
/// the points are zipped with the profile; stripped samples get a
/// synthetic straight-line path (the attack never reads coordinates).
pub fn sample_to_gpx(sample: &Sample) -> Gpx {
    let n = sample.elevation.len();
    let coord_at = |i: usize| -> LatLon {
        match &sample.path {
            Some(path) if path.len() == n => path[i],
            _ => LatLon::new(38.0 + i as f64 * 1e-5, -77.0),
        }
    };
    let points = sample
        .elevation
        .iter()
        .enumerate()
        .map(|(i, &e)| TrackPoint::with_elevation(coord_at(i), e))
        .collect();
    Gpx {
        creator: "robustness".into(),
        tracks: vec![Track { name: None, segments: vec![TrackSegment { points }] }],
    }
}

/// Corrupts a dataset with `plan`, ingests it, and rebuilds the
/// surviving corpus. Returns the survivors (quarantined samples
/// dropped, repaired profiles substituted), the ingestion report, and
/// the ground-truth fault accounting.
pub fn ingest_dataset(
    ds: &Dataset,
    plan: &FaultPlan,
    cfg: &IngestConfig,
) -> (Dataset, IngestReport, Vec<KindAccount>) {
    let corrupted: Vec<(TrackSource, Vec<FaultKind>)> = ds
        .samples()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let out = corrupt_track(plan, i as u64, &sample_to_gpx(s));
            let src = match out.payload {
                Payload::Parsed(g) => TrackSource::Parsed(g),
                Payload::Raw(b) => TrackSource::Raw(b),
            };
            (src, out.injected)
        })
        .collect();
    let sources: Vec<TrackSource> = corrupted.iter().map(|(s, _)| s.clone()).collect();
    let (profiles, report) = ingest_batch(&sources, cfg, &exec::Executor::from_env());

    let mut survivors = Dataset::new(ds.label_names().to_vec());
    for (i, profile) in profiles.into_iter().enumerate() {
        if let Some(elevation) = profile {
            let s = &ds.samples()[i];
            survivors
                .push(Sample { elevation, label: s.label, path: s.path.clone() })
                .expect("label came from the same dataset");
        }
    }

    let accounting = FaultKind::ALL
        .into_iter()
        .map(|kind| {
            let mut acc = KindAccount {
                kind,
                injected: 0,
                repaired: 0,
                quarantined: 0,
                undetected: 0,
            };
            for (track, (_, injected)) in report.tracks.iter().zip(&corrupted) {
                if !injected.contains(&kind) {
                    continue;
                }
                acc.injected += 1;
                match &track.disposition {
                    Disposition::Clean => acc.undetected += 1,
                    Disposition::Repaired(_) => acc.repaired += 1,
                    Disposition::Quarantined(_) => acc.quarantined += 1,
                }
            }
            acc
        })
        .collect();
    (survivors, report, accounting)
}

/// Runs the accuracy-vs-corruption sweep for TM-1 and TM-3 at every
/// rate in `rates`, evaluating the MLP text attack on each surviving
/// corpus. `plan_seed` drives the corruption, `seed` the evaluation.
pub fn robustness_sweep(
    corpora: &Corpora,
    scale: &ExperimentScale,
    seed: u64,
    plan_seed: u64,
    rates: &[f64],
) -> Vec<RobustnessPoint> {
    let tm3_classes = 5.min(corpora.city.n_classes());
    let settings: Vec<(&str, Dataset, Discretizer)> = vec![
        ("TM-1", corpora.user.clone(), Discretizer::Floor),
        (
            "TM-3",
            balanced_top_classes(&corpora.city, tm3_classes, seed),
            Discretizer::mined(),
        ),
    ];
    let mut points = Vec::new();
    for &rate in rates {
        let plan = FaultPlan::uniform(rate, plan_seed);
        for (name, ds, disc) in &settings {
            let (survivors, report, accounting) =
                ingest_dataset(ds, &plan, &IngestConfig::default());
            // Quarantine thins classes; shrink folds so every fold keeps
            // at least one sample of each class.
            let min_class = survivors
                .class_counts()
                .into_iter()
                .filter(|&c| c > 0)
                .min()
                .unwrap_or(0);
            let folds = scale.folds.min(min_class).max(2);
            let cfg = TextAttackConfig {
                folds,
                mlp_epochs: scale.mlp_epochs,
                seed,
                ..Default::default()
            };
            let outcome = evaluate_text(&survivors, *disc, TextModel::Mlp, &cfg).outcome();
            points.push(RobustnessPoint {
                setting: (*name).to_owned(),
                rate,
                outcome,
                folds,
                report,
                accounting,
            });
        }
    }
    points
}

/// Exercises the DEM-void and flaky-service fault models at each rate
/// with a fixed probe workload (a 48×48 Miami raster and 160 path
/// lookups), reporting repair quality and retry accounting.
pub fn substrate_sweep(rates: &[f64], plan_seed: u64) -> Vec<SubstrateStats> {
    let terrain = SyntheticTerrain::new(plan_seed);
    let bbox = terrain.catalog().city(CityId::Miami).bbox;
    let dem = RasterDem::sample_from(&terrain, bbox, 48, 48);
    let probes: Vec<LatLon> = (1..31)
        .map(|i| {
            LatLon::new(
                bbox.south_west().lat + bbox.lat_span() * i as f64 / 31.0,
                bbox.south_west().lon + bbox.lon_span() * i as f64 / 31.0,
            )
        })
        .collect();
    let path = vec![probes[0], probes[14], probes[29]];

    rates
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::uniform(rate, plan_seed);
            let (voided, punched) = punch_voids(&dem, plan.dem_void_rate, plan.seed);
            let (filled, repaired) = fill_voids(&voided);
            let worst = probes
                .iter()
                .map(|&p| (filled.elevation_at(p) - dem.elevation_at(p)).abs())
                .fold(0.0f64, f64::max);

            let svc = FlakyElevationService::new(
                SyntheticTerrain::new(plan_seed),
                plan.service_failure_rate,
                plan.seed,
            );
            let mut errors = 0u64;
            for _ in 0..160 {
                if svc.sample_path(&path, 32).is_err() {
                    errors += 1;
                }
            }
            SubstrateStats {
                rate,
                dem_cells: {
                    let (r, c) = dem.dims();
                    r * c
                },
                dem_voids: punched,
                dem_filled: repaired,
                dem_worst_err_m: worst,
                service: svc.stats(),
                service_errors: errors,
            }
        })
        .collect()
}

/// Sanity invariant used by tests and `scripts/verify.sh`: at rate 0
/// the surviving corpus must be the input corpus, exactly.
pub fn zero_rate_is_identity(ds: &Dataset, plan_seed: u64) -> bool {
    let (survivors, report, _) =
        ingest_dataset(ds, &FaultPlan::uniform(0.0, plan_seed), &IngestConfig::default());
    report.clean() == ds.len()
        && report.repaired() == 0
        && report.quarantined() == 0
        && survivors.len() == ds.len()
        && survivors
            .samples()
            .iter()
            .zip(ds.samples())
            .all(|(a, b)| {
                a.label == b.label
                    && a.elevation.len() == b.elevation.len()
                    && a.elevation
                        .iter()
                        .zip(&b.elevation)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentScale;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            dataset_fraction: 0.04,
            folds: 3,
            cnn_epochs: 2,
            mlp_epochs: 10,
            min_per_class: 9,
        }
    }

    #[test]
    fn zero_rate_reproduces_the_clean_corpus() {
        let corpora = Corpora::generate(11, &tiny_scale());
        assert!(zero_rate_is_identity(&corpora.user, FaultPlan::DEFAULT_SEED));
        assert!(zero_rate_is_identity(&corpora.city, 777));
    }

    #[test]
    fn sweep_accounts_for_every_injected_fault() {
        let corpora = Corpora::generate(12, &tiny_scale());
        let points =
            robustness_sweep(&corpora, &tiny_scale(), 1, 5, &[0.0, 0.2]);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(
                p.report.clean() + p.report.repaired() + p.report.quarantined(),
                p.report.tracks.len()
            );
            for acc in &p.accounting {
                assert_eq!(
                    acc.injected,
                    acc.repaired + acc.quarantined + acc.undetected,
                    "{} unaccounted at rate {}",
                    acc.kind,
                    p.rate
                );
            }
            if p.rate == 0.0 {
                assert_eq!(p.report.clean(), p.report.tracks.len());
                assert!(p.accounting.iter().all(|a| a.injected == 0));
            } else {
                assert!(p.accounting.iter().any(|a| a.injected > 0));
            }
            assert!(p.outcome.accuracy >= 0.0 && p.outcome.accuracy <= 1.0);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let corpora = Corpora::generate(13, &tiny_scale());
        let run = |threads: &str| {
            std::env::set_var("ELEV_THREADS", threads);
            let out = robustness_sweep(&corpora, &tiny_scale(), 2, 9, &[0.25]);
            std::env::remove_var("ELEV_THREADS");
            out
        };
        assert_eq!(run("1"), run("4"));
    }

    #[test]
    fn substrate_sweep_scales_with_rate() {
        let stats = substrate_sweep(&[0.0, 0.4], 3);
        assert_eq!(stats[0].dem_voids, 0);
        assert_eq!(stats[0].service.transient_failures, 0);
        assert_eq!(stats[0].service_errors, 0);
        assert!(stats[1].dem_voids > 0);
        assert_eq!(stats[1].dem_filled, stats[1].dem_voids);
        assert!(stats[1].service.transient_failures > 0);
        assert!(stats[1].dem_worst_err_m < 20.0);
    }

    #[test]
    fn stripped_samples_still_corrupt_and_ingest() {
        let corpora = Corpora::generate(14, &tiny_scale());
        let stripped = corpora.user.stripped();
        let (survivors, report, _) = ingest_dataset(
            &stripped,
            &FaultPlan::uniform(0.5, 6),
            &IngestConfig::default(),
        );
        assert_eq!(report.tracks.len(), stripped.len());
        assert!(!survivors.is_empty());
    }
}
