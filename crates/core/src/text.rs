//! The text-side attack: n-gram BoW features into SVM / RFC / MLP.

use crate::featcache;
use crate::timing::{self, Phase};
use datasets::split::stratified_k_fold;
use datasets::Dataset;
use evalkit::{evaluate_folds_parallel, FoldSummary};
use sparsemat::{CsrMatrix, FeatureMatrix, SparseVec};
use std::sync::Arc;
use textrep::{Discretizer, FeatureSelection};

/// Which classifier consumes the BoW features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextModel {
    /// Linear one-vs-rest SVM (Pegasos).
    Svm,
    /// 100-tree random forest.
    Rfc,
    /// 100-unit single-hidden-layer MLP with Adam.
    Mlp,
}

impl std::fmt::Display for TextModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TextModel::Svm => "SVM",
            TextModel::Rfc => "RFC",
            TextModel::Mlp => "MLP",
        })
    }
}

/// Configuration of the text-side evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TextAttackConfig {
    /// n-gram order (the paper fixes n = 8).
    pub ngram: usize,
    /// Cross-validation folds (the paper uses 5 and 10).
    pub folds: usize,
    /// Vocabulary feature selection.
    pub selection: FeatureSelection,
    /// Master seed for splits and model initialization.
    pub seed: u64,
    /// MLP epochs (text features are small, so this converges fast).
    pub mlp_epochs: usize,
    /// MLP learning rate.
    pub mlp_lr: f32,
    /// Random-forest tree count (paper: 100).
    pub rfc_trees: usize,
    /// SVM epochs.
    pub svm_epochs: usize,
    /// SVM regularization strength λ.
    pub svm_lambda: f32,
}

impl Default for TextAttackConfig {
    fn default() -> Self {
        Self {
            ngram: 8,
            folds: 10,
            selection: FeatureSelection::standard(),
            seed: 0,
            mlp_epochs: 60,
            mlp_lr: 3e-3,
            rfc_trees: 100,
            svm_epochs: 30,
            svm_lambda: 1e-4,
        }
    }
}

/// A trained text-side classifier (internal to this crate's API).
pub(crate) enum FittedTextModel {
    Svm(classicml::SvmClassifier),
    Rfc(classicml::RandomForest),
    Mlp(neuralnet::Sequential),
}

impl FittedTextModel {
    /// Fits the chosen model on a [`FeatureMatrix`].
    ///
    /// Sparse inputs take the zero-skipping kernels (SVM sparse dots,
    /// MLP sparse×dense input layer); dense inputs take the original
    /// dense code. The two paths are bit-compatible (see
    /// `crates/classicml/tests/sparse_agreement.rs` and
    /// `crates/neuralnet/tests/sparse_training.rs`), so which one runs
    /// never changes an experiment's output. The random forest is the
    /// one model that always trains on a dense view — its per-node
    /// threshold scans want random column access — which is exactly
    /// what [`FeatureMatrix`] exists to express.
    pub(crate) fn fit(
        model: TextModel,
        x: &FeatureMatrix,
        y: &[u32],
        cfg: &TextAttackConfig,
        seed: u64,
    ) -> Self {
        let svm_cfg = classicml::SvmConfig { epochs: cfg.svm_epochs, lambda: cfg.svm_lambda };
        match model {
            TextModel::Svm => FittedTextModel::Svm(match x {
                FeatureMatrix::Sparse(m) => classicml::SvmClassifier::fit_sparse(m, y, &svm_cfg, seed),
                FeatureMatrix::Dense(rows) => classicml::SvmClassifier::fit(rows, y, &svm_cfg, seed),
            }),
            TextModel::Rfc => FittedTextModel::Rfc(classicml::RandomForest::fit_matrix(
                x,
                y,
                &classicml::ForestConfig { n_trees: cfg.rfc_trees, ..Default::default() },
                seed,
            )),
            TextModel::Mlp => {
                let n_classes = y.iter().copied().max().expect("non-empty") as usize + 1;
                let mut net = neuralnet::models::mlp(x.n_cols(), 100, n_classes.max(2), seed);
                let train_cfg = neuralnet::TrainConfig {
                    epochs: cfg.mlp_epochs,
                    lr: cfg.mlp_lr,
                    seed,
                    ..Default::default()
                };
                match x {
                    FeatureMatrix::Sparse(m) => {
                        neuralnet::train_sparse(&mut net, m, y, &train_cfg);
                    }
                    FeatureMatrix::Dense(rows) => {
                        let tensor = tensorlite::Tensor::from_rows(rows);
                        neuralnet::train(&mut net, &tensor, y, &train_cfg);
                    }
                }
                FittedTextModel::Mlp(net)
            }
        }
    }

    pub(crate) fn predict(&mut self, x: &FeatureMatrix) -> Vec<u32> {
        match self {
            FittedTextModel::Svm(m) => match x {
                FeatureMatrix::Sparse(rows) => m.predict_sparse(rows),
                FeatureMatrix::Dense(rows) => m.predict(rows),
            },
            FittedTextModel::Rfc(m) => m.predict(&x.to_dense_rows()),
            FittedTextModel::Mlp(net) => match x {
                FeatureMatrix::Sparse(rows) => net.predict_sparse(rows),
                FeatureMatrix::Dense(rows) => net.predict(&tensorlite::Tensor::from_rows(rows)),
            },
        }
    }
}

/// Runs the paper's text-side k-fold evaluation on a dataset.
///
/// The preprocessing (codebook + vocabulary) is fit on the *whole*
/// corpus "regardless of labels", exactly as in the paper; only the
/// classifier respects the train/test split.
///
/// Featurization is memoized process-wide (see [`crate::featcache`])
/// and stays sparse end-to-end: each fold gathers its train/test rows
/// into a [`CsrMatrix`] without ever materializing the dense feature
/// matrix. Folds run in parallel on the `ELEV_THREADS` executor. Each fold
/// trains with an RNG stream derived from the master seed and the fold
/// index, so the summary is bit-identical at every thread count.
///
/// # Panics
///
/// Panics if the dataset has fewer samples than folds or fewer than two
/// classes.
pub fn evaluate_text(
    ds: &Dataset,
    discretizer: Discretizer,
    model: TextModel,
    cfg: &TextAttackConfig,
) -> FoldSummary {
    assert!(ds.n_classes() >= 2, "need at least two classes");
    let executor = exec::Executor::from_env();
    let signals: Vec<Vec<f64>> =
        ds.samples().iter().map(|s| s.elevation.clone()).collect();
    let features: Vec<Arc<SparseVec>> = timing::time(Phase::Featurize, || {
        let pipeline = featcache::pipeline_for(&signals, discretizer, cfg.ngram, cfg.selection);
        executor.map(&signals, |_, s| pipeline.bow(s))
    });
    let gather = |rows: &[usize]| {
        FeatureMatrix::Sparse(CsrMatrix::from_rows(rows.iter().map(|&i| features[i].as_ref())))
    };
    let labels = ds.labels();
    let folds = stratified_k_fold(&labels, cfg.folds, cfg.seed);
    evaluate_folds_parallel(&labels, ds.n_classes(), &folds, &executor, |fold_idx, train, test| {
        let xt = gather(train);
        let yt: Vec<u32> = train.iter().map(|&i| labels[i]).collect();
        let fold_seed = exec::mix_seed(cfg.seed ^ 0x7E47, fold_idx as u64);
        let mut fitted =
            timing::time(Phase::Fit, || FittedTextModel::fit(model, &xt, &yt, cfg, fold_seed));
        let xs = gather(test);
        timing::time(Phase::Predict, || fitted.predict(&xs))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{Dataset, Sample};

    /// A toy dataset with two obviously separable elevation regimes.
    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::new(vec!["low".into(), "high".into()]);
        for i in 0..30 {
            let phase = i as f64 * 0.37;
            let low: Vec<f64> =
                (0..60).map(|t| 5.0 + ((t as f64) * 0.3 + phase).sin() * 2.0).collect();
            let high: Vec<f64> =
                (0..60).map(|t| 500.0 + ((t as f64) * 0.21 + phase).cos() * 40.0).collect();
            ds.push(Sample { elevation: low, label: 0, path: None }).unwrap();
            ds.push(Sample { elevation: high, label: 1, path: None }).unwrap();
        }
        ds
    }

    fn quick_cfg() -> TextAttackConfig {
        TextAttackConfig {
            folds: 3,
            ngram: 4,
            mlp_epochs: 30,
            rfc_trees: 15,
            svm_epochs: 10,
            ..Default::default()
        }
    }

    #[test]
    fn all_models_separate_toy_regimes() {
        let ds = toy_dataset();
        for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
            let summary = evaluate_text(&ds, Discretizer::Floor, model, &quick_cfg());
            let acc = summary.outcome().accuracy;
            assert!(acc > 0.9, "{model} accuracy {acc}");
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ds = toy_dataset();
        let a = evaluate_text(&ds, Discretizer::Floor, TextModel::Svm, &quick_cfg());
        let b = evaluate_text(&ds, Discretizer::Floor, TextModel::Svm, &quick_cfg());
        assert_eq!(a.pooled, b.pooled);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class_dataset() {
        let mut ds = Dataset::new(vec!["only".into()]);
        ds.push(Sample { elevation: vec![1.0], label: 0, path: None }).unwrap();
        evaluate_text(&ds, Discretizer::Floor, TextModel::Svm, &quick_cfg());
    }
}
