//! Parameterized experiment runners for every table and figure.
//!
//! Each function regenerates the data behind one artifact of the
//! paper's evaluation section; `crates/bench` binaries format the
//! returned rows and EXPERIMENTS.md records paper-vs-measured values.
//!
//! All runners accept an [`ExperimentScale`]: `full()` reproduces the
//! paper's sample sizes, folds, and class sweeps; `quick()` shrinks the
//! corpora and training budgets ~5–10× for smoke tests and CI.

use crate::image::{evaluate_image, ImageAttackConfig, ImageMethod};
use crate::text::{evaluate_text, TextAttackConfig, TextModel};
use datasets::split::balanced_downsample;
use datasets::{borough_level, city_level, overlap, user_specific, Dataset};
use evalkit::FoldOutcome;
use std::collections::BTreeMap;
use terrain::{CityId, ElevationService, SyntheticTerrain};
use textrep::Discretizer;

/// Experiment sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Multiplier on the paper's per-class sample counts (1.0 = paper).
    pub dataset_fraction: f64,
    /// k for "10-fold" evaluations (the paired 5-fold runs use half).
    pub folds: usize,
    /// CNN epochs per training (per round for fine-tuning).
    pub cnn_epochs: usize,
    /// MLP epochs.
    pub mlp_epochs: usize,
    /// Minimum per-class samples after scaling (keeps folds feasible).
    pub min_per_class: usize,
}

impl ExperimentScale {
    /// Paper-scale experiments (minutes on a laptop).
    pub fn full() -> Self {
        Self {
            dataset_fraction: 1.0,
            folds: 10,
            cnn_epochs: 12,
            mlp_epochs: 60,
            min_per_class: 12,
        }
    }

    /// Intermediate scale for single-core machines: the paper's fold
    /// counts and protocols at ~40% of the sample counts. This is the
    /// scale EXPERIMENTS.md records.
    pub fn medium() -> Self {
        Self {
            dataset_fraction: 0.4,
            folds: 10,
            cnn_epochs: 10,
            mlp_epochs: 50,
            min_per_class: 12,
        }
    }

    /// Reduced experiments for smoke tests (seconds).
    pub fn quick() -> Self {
        Self {
            dataset_fraction: 0.15,
            folds: 3,
            cnn_epochs: 4,
            mlp_epochs: 25,
            min_per_class: 9,
        }
    }

    /// Reads `ELEV_SCALE=full|medium|quick` from the environment
    /// (defaults to `quick` so casual `cargo run` stays fast).
    pub fn from_env() -> Self {
        match std::env::var("ELEV_SCALE").as_deref() {
            Ok("full") => Self::full(),
            Ok("medium") => Self::medium(),
            _ => Self::quick(),
        }
    }

    fn scale_count(&self, paper: usize) -> usize {
        (((paper as f64) * self.dataset_fraction).round() as usize).max(self.min_per_class)
    }

    fn text_cfg(&self, seed: u64) -> TextAttackConfig {
        TextAttackConfig {
            folds: self.folds,
            mlp_epochs: self.mlp_epochs,
            seed,
            ..Default::default()
        }
    }

    fn image_cfg(&self, seed: u64) -> ImageAttackConfig {
        ImageAttackConfig { epochs: self.cnn_epochs, seed, ..Default::default() }
    }
}

/// The three corpora, generated once and shared across experiments.
#[derive(Debug, Clone)]
pub struct Corpora {
    /// The user-specific dataset (Table I).
    pub user: Dataset,
    /// The city-level dataset (Table II).
    pub city: Dataset,
    /// One borough-labelled dataset per Table III city.
    pub boroughs: BTreeMap<CityId, Dataset>,
}

impl Corpora {
    /// Generates all three corpora at the given scale.
    pub fn generate(seed: u64, scale: &ExperimentScale) -> Self {
        let user_counts: Vec<(CityId, usize)> = user_specific::TABLE_I
            .iter()
            .map(|&(c, n)| (c, scale.scale_count(n)))
            .collect();
        let user = user_specific::build_with_counts(seed, &user_counts);

        let city_counts: Vec<(CityId, usize)> = city_level::TABLE_II
            .iter()
            .map(|&(c, n)| (c, scale.scale_count(n)))
            .collect();
        let city = city_level::build_with_counts(seed.wrapping_add(1), &city_counts);

        let mut boroughs = BTreeMap::new();
        for &cid in &CityId::BOROUGH_LEVEL {
            let counts: Vec<_> = borough_level::TABLE_III
                .iter()
                .filter(|(b, _)| b.city() == cid)
                .map(|&(b, n)| (b, scale.scale_count(n)))
                .collect();
            boroughs.insert(
                cid,
                borough_level::build_with_counts(seed.wrapping_add(2), &counts),
            );
        }
        Self { user, city, boroughs }
    }
}

/// One row of a classifier-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Number of classes `C`.
    pub classes: usize,
    /// Per-class sample size `S`.
    pub per_class: usize,
    /// The classifier.
    pub model: TextModel,
    /// Fold-averaged metrics.
    pub outcome: FoldOutcome,
    /// Cross-validation folds used.
    pub folds: usize,
}

/// Keeps the `c` most populous classes and balances them at the size of
/// the smallest kept class — the paper's Table IV/V protocol.
pub fn balanced_top_classes(ds: &Dataset, c: usize, seed: u64) -> Dataset {
    assert!(c >= 2 && c <= ds.n_classes(), "class count out of range");
    let keep: Vec<u32> = ds.classes_by_size().into_iter().take(c).collect();
    let filtered = ds.filter_classes(&keep);
    let s = *filtered.class_counts().iter().min().expect("non-empty");
    balanced_downsample(&filtered, s, seed)
}

/// Table IV: TM-1 on the user-specific dataset — SVM/RFC/MLP × 5- and
/// 10-fold × C ∈ {2, 3, 4} (balanced at the smallest kept class).
///
/// The model × fold-count combinations of each class sweep are
/// independent evaluations and run in parallel on the `ELEV_THREADS`
/// executor; every combination carries its own seed derivation, so row
/// values are identical at any thread count.
pub fn table4_tm1(user: &Dataset, scale: &ExperimentScale, seed: u64) -> Vec<SweepRow> {
    let datasets: Vec<(usize, Dataset)> =
        [2usize, 3, 4].iter().map(|&c| (c, balanced_top_classes(user, c, seed))).collect();
    let mut combos: Vec<(usize, TextModel, usize)> = Vec::new();
    for ds_idx in 0..datasets.len() {
        for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
            for folds in [scale.folds.div_ceil(2), scale.folds] {
                combos.push((ds_idx, model, folds));
            }
        }
    }
    exec::Executor::from_env().map(&combos, |_, &(ds_idx, model, folds)| {
        let (c, ds) = &datasets[ds_idx];
        let cfg = TextAttackConfig { folds, ..scale.text_cfg(seed) };
        let outcome = evaluate_text(ds, Discretizer::Floor, model, &cfg).outcome();
        SweepRow { classes: *c, per_class: ds.class_counts()[0], model, outcome, folds }
    })
}

/// Fig. 8 / Table VII text rows: TM-2 per-city borough classification.
/// City × model combinations evaluate in parallel.
pub fn fig8_tm2(
    boroughs: &BTreeMap<CityId, Dataset>,
    scale: &ExperimentScale,
    seed: u64,
) -> Vec<(CityId, TextModel, FoldOutcome)> {
    let mut combos: Vec<(CityId, &Dataset, TextModel)> = Vec::new();
    for (&city, ds) in boroughs {
        for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
            combos.push((city, ds, model));
        }
    }
    exec::Executor::from_env().map(&combos, |_, &(city, ds, model)| {
        let cfg = scale.text_cfg(seed);
        let outcome = evaluate_text(ds, Discretizer::mined(), model, &cfg).outcome();
        (city, model, outcome)
    })
}

/// Table V: TM-3 city identification — C ∈ {3, 5, 7, 8, 10} most
/// populous cities, balanced, 10-fold.
pub fn table5_tm3(city: &Dataset, scale: &ExperimentScale, seed: u64) -> Vec<SweepRow> {
    let datasets: Vec<(usize, Dataset)> = [3usize, 5, 7, 8, 10]
        .iter()
        .filter(|&&c| c <= city.n_classes())
        .map(|&c| (c, balanced_top_classes(city, c, seed)))
        .collect();
    let mut combos: Vec<(usize, TextModel)> = Vec::new();
    for ds_idx in 0..datasets.len() {
        for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
            combos.push((ds_idx, model));
        }
    }
    exec::Executor::from_env().map(&combos, |_, &(ds_idx, model)| {
        let (c, ds) = &datasets[ds_idx];
        let cfg = scale.text_cfg(seed);
        let outcome = evaluate_text(ds, Discretizer::mined(), model, &cfg).outcome();
        SweepRow {
            classes: *c,
            per_class: ds.class_counts()[0],
            model,
            outcome,
            folds: cfg.folds,
        }
    })
}

/// Injects the paper's 30–35% simulated overlap into a mined dataset.
pub fn inject_overlap(ds: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let service = ElevationService::new(SyntheticTerrain::new(seed));
    overlap::inject(ds, fraction, seed, &service)
}

/// Table VI: TM-3 with 35% injected overlap.
pub fn table6_tm3_overlap(
    city: &Dataset,
    scale: &ExperimentScale,
    seed: u64,
) -> Vec<SweepRow> {
    let injected = inject_overlap(city, 0.35, seed.wrapping_add(77));
    table5_tm3(&injected, scale, seed)
}

/// Fig. 9: TM-2 MLP accuracy, original vs 30–34% overlap-injected, per
/// city. Returns `(city, original, injected)` outcomes.
pub fn fig9_tm2_overlap(
    boroughs: &BTreeMap<CityId, Dataset>,
    scale: &ExperimentScale,
    seed: u64,
) -> Vec<(CityId, FoldOutcome, FoldOutcome)> {
    let cities: Vec<(CityId, &Dataset)> = boroughs.iter().map(|(&c, d)| (c, d)).collect();
    exec::Executor::from_env().map(&cities, |_, &(city, ds)| {
        let cfg = scale.text_cfg(seed);
        let original =
            evaluate_text(ds, Discretizer::mined(), TextModel::Mlp, &cfg).outcome();
        let injected_ds = inject_overlap(ds, 0.32, seed.wrapping_add(131));
        let injected =
            evaluate_text(&injected_ds, Discretizer::mined(), TextModel::Mlp, &cfg).outcome();
        (city, original, injected)
    })
}

/// One Table VII row: the best text accuracy (DS column) vs the CNN
/// methods (UWL/WL/FT) for a single evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodComparisonRow {
    /// Row label ("TM-1", "TM-2: LA", …).
    pub setting: String,
    /// Best balanced/downsampled text accuracy.
    pub text_ds: f64,
    /// CNN with unweighted loss (biased baseline).
    pub uwl: f64,
    /// CNN with weighted loss.
    pub wl: f64,
    /// CNN with fine-tuning rounds.
    pub ft: f64,
}

/// Table VII: maximum achieved accuracy across methods, for TM-1, the
/// six TM-2 cities, and TM-3.
pub fn table7_methods(corpora: &Corpora, scale: &ExperimentScale, seed: u64) -> Vec<MethodComparisonRow> {
    let mut rows = Vec::new();

    let image_methods = |ds: &Dataset, seed: u64| -> (f64, f64, f64) {
        let cfg = scale.image_cfg(seed);
        let methods =
            [ImageMethod::UnweightedLoss, ImageMethod::WeightedLoss, ImageMethod::FineTune];
        let accs = exec::Executor::from_env().map(&methods, |_, &m| {
            evaluate_image(ds, m, &cfg).confusion.ovr_accuracy()
        });
        (accs[0], accs[1], accs[2])
    };

    // TM-1.
    {
        let text_rows = table4_tm1(&corpora.user, scale, seed);
        let text_ds = text_rows
            .iter()
            .map(|r| r.outcome.accuracy)
            .fold(0.0f64, f64::max);
        let (uwl, wl, ft) = image_methods(&corpora.user, seed);
        rows.push(MethodComparisonRow { setting: "TM-1".into(), text_ds, uwl, wl, ft });
    }
    // TM-2 per city.
    for (&city, ds) in &corpora.boroughs {
        let cfg = scale.text_cfg(seed);
        let text_ds = [TextModel::Svm, TextModel::Rfc, TextModel::Mlp]
            .into_iter()
            .map(|m| evaluate_text(ds, Discretizer::mined(), m, &cfg).outcome().ovr_accuracy)
            .fold(0.0f64, f64::max);
        let (uwl, wl, ft) = image_methods(ds, seed.wrapping_add(city as u64 + 1));
        rows.push(MethodComparisonRow {
            setting: format!("TM-2: {}", city.abbrev()),
            text_ds,
            uwl,
            wl,
            ft,
        });
    }
    // TM-3.
    {
        let text_rows = table5_tm3(&corpora.city, scale, seed);
        let text_ds = text_rows
            .iter()
            .map(|r| r.outcome.ovr_accuracy)
            .fold(0.0f64, f64::max);
        let (uwl, wl, ft) = image_methods(&corpora.city, seed.wrapping_add(999));
        rows.push(MethodComparisonRow { setting: "TM-3".into(), text_ds, uwl, wl, ft });
    }
    rows
}

/// Table VIII: fine-tuning vs training budget. The paper sweeps epoch
/// sizes {500, 1000, 2000}; we sweep proportional budgets
/// `{epochs/2, epochs, 2·epochs}` of the configured scale and report
/// accuracy / recall / specificity / F1 for TM-1 and TM-3.
pub fn table8_finetune_epochs(
    corpora: &Corpora,
    scale: &ExperimentScale,
    seed: u64,
) -> Vec<(String, usize, FoldOutcome)> {
    let mut rows = Vec::new();
    for (name, ds) in [("TM-1", &corpora.user), ("TM-3", &corpora.city)] {
        for mult in [1usize, 2, 4] {
            let epochs = (scale.cnn_epochs * mult / 2).max(1);
            let cfg = ImageAttackConfig { epochs, ..scale.image_cfg(seed) };
            let out = evaluate_image(ds, ImageMethod::FineTune, &cfg);
            let m = &out.confusion;
            rows.push((
                name.to_owned(),
                epochs,
                FoldOutcome {
                    accuracy: m.accuracy(),
                    ovr_accuracy: m.ovr_accuracy(),
                    precision: m.macro_precision(),
                    recall: m.macro_recall(),
                    f1: m.macro_f1(),
                    specificity: m.macro_specificity(),
                },
            ));
        }
    }
    rows
}

/// Table IX: fine-tuning on the six TM-2 cities at the middle budget.
pub fn table9_finetune_tm2(
    corpora: &Corpora,
    scale: &ExperimentScale,
    seed: u64,
) -> Vec<(CityId, FoldOutcome)> {
    let cities: Vec<(CityId, &Dataset)> =
        corpora.boroughs.iter().map(|(&c, d)| (c, d)).collect();
    exec::Executor::from_env().map(&cities, |_, &(city, ds)| {
        let cfg = scale.image_cfg(seed.wrapping_add(city as u64));
        let out = evaluate_image(ds, ImageMethod::FineTune, &cfg);
        let m = &out.confusion;
        (
            city,
            FoldOutcome {
                accuracy: m.accuracy(),
                ovr_accuracy: m.ovr_accuracy(),
                precision: m.macro_precision(),
                recall: m.macro_recall(),
                f1: m.macro_f1(),
                specificity: m.macro_specificity(),
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            dataset_fraction: 0.04,
            folds: 3,
            cnn_epochs: 2,
            mlp_epochs: 10,
            min_per_class: 9,
        }
    }

    #[test]
    fn corpora_generation_respects_scaling() {
        let scale = tiny_scale();
        let corpora = Corpora::generate(3, &scale);
        assert_eq!(corpora.user.n_classes(), 4);
        assert_eq!(corpora.city.n_classes(), 10);
        assert_eq!(corpora.boroughs.len(), 6);
        // Scaled NYC count: max(9, round(2437 * 0.04)) = 97.
        assert_eq!(corpora.city.class_counts()[0], 97);
        // Small classes clamp at min_per_class.
        assert_eq!(*corpora.user.class_counts().last().unwrap(), 9);
    }

    #[test]
    fn balanced_top_classes_balances() {
        let corpora = Corpora::generate(4, &tiny_scale());
        let ds = balanced_top_classes(&corpora.city, 3, 1);
        assert_eq!(ds.n_classes(), 3);
        let counts = ds.class_counts();
        assert!(counts.iter().all(|&c| c == counts[0]));
    }

    #[test]
    fn table4_rows_have_expected_structure() {
        let scale = tiny_scale();
        let corpora = Corpora::generate(5, &scale);
        let rows = table4_tm1(&corpora.user, &scale, 1);
        // 3 class-configs × 3 models × 2 fold-settings.
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| r.outcome.accuracy >= 0.0 && r.outcome.accuracy <= 1.0));
    }

    #[test]
    fn overlap_injection_grows_dataset() {
        let scale = tiny_scale();
        let corpora = Corpora::generate(6, &scale);
        let injected = inject_overlap(&corpora.city, 0.35, 9);
        assert!(injected.len() > corpora.city.len());
    }
}
