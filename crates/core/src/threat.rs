//! The paper's three threat models (§II-A).

use terrain::CityId;

/// Who the adversary is and what they already know.
///
/// All three adversaries observe only *publicly shared elevation
/// profiles*; they differ in prior knowledge and in the granularity of
/// the location they recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreatModel {
    /// **TM-1** — the adversary holds the target's workout *history*
    /// (an ex-connection, a former training partner) and wants the
    /// target's **latest workout region**. Evaluated on the
    /// user-specific dataset; the strongest adversary.
    Tm1,
    /// **TM-2** — the adversary knows the target's **city** (public
    /// profile pages, athlinks.com, public records) and wants the
    /// **borough** of an activity whose map is hidden. Evaluated on the
    /// borough-level dataset of the given city.
    Tm2(CityId),
    /// **TM-3** — the adversary knows nothing about the target but can
    /// profile city elevations from public sources (Google Maps,
    /// OpenStreetMap) and wants the target's **city**; a stepping stone
    /// toward TM-2. Evaluated on the city-level dataset.
    Tm3,
}

impl ThreatModel {
    /// What the adversary recovers, for report headers.
    pub fn objective(&self) -> &'static str {
        match self {
            ThreatModel::Tm1 => "latest workout region of a known target",
            ThreatModel::Tm2(_) => "borough within a known city",
            ThreatModel::Tm3 => "city, with no prior knowledge",
        }
    }
}

impl std::fmt::Display for ThreatModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreatModel::Tm1 => write!(f, "TM-1"),
            ThreatModel::Tm2(city) => write!(f, "TM-2: {}", city.abbrev()),
            ThreatModel::Tm3 => write!(f, "TM-3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ThreatModel::Tm1.to_string(), "TM-1");
        assert_eq!(ThreatModel::Tm2(CityId::NewYorkCity).to_string(), "TM-2: NYC");
        assert_eq!(ThreatModel::Tm3.to_string(), "TM-3");
    }

    #[test]
    fn objectives_are_distinct() {
        let objs = [
            ThreatModel::Tm1.objective(),
            ThreatModel::Tm2(CityId::Miami).objective(),
            ThreatModel::Tm3.objective(),
        ];
        assert_eq!(objs.iter().collect::<std::collections::HashSet<_>>().len(), 3);
    }
}
