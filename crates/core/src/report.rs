//! The per-track location-leakage report.
//!
//! This is the serving layer's output contract: one JSON object per
//! uploaded track stating what the ingestion front door did with it
//! and, when a profile survived, what location each threat-model
//! classifier inferred. Rendering is hand-formatted like
//! [`crate::ingest::IngestReport::to_json`] — flat, deterministic key
//! order, stable float formatting — so byte-equality is a meaningful
//! test between the online server and the offline pipeline, and the
//! conformance goldens can pin the exact bytes.

use crate::ingest::{Disposition, QuarantineReason};

/// What ingestion did to the uploaded track.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSummary {
    /// `"clean"`, `"repaired"`, or `"quarantined"`.
    pub disposition: &'static str,
    /// Quarantine reason name, when quarantined.
    pub reason: Option<&'static str>,
    /// Total points touched by repairs.
    pub repaired_points: usize,
    /// Profile length delivered to the classifiers (0 when
    /// quarantined).
    pub profile_len: usize,
}

impl IngestSummary {
    /// Summarizes a single-track [`Disposition`].
    pub fn of(disposition: &Disposition, profile_len: usize) -> Self {
        match disposition {
            Disposition::Clean => Self {
                disposition: "clean",
                reason: None,
                repaired_points: 0,
                profile_len,
            },
            Disposition::Repaired(repairs) => Self {
                disposition: "repaired",
                reason: None,
                repaired_points: repairs.iter().map(|r| r.points).sum(),
                profile_len,
            },
            Disposition::Quarantined(reason) => Self {
                disposition: "quarantined",
                reason: Some(quarantine_name(reason)),
                repaired_points: 0,
                profile_len: 0,
            },
        }
    }
}

fn quarantine_name(reason: &QuarantineReason) -> &'static str {
    reason.name()
}

/// One model's vote in a task report.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelVote {
    /// Model name (`"svm"`, `"rfc"`, `"mlp"`).
    pub model: &'static str,
    /// Predicted label name.
    pub label: String,
}

/// One threat-model's inference over the profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// Task name (`"tm1"` region-level, `"tm3"` city-level).
    pub task: String,
    /// Ensemble prediction: the majority label across the votes; ties
    /// break toward the earliest-voting model, deterministically.
    pub prediction: String,
    /// Fraction of models agreeing with the ensemble prediction.
    pub agreement: f64,
    /// Every model's individual vote, in fixed model order.
    pub votes: Vec<ModelVote>,
}

impl TaskReport {
    /// Builds a task report from per-model votes (must be non-empty):
    /// counts identical labels, takes the most frequent, breaks ties
    /// toward the label that appeared first in vote order.
    ///
    /// # Panics
    ///
    /// Panics when `votes` is empty.
    pub fn from_votes(task: impl Into<String>, votes: Vec<ModelVote>) -> Self {
        assert!(!votes.is_empty(), "a task report needs at least one vote");
        let mut best: Option<(usize, usize)> = None; // (count, first index)
        for (i, v) in votes.iter().enumerate() {
            if votes[..i].iter().any(|prev| prev.label == v.label) {
                continue; // counted at its first occurrence
            }
            let count = votes.iter().filter(|o| o.label == v.label).count();
            let better = match best {
                None => true,
                Some((bc, _)) => count > bc,
            };
            if better {
                best = Some((count, i));
            }
        }
        let (count, idx) = best.expect("non-empty votes");
        Self {
            task: task.into(),
            prediction: votes[idx].label.clone(),
            agreement: count as f64 / votes.len() as f64,
            votes,
        }
    }
}

/// The full per-track leakage report.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Ingestion outcome.
    pub ingest: IngestSummary,
    /// One report per threat-model task; empty when the track was
    /// quarantined.
    pub tasks: Vec<TaskReport>,
}

impl LeakageReport {
    /// `"ok"` when a profile reached the classifiers, `"quarantined"`
    /// otherwise.
    pub fn status(&self) -> &'static str {
        if self.ingest.disposition == "quarantined" {
            "quarantined"
        } else {
            "ok"
        }
    }

    /// Renders the report as a flat, deterministically ordered JSON
    /// object (hand-formatted; byte-stable across thread counts and
    /// serving/offline paths).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"status\": \"{}\"", self.status()));
        out.push_str(", \"ingest\": {");
        out.push_str(&format!("\"disposition\": \"{}\"", self.ingest.disposition));
        if let Some(reason) = self.ingest.reason {
            out.push_str(&format!(", \"reason\": \"{reason}\""));
        }
        out.push_str(&format!(
            ", \"repaired_points\": {}, \"profile_len\": {}",
            self.ingest.repaired_points, self.ingest.profile_len
        ));
        out.push('}');
        out.push_str(", \"tasks\": [");
        let tasks: Vec<String> = self
            .tasks
            .iter()
            .map(|t| {
                let votes: Vec<String> = t
                    .votes
                    .iter()
                    .map(|v| format!("\"{}\": \"{}\"", v.model, escape(&v.label)))
                    .collect();
                format!(
                    "{{\"task\": \"{}\", \"prediction\": \"{}\", \"agreement\": {:.4}, \"models\": {{{}}}}}",
                    escape(&t.task),
                    escape(&t.prediction),
                    t.agreement,
                    votes.join(", ")
                )
            })
            .collect();
        out.push_str(&tasks.join(", "));
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (labels and task names are plain
/// identifiers today; escaping keeps the renderer total anyway).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{Repair, RepairKind};

    fn vote(model: &'static str, label: &str) -> ModelVote {
        ModelVote { model, label: label.to_owned() }
    }

    #[test]
    fn majority_and_ties() {
        let t = TaskReport::from_votes(
            "tm1",
            vec![vote("svm", "A"), vote("rfc", "B"), vote("mlp", "B")],
        );
        assert_eq!(t.prediction, "B");
        assert!((t.agreement - 2.0 / 3.0).abs() < 1e-12);

        // Three-way tie: earliest vote wins.
        let t = TaskReport::from_votes(
            "tm1",
            vec![vote("svm", "C"), vote("rfc", "A"), vote("mlp", "B")],
        );
        assert_eq!(t.prediction, "C");
        assert!((t.agreement - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_shape_is_stable() {
        let report = LeakageReport {
            ingest: IngestSummary::of(
                &Disposition::Repaired(vec![Repair {
                    kind: RepairKind::InterpolatedNan,
                    points: 3,
                }]),
                120,
            ),
            tasks: vec![TaskReport::from_votes(
                "tm1",
                vec![vote("svm", "Dc"), vote("rfc", "Dc"), vote("mlp", "Dc")],
            )],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"status\": \"ok\", \"ingest\": {\"disposition\": \"repaired\", \
             \"repaired_points\": 3, \"profile_len\": 120}, \"tasks\": \
             [{\"task\": \"tm1\", \"prediction\": \"Dc\", \"agreement\": 1.0000, \
             \"models\": {\"svm\": \"Dc\", \"rfc\": \"Dc\", \"mlp\": \"Dc\"}}]}"
        );
    }

    #[test]
    fn quarantined_report() {
        let report = LeakageReport {
            ingest: IngestSummary::of(
                &Disposition::Quarantined(crate::ingest::QuarantineReason::TooShort {
                    points: 3,
                }),
                0,
            ),
            tasks: vec![],
        };
        assert_eq!(report.status(), "quarantined");
        let json = report.to_json();
        assert!(json.contains("\"reason\": \"too_short\""), "{json}");
        assert!(json.ends_with("\"tasks\": []}"), "{json}");
    }

    #[test]
    fn escaping_is_total() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
