//! Persistence integration tests: a trained attacker survives a save /
//! load cycle byte-for-byte in behaviour.

use datasets::{Dataset, Sample};
use elev_core::attacker::TextAttacker;
use elev_core::text::{TextAttackConfig, TextModel};
use textrep::Discretizer;

fn corpus() -> Dataset {
    let mut ds = Dataset::new(vec!["coast".into(), "mountain".into(), "plain".into()]);
    for i in 0..15 {
        let phase = i as f64 * 0.7;
        let coast: Vec<f64> =
            (0..70).map(|t| 3.0 + ((t as f64) * 0.25 + phase).sin() * 1.2).collect();
        let mountain: Vec<f64> =
            (0..70).map(|t| 1500.0 + ((t as f64) * 0.4 + phase).sin() * 120.0).collect();
        let plain: Vec<f64> =
            (0..70).map(|t| 250.0 + ((t as f64) * 0.15 + phase).cos() * 8.0).collect();
        ds.push(Sample { elevation: coast, label: 0, path: None }).unwrap();
        ds.push(Sample { elevation: mountain, label: 1, path: None }).unwrap();
        ds.push(Sample { elevation: plain, label: 2, path: None }).unwrap();
    }
    ds
}

#[test]
fn saved_attackers_agree_with_originals_on_every_model() {
    let ds = corpus();
    let cfg = TextAttackConfig {
        ngram: 4,
        svm_epochs: 12,
        rfc_trees: 12,
        mlp_epochs: 25,
        ..Default::default()
    };
    let probes: Vec<Vec<f64>> = vec![
        (0..70).map(|t| 2.5 + ((t as f64) * 0.2).sin()).collect(),
        (0..70).map(|t| 1480.0 + ((t as f64) * 0.35).cos() * 100.0).collect(),
        (0..70).map(|t| 255.0 + ((t as f64) * 0.18).sin() * 6.0).collect(),
    ];
    for model in [TextModel::Svm, TextModel::Rfc, TextModel::Mlp] {
        let mut original = TextAttacker::fit(&ds, Discretizer::Floor, model, &cfg);
        let json = original.to_json();
        let mut restored = TextAttacker::from_json(&json).expect("valid json");
        assert_eq!(restored.label_names(), original.label_names());
        for probe in &probes {
            assert_eq!(
                original.predict(probe),
                restored.predict(probe),
                "{model} disagreed after reload"
            );
        }
    }
}

#[test]
fn save_load_through_a_real_file() {
    let ds = corpus();
    let cfg = TextAttackConfig { ngram: 4, svm_epochs: 10, ..Default::default() };
    let mut attacker = TextAttacker::fit(&ds, Discretizer::Floor, TextModel::Svm, &cfg);
    let path = std::env::temp_dir().join(format!("attacker-{}.json", std::process::id()));
    std::fs::write(&path, attacker.to_json()).unwrap();
    let mut loaded =
        TextAttacker::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let probe: Vec<f64> = (0..70).map(|t| 3.1 + ((t as f64) * 0.22).sin()).collect();
    assert_eq!(loaded.predict_name(&probe), "coast");
    std::fs::remove_file(path).ok();
}

#[test]
fn mlp_snapshot_is_a_save_load_fixed_point() {
    // Stronger than label agreement: two save/load generations carry
    // identical content (compared structurally — map key order in JSON
    // is not canonical).
    let ds = corpus();
    let cfg = TextAttackConfig { ngram: 4, mlp_epochs: 20, ..Default::default() };
    let mut a = TextAttacker::fit(&ds, Discretizer::Floor, TextModel::Mlp, &cfg);
    let j1 = a.to_json();
    let mut b = TextAttacker::from_json(&j1).unwrap();
    let j2 = b.to_json();
    let v1: serde_json::Value = serde_json::from_str(&j1).unwrap();
    let v2: serde_json::Value = serde_json::from_str(&j2).unwrap();
    assert_eq!(v1, v2, "round-tripping must be a structural fixed point");
}
