//! The featurization cache must be invisible to results: a cache hit
//! returns exactly the bits a cold computation produces, for both BoW
//! vectors and rasters, and distinct configs never alias.

use std::sync::{Arc, Mutex};

use elev_core::featcache;
use imgrep::{render, ImageConfig};
use sparsemat::SparseVec;
use textrep::{Discretizer, FeatureSelection, TextPipeline};

/// The cache and its counters are process-global; serialize the tests
/// in this binary so counter assertions see only their own traffic.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn corpus() -> Vec<Vec<f64>> {
    (0..8)
        .map(|i| {
            (0..40)
                .map(|t| 15.0 * (i + 1) as f64 + ((t as f64) * 0.21 + i as f64).sin() * 3.0)
                .collect()
        })
        .collect()
}

#[test]
fn cached_bow_equals_cold_computation() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let signals = corpus();
    let (d, n, sel) = (Discretizer::Floor, 3, FeatureSelection::keep_all());

    // Cold reference, computed without the cache.
    let reference = TextPipeline::fit(d, n, sel, &signals);
    let cold: Vec<Vec<f32>> = signals.iter().map(|s| reference.transform(s)).collect();

    featcache::reset();
    let shared = featcache::pipeline_for(&signals, d, n, sel);
    let first: Vec<Arc<SparseVec>> = signals.iter().map(|s| shared.bow(s)).collect();
    let misses_after_first = featcache::stats();
    assert_eq!(misses_after_first.bow_misses, signals.len() as u64);
    assert_eq!(misses_after_first.bow_hits, 0);
    // The memory accounting matches what was actually cached.
    let cached_nnz: u64 = first.iter().map(|r| r.nnz() as u64).sum();
    let cached_elems: u64 = first.iter().map(|r| r.dim() as u64).sum();
    assert_eq!(misses_after_first.bow_nnz, cached_nnz);
    assert_eq!(misses_after_first.bow_dense_elems, cached_elems);

    // Warm pass: every lookup hits, and every row densifies to exactly
    // the bits of the cold computation (same allocation, in fact).
    let again = featcache::pipeline_for(&signals, d, n, sel);
    let second: Vec<Arc<SparseVec>> = signals.iter().map(|s| again.bow(s)).collect();
    let stats = featcache::stats();
    assert_eq!(stats.pipeline_hits, 1);
    assert_eq!(stats.bow_hits, signals.len() as u64);
    for ((cold_row, a), b) in cold.iter().zip(&first).zip(&second) {
        assert_eq!(&a.to_dense(), cold_row);
        assert!(Arc::ptr_eq(a, b), "warm lookup must share the cached allocation");
    }
}

#[test]
fn cached_raster_equals_cold_render() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let cfg = ImageConfig::default();
    let signal: Vec<f64> = (0..80).map(|t| 30.0 + ((t as f64) * 0.17).cos() * 6.0).collect();

    let cold = render(&signal, &cfg).pixels;
    let cached = featcache::raster_for(&signal, &cfg);
    assert_eq!(*cached, cold);

    let warm = featcache::raster_for(&signal, &cfg);
    assert!(Arc::ptr_eq(&cached, &warm));
    assert_eq!(*warm, cold);
}

#[test]
fn distinct_configs_never_alias() {
    let _guard = CACHE_LOCK.lock().unwrap();
    let signals = corpus();
    let a = featcache::pipeline_for(&signals, Discretizer::Floor, 3, FeatureSelection::keep_all());
    let b = featcache::pipeline_for(&signals, Discretizer::Floor, 4, FeatureSelection::keep_all());
    let row_a = a.bow(&signals[0]);
    let row_b = b.bow(&signals[0]);
    // 3-grams and 4-grams of the same corpus produce different vocab
    // sizes, so aliasing would be visible as equal dimensions here.
    assert_ne!(row_a.dim(), row_b.dim());

    let cfg = ImageConfig::default();
    let small = ImageConfig { width: 16, height: 16, ..cfg };
    let r1 = featcache::raster_for(&signals[0], &cfg);
    let r2 = featcache::raster_for(&signals[0], &small);
    assert_ne!(r1.len(), r2.len());
}
