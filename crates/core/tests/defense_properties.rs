//! Property-based tests for the defense transformations and the
//! spectral baseline features.

use elev_core::defense::Defense;
use elev_core::spectral::{spectral_features, SPECTRAL_POINTS};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..3000.0, 1..300)
}

proptest! {
    #[test]
    fn coarsen_is_idempotent(profile in arb_profile(), step in 0.5f64..50.0) {
        let d = Defense::Coarsen { step_m: step };
        let once = d.apply(&profile);
        let twice = d.apply(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn coarsen_error_is_bounded(profile in arb_profile(), step in 0.5f64..50.0) {
        let out = Defense::Coarsen { step_m: step }.apply(&profile);
        for (orig, c) in profile.iter().zip(&out) {
            prop_assert!((orig - c).abs() <= step / 2.0 + 1e-9);
        }
    }

    #[test]
    fn laplace_is_deterministic_per_seed(profile in arb_profile(), seed in 0u64..1000) {
        let d = Defense::LaplaceNoise { scale_m: 3.0, seed };
        prop_assert_eq!(d.apply(&profile), d.apply(&profile));
        let other = Defense::LaplaceNoise { scale_m: 3.0, seed: seed ^ 1 };
        if profile.len() > 3 {
            prop_assert_ne!(d.apply(&profile), other.apply(&profile));
        }
    }

    #[test]
    fn summary_is_nonnegative_and_fixed_width(profile in arb_profile(), bins in 1usize..16) {
        let out = Defense::SummaryOnly { bins }.apply(&profile);
        prop_assert_eq!(out.len(), bins * 2);
        prop_assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn summary_totals_match_whole_route(profile in arb_profile()) {
        // Single-bin summary equals total ascent/descent of the route.
        let out = Defense::SummaryOnly { bins: 1 }.apply(&profile);
        let (mut asc, mut desc) = (0.0, 0.0);
        for w in profile.windows(2) {
            let d = w[1] - w[0];
            if d > 0.0 { asc += d } else { desc -= d }
        }
        prop_assert!((out[0] - asc).abs() < 1e-9);
        prop_assert!((out[1] - desc).abs() < 1e-9);
    }

    #[test]
    fn relative_profile_is_shift_invariant(profile in arb_profile(), shift in 0.0f64..500.0) {
        let d = Defense::RelativeProfile;
        let base = d.apply(&profile);
        let shifted: Vec<f64> = profile.iter().map(|e| e + shift).collect();
        let moved = d.apply(&shifted);
        for (a, b) in base.iter().zip(&moved) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn spectral_features_are_unit_norm_and_fixed_dim(profile in arb_profile()) {
        let f = spectral_features(&profile);
        prop_assert_eq!(f.len(), 6 + SPECTRAL_POINTS / 2);
        let norm: f32 = f.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-3 || norm == 0.0);
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spectral_features_are_deterministic(profile in arb_profile()) {
        prop_assert_eq!(spectral_features(&profile), spectral_features(&profile));
    }
}
