//! Property-based tests for dataset mechanics (splits, balancing,
//! serialization) on synthetic label configurations.

use datasets::split::{
    balanced_downsample, inverse_proportional_test_split, stratified_k_fold,
    stratified_train_test,
};
use datasets::{Dataset, Sample};
use proptest::prelude::*;

fn arb_class_counts() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(4usize..40, 2..6)
}

fn labels_from(counts: &[usize]) -> Vec<u32> {
    counts
        .iter()
        .enumerate()
        .flat_map(|(c, &n)| std::iter::repeat_n(c as u32, n))
        .collect()
}

fn dataset_from(counts: &[usize]) -> Dataset {
    let names = (0..counts.len()).map(|i| format!("class-{i}")).collect();
    let mut ds = Dataset::new(names);
    for (c, &n) in counts.iter().enumerate() {
        for k in 0..n {
            ds.push(Sample {
                elevation: vec![c as f64, k as f64],
                label: c as u32,
                path: None,
            })
            .unwrap();
        }
    }
    ds
}

proptest! {
    #[test]
    fn k_fold_tests_every_sample_exactly_once(
        counts in arb_class_counts(),
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let labels = labels_from(&counts);
        let folds = stratified_k_fold(&labels, k, seed);
        let mut tested = vec![0usize; labels.len()];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), labels.len());
            for &i in test {
                tested[i] += 1;
            }
        }
        prop_assert!(tested.iter().all(|&c| c == 1));
    }

    #[test]
    fn k_fold_class_mix_is_balanced(counts in arb_class_counts(), seed in 0u64..1000) {
        let labels = labels_from(&counts);
        for (_, test) in stratified_k_fold(&labels, 4, seed) {
            for (c, &n) in counts.iter().enumerate() {
                let in_test = test.iter().filter(|&&i| labels[i] == c as u32).count();
                // Each fold holds n/k ± 1 samples of each class.
                let expect = n / 4;
                prop_assert!(in_test >= expect.saturating_sub(1) && in_test <= expect + 1);
            }
        }
    }

    #[test]
    fn train_test_split_partitions(counts in arb_class_counts(),
                                   frac in 0.1f64..0.5, seed in 0u64..1000) {
        let labels = labels_from(&counts);
        let (train, test) = stratified_train_test(&labels, frac, seed);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), labels.len());
        prop_assert!(!test.is_empty());
        prop_assert!(!train.is_empty());
    }

    #[test]
    fn balanced_downsample_yields_equal_classes(
        counts in arb_class_counts(),
        seed in 0u64..1000,
    ) {
        let ds = dataset_from(&counts);
        let s = *counts.iter().min().unwrap();
        let bal = balanced_downsample(&ds, s, seed);
        prop_assert!(bal.class_counts().iter().all(|&c| c == s));
        prop_assert_eq!(bal.len(), s * counts.len());
    }

    #[test]
    fn inverse_split_partitions_and_prefers_minorities(seed in 0u64..500) {
        let counts = vec![60usize, 12];
        let labels = labels_from(&counts);
        let (train, test) = inverse_proportional_test_split(&labels, 24, seed);
        prop_assert_eq!(train.len() + test.len(), 72);
        let minority_in_test = test.iter().filter(|&&i| labels[i] == 1).count();
        // Proportional sampling would put ~4 minority samples in test;
        // inverse weighting must never fall below that, and on average
        // lands far above (see the deterministic unit test in split.rs).
        prop_assert!(minority_in_test >= 4, "minority {minority_in_test}");
    }

    #[test]
    fn filter_classes_preserves_sample_content(counts in arb_class_counts()) {
        let ds = dataset_from(&counts);
        let keep: Vec<u32> = vec![1, 0];
        let filtered = ds.filter_classes(&keep);
        prop_assert_eq!(filtered.n_classes(), 2);
        prop_assert_eq!(filtered.len(), counts[0] + counts[1]);
        for s in filtered.samples() {
            // New label 0 = old class 1: elevation[0] encodes old class.
            let old = s.elevation[0] as usize;
            let new = s.label as usize;
            prop_assert_eq!(keep[new] as usize, old);
        }
    }

    #[test]
    fn json_roundtrip_any_dataset(counts in arb_class_counts()) {
        let ds = dataset_from(&counts);
        let back = Dataset::from_json(&ds.to_json().unwrap()).unwrap();
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn shuffle_is_a_permutation(counts in arb_class_counts(), seed in 0u64..1000) {
        let ds = dataset_from(&counts);
        let sh = ds.shuffled(seed);
        prop_assert_eq!(sh.len(), ds.len());
        prop_assert_eq!(sh.class_counts(), ds.class_counts());
    }
}
