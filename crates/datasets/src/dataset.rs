//! The labelled sample collection shared by every experiment.

use geoprim::{average_pairwise_iou, BoundingBox, LatLon};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A single labelled elevation profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The elevation profile (the adversary's observation).
    pub elevation: Vec<f64>,
    /// Class index into [`Dataset::label_names`].
    pub label: u32,
    /// The underlying trajectory, kept for overlap measurement and
    /// overlap injection. `None` once a dataset has been stripped for
    /// release (the adversary never uses it).
    pub path: Option<Vec<LatLon>>,
}

impl Sample {
    /// Tight rectangle around the trajectory, if a path is attached.
    pub fn bbox(&self) -> Option<BoundingBox> {
        let path = self.path.as_ref()?;
        BoundingBox::tight(path.iter().copied()).ok()
    }
}

/// Errors from dataset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A sample referenced a label index with no name.
    LabelOutOfRange {
        /// The offending label.
        label: u32,
        /// Number of declared classes.
        classes: usize,
    },
    /// (De)serialization failed.
    Serde {
        /// Underlying message.
        message: String,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DatasetError::Serde { message } => write!(f, "serde failure: {message}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled dataset of elevation profiles.
///
/// # Examples
///
/// ```
/// use datasets::{Dataset, Sample};
///
/// let mut ds = Dataset::new(vec!["Miami".into(), "Tampa".into()]);
/// ds.push(Sample { elevation: vec![2.0, 2.5, 3.0], label: 0, path: None })?;
/// ds.push(Sample { elevation: vec![9.0, 11.0, 10.0], label: 1, path: None })?;
/// assert_eq!(ds.class_counts(), vec![1, 1]);
/// # Ok::<(), datasets::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
    label_names: Vec<String>,
}

impl Dataset {
    /// An empty dataset with the given class names.
    pub fn new(label_names: Vec<String>) -> Self {
        Self { samples: Vec::new(), label_names }
    }

    /// Adds a sample.
    ///
    /// # Errors
    ///
    /// [`DatasetError::LabelOutOfRange`] if the label has no name.
    pub fn push(&mut self, sample: Sample) -> Result<(), DatasetError> {
        if (sample.label as usize) >= self.label_names.len() {
            return Err(DatasetError::LabelOutOfRange {
                label: sample.label,
                classes: self.label_names.len(),
            });
        }
        self.samples.push(sample);
        Ok(())
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Class names, indexed by label.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of declared classes.
    pub fn n_classes(&self) -> usize {
        self.label_names.len()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.label_names.len()];
        for s in &self.samples {
            counts[s.label as usize] += 1;
        }
        counts
    }

    /// Labels of all samples, in order.
    pub fn labels(&self) -> Vec<u32> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// A new dataset containing the samples at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            samples: indices.iter().map(|&i| self.samples[i].clone()).collect(),
            label_names: self.label_names.clone(),
        }
    }

    /// Keeps only the listed classes, relabelling them `0..k` in the
    /// order given. Used by the paper's class-count sweeps (Tables IV
    /// and V keep the `C` most populous classes).
    pub fn filter_classes(&self, keep: &[u32]) -> Dataset {
        let names = keep
            .iter()
            .map(|&old| self.label_names[old as usize].clone())
            .collect();
        let mut out = Dataset::new(names);
        for s in &self.samples {
            if let Some(new) = keep.iter().position(|&old| old == s.label) {
                out.samples.push(Sample { label: new as u32, ..s.clone() });
            }
        }
        out
    }

    /// Class indices ordered by descending sample count (ties broken by
    /// class index, so the ordering is deterministic).
    pub fn classes_by_size(&self) -> Vec<u32> {
        let counts = self.class_counts();
        let mut order: Vec<u32> = (0..self.n_classes() as u32).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(counts[c as usize]), c));
        order
    }

    /// A deterministic shuffled copy.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut out = self.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        out.samples.shuffle(&mut rng);
        out
    }

    /// Drops every trajectory, keeping only what the adversary sees.
    pub fn stripped(&self) -> Dataset {
        Dataset {
            samples: self
                .samples
                .iter()
                .map(|s| Sample { elevation: s.elevation.clone(), label: s.label, path: None })
                .collect(),
            label_names: self.label_names.clone(),
        }
    }

    /// Average pairwise tight-rectangle IoU among samples of `class` —
    /// the paper's *overlap ratio* (35% for the user-specific dataset).
    /// Samples without paths are ignored.
    pub fn overlap_ratio(&self, class: u32) -> f64 {
        let rects: Vec<BoundingBox> = self
            .samples
            .iter()
            .filter(|s| s.label == class)
            .filter_map(|s| s.bbox())
            .collect();
        average_pairwise_iou(&rects)
    }

    /// Mean of [`Dataset::overlap_ratio`] over all classes with ≥2
    /// path-bearing samples.
    pub fn mean_overlap_ratio(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in 0..self.n_classes() as u32 {
            let members = self
                .samples
                .iter()
                .filter(|s| s.label == c && s.path.is_some())
                .count();
            if members >= 2 {
                sum += self.overlap_ratio(c);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Fraction of path-bearing samples whose tight rectangle overlaps
    /// some *other* same-class sample with IoU above `threshold`.
    ///
    /// This is the natural metric for the paper's *simulated* overlap
    /// datasets ("rebuilt ... with 30–34% overlap ratio for each
    /// region"): injecting 30% replayed routes makes ~30% of samples
    /// near-duplicates of another, while the all-pairs mean IoU stays
    /// small. Returns 0 when no sample carries a path.
    pub fn overlapped_fraction(&self, threshold: f64) -> f64 {
        let mut total = 0usize;
        let mut overlapped = 0usize;
        for class in 0..self.n_classes() as u32 {
            let rects: Vec<BoundingBox> = self
                .samples
                .iter()
                .filter(|s| s.label == class)
                .filter_map(|s| s.bbox())
                .collect();
            total += rects.len();
            for (i, r) in rects.iter().enumerate() {
                let hit = rects
                    .iter()
                    .enumerate()
                    .any(|(j, q)| j != i && r.iou(q) > threshold);
                if hit {
                    overlapped += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            overlapped as f64 / total as f64
        }
    }

    /// Serializes to JSON (used to cache generated corpora between
    /// experiment runs).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        serde_json::to_string(self).map_err(|e| DatasetError::Serde { message: e.to_string() })
    }

    /// Deserializes from [`Dataset::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Serde`] on malformed input, and
    /// [`DatasetError::LabelOutOfRange`] if a sample references a
    /// missing class.
    pub fn from_json(json: &str) -> Result<Self, DatasetError> {
        let ds: Dataset = serde_json::from_str(json)
            .map_err(|e| DatasetError::Serde { message: e.to_string() })?;
        for s in &ds.samples {
            if (s.label as usize) >= ds.label_names.len() {
                return Err(DatasetError::LabelOutOfRange {
                    label: s.label,
                    classes: ds.label_names.len(),
                });
            }
        }
        Ok(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for (label, n) in [(0u32, 5usize), (1, 3), (2, 7)] {
            for i in 0..n {
                ds.push(Sample {
                    elevation: vec![label as f64, i as f64],
                    label,
                    path: None,
                })
                .unwrap();
            }
        }
        ds
    }

    #[test]
    fn counts_and_sizes() {
        let ds = toy();
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.class_counts(), vec![5, 3, 7]);
    }

    #[test]
    fn push_rejects_unknown_label() {
        let mut ds = toy();
        let err = ds
            .push(Sample { elevation: vec![], label: 9, path: None })
            .unwrap_err();
        assert!(matches!(err, DatasetError::LabelOutOfRange { label: 9, classes: 3 }));
    }

    #[test]
    fn filter_classes_relabels() {
        let ds = toy().filter_classes(&[2, 0]);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.label_names(), &["c".to_owned(), "a".to_owned()]);
        assert_eq!(ds.class_counts(), vec![7, 5]);
        // Old class 2 is now 0.
        assert!(ds.samples().iter().all(|s| s.label < 2));
    }

    #[test]
    fn classes_by_size_orders_descending() {
        assert_eq!(toy().classes_by_size(), vec![2, 0, 1]);
    }

    #[test]
    fn shuffled_preserves_content() {
        let ds = toy();
        let sh = ds.shuffled(9);
        assert_eq!(sh.len(), ds.len());
        assert_eq!(sh.class_counts(), ds.class_counts());
        assert_ne!(sh.samples(), ds.samples()); // order changed
    }

    #[test]
    fn json_roundtrip() {
        let ds = toy();
        let json = ds.to_json().unwrap();
        assert_eq!(Dataset::from_json(&json).unwrap(), ds);
    }

    #[test]
    fn from_json_validates_labels() {
        let bad = r#"{"samples":[{"elevation":[1.0],"label":5,"path":null}],"label_names":["x"]}"#;
        assert!(matches!(
            Dataset::from_json(bad),
            Err(DatasetError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn overlap_ratio_without_paths_is_zero() {
        assert_eq!(toy().overlap_ratio(0), 0.0);
        assert_eq!(toy().mean_overlap_ratio(), 0.0);
    }

    #[test]
    fn overlap_ratio_with_identical_paths_is_one() {
        let mut ds = Dataset::new(vec!["a".into()]);
        let path = vec![LatLon::new(0.0, 0.0), LatLon::new(1.0, 1.0)];
        for _ in 0..3 {
            ds.push(Sample { elevation: vec![1.0], label: 0, path: Some(path.clone()) })
                .unwrap();
        }
        assert!((ds.overlap_ratio(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stripped_removes_paths() {
        let mut ds = Dataset::new(vec!["a".into()]);
        ds.push(Sample {
            elevation: vec![1.0],
            label: 0,
            path: Some(vec![LatLon::new(0.0, 0.0)]),
        })
        .unwrap();
        assert!(ds.stripped().samples()[0].path.is_none());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = toy();
        let sub = ds.subset(&[0, 14]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.samples()[1].label, 2);
    }
}
