//! Overlap injection (paper §IV-A1, Table VI, Fig. 9).
//!
//! The mined datasets "do not contain overlapped or duplicate samples as
//! in the user-specific dataset", so the paper "rebuilt a simulation
//! dataset with 30–34% overlap ratio for each region" to test whether
//! route repetition is what makes TM-1 so strong. [`inject`] performs
//! that rebuild: for each class, extra samples are created by *replaying*
//! existing routes — GPS jitter plus random truncation — and re-querying
//! their elevation profiles, exactly how a repeat visitor re-records a
//! favourite segment.

use crate::dataset::{Dataset, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use terrain::{ElevationModel, ElevationService};

/// Injects `fraction` additional overlapped samples per class.
///
/// `fraction = 0.30` grows each class by 30% (the Table VI sample sizes:
/// 743 → 966, 362 → 470, …). New samples *replay* a uniformly chosen
/// existing same-class sample over a contiguous vertex window covering
/// 60–100% of the route, re-querying elevations through `service`.
/// Because a training segment is a fixed route, the replay visits the
/// exact same coordinates and therefore shares the exact same elevation
/// values on the common stretch — which is what makes overlapped
/// samples leak across train/test splits, the paper's hypothesis.
///
/// Samples without stored paths cannot be replayed and are skipped as
/// replay donors; if a class has no path-bearing samples it is left
/// unchanged.
///
/// # Panics
///
/// Panics if `fraction` is negative or not finite.
pub fn inject<M: ElevationModel>(
    ds: &Dataset,
    fraction: f64,
    seed: u64,
    service: &ElevationService<M>,
) -> Dataset {
    assert!(
        fraction.is_finite() && fraction >= 0.0,
        "overlap fraction must be non-negative, got {fraction}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = ds.clone();
    for class in 0..ds.n_classes() as u32 {
        let donors: Vec<&Sample> = ds
            .samples()
            .iter()
            .filter(|s| s.label == class && s.path.as_ref().is_some_and(|p| p.len() >= 2))
            .collect();
        if donors.is_empty() {
            continue;
        }
        let class_size = ds.samples().iter().filter(|s| s.label == class).count();
        let n_new = ((class_size as f64) * fraction).round() as usize;
        for _ in 0..n_new {
            let donor = donors[rng.gen_range(0..donors.len())];
            let replayed = replay_window(donor.path.as_ref().expect("filtered"), &mut rng);
            let elevation = service.lookup(&replayed);
            out.push(Sample { elevation, label: class, path: Some(replayed) })
                .expect("class labels already exist");
        }
    }
    out
}

/// A prefix window covering 70–100% of the route: a segment effort
/// starts at the segment's start (that is what defines an effort); GPS
/// trimming mainly shortens the tail. Prefix alignment also means the
/// replay's word tilings coincide with the donor's, so the shared
/// stretch shares entire n-grams.
fn replay_window<R: Rng + ?Sized>(path: &[geoprim::LatLon], rng: &mut R) -> Vec<geoprim::LatLon> {
    let keep = rng.gen_range(0.7..=1.0);
    let n = (((path.len() as f64) * keep).round() as usize).clamp(2, path.len());
    path[..n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city_level;
    use terrain::{CityId, SyntheticTerrain};

    fn service() -> ElevationService<SyntheticTerrain> {
        ElevationService::new(SyntheticTerrain::new(5))
    }

    #[test]
    fn grows_classes_by_fraction() {
        let ds = city_level::build_with_counts(5, &[(CityId::Miami, 40), (CityId::Tampa, 20)]);
        let injected = inject(&ds, 0.30, 11, &service());
        assert_eq!(injected.class_counts(), vec![52, 26]);
    }

    #[test]
    fn raises_overlapped_fraction_to_target() {
        let ds = city_level::build_with_counts(5, &[(CityId::Miami, 40)]);
        let before = ds.overlapped_fraction(0.5);
        let injected = inject(&ds, 0.35, 11, &service());
        let after = injected.overlapped_fraction(0.5);
        assert!(before < 0.1, "mined dataset unexpectedly overlapped: {before}");
        // 0.35 injected replays => donor + replay both overlap; the
        // fraction lands near 2*0.35/1.35 ≈ 0.52, certainly above 0.3.
        assert!(after > 0.3, "after {after}");
    }

    #[test]
    fn zero_fraction_is_identity() {
        let ds = city_level::build_with_counts(5, &[(CityId::Tampa, 15)]);
        assert_eq!(inject(&ds, 0.0, 1, &service()), ds);
    }

    #[test]
    fn pathless_classes_are_left_alone() {
        let ds = city_level::build_with_counts(5, &[(CityId::Tampa, 10)]).stripped();
        let injected = inject(&ds, 0.5, 1, &service());
        assert_eq!(injected.len(), ds.len());
    }

    #[test]
    fn deterministic() {
        let ds = city_level::build_with_counts(5, &[(CityId::Miami, 20)]);
        let a = inject(&ds, 0.3, 42, &service());
        let b = inject(&ds, 0.3, 42, &service());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_fraction() {
        let ds = Dataset::new(vec!["x".into()]);
        inject(&ds, -0.1, 1, &service());
    }
}
