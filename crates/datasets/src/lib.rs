//! Dataset construction for the three corpora of the paper.
//!
//! - [`user_specific`]: the athlete archive of Table I (region-clustered
//!   labels, ~35% route overlap),
//! - [`city_level`]: the ten-city mined dataset of Table II,
//! - [`borough_level`]: the 22-borough mined dataset of Table III,
//! - [`overlap`]: the overlap-injection simulator behind Table VI and
//!   Fig. 9,
//! - [`split`]: stratified k-fold cross-validation, balanced
//!   downsampling, and the inverse-proportional test split used by the
//!   image-side evaluations.
//!
//! Every builder is a pure function of its seed, so experiments
//! regenerate identical corpora.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod borough_level;
pub mod city_level;
pub mod overlap;
pub mod split;
pub mod stats;
pub mod user_specific;

mod dataset;
mod mined;

pub use dataset::{Dataset, DatasetError, Sample};
pub use mined::mine_to_target;
pub use stats::{DatasetStats, Summary};
