//! The user-specific dataset of Table I.

use crate::dataset::{Dataset, Sample};
use geoprim::{BoundingBox, RegionIndex};
use routegen::AthleteSimulator;
use terrain::{CityId, SyntheticTerrain};

/// Table I: per-region sample sizes of the user-specific dataset.
pub const TABLE_I: [(CityId, usize); 4] = [
    (CityId::WashingtonDc, 366),
    (CityId::Orlando, 232),
    (CityId::NewYorkCity, 120),
    (CityId::SanDiego, 18),
];

/// Region-clustering threshold in degrees. Metros are hundreds of
/// kilometres apart while one athlete's routes span a few kilometres,
/// so any threshold between ~0.2° and ~2° yields the same 4 regions.
pub const REGION_THRESHOLD_DEG: f64 = 1.0;

/// Builds the user-specific dataset with the paper's Table I counts.
///
/// Follows the paper's labelling procedure literally: each activity's
/// trajectory is wrapped in a tight rectangle (Fig. 3) and assigned to a
/// region by centre distance ([`RegionIndex`]); region identities become
/// the class labels. Class names are resolved afterwards from the metro
/// of the region's first member.
///
/// # Examples
///
/// ```no_run
/// let ds = datasets::user_specific::build(42);
/// assert_eq!(ds.class_counts(), vec![366, 232, 120, 18]);
/// ```
pub fn build(seed: u64) -> Dataset {
    build_with_counts(seed, &TABLE_I)
}

/// Builds a user-specific-style dataset with custom per-metro counts
/// (smaller configurations keep tests fast).
///
/// # Panics
///
/// Panics if `counts` is empty or region clustering does not separate
/// the metros (impossible with the standard catalog and
/// [`REGION_THRESHOLD_DEG`]).
pub fn build_with_counts(seed: u64, counts: &[(CityId, usize)]) -> Dataset {
    build_with_simulator(seed, counts).0
}

/// Like [`build_with_counts`], but also returns the athlete simulator in
/// its post-build state, so callers can generate the target's *future*
/// activities (same home anchors, same favourite routes) — exactly the
/// TM-1 scenario of deanonymizing a freshly shared profile.
pub fn build_with_simulator(
    seed: u64,
    counts: &[(CityId, usize)],
) -> (Dataset, AthleteSimulator) {
    assert!(!counts.is_empty(), "need at least one metro");
    let terrain = SyntheticTerrain::new(seed);
    let mut sim = AthleteSimulator::new(terrain, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));

    // Generate all activities first (the "archive").
    let mut activities = Vec::new();
    for &(metro, n) in counts {
        activities.extend(sim.generate(metro, n));
    }

    // Label by tight-rectangle region clustering, as in the paper.
    let mut index = RegionIndex::new(REGION_THRESHOLD_DEG);
    let mut labelled = Vec::with_capacity(activities.len());
    for act in &activities {
        let rect = BoundingBox::tight(act.trajectory())
            .expect("activities are never empty");
        let region = index.assign(&rect);
        labelled.push((act, region));
    }
    let n_regions = index.regions().len();
    assert_eq!(
        n_regions,
        counts.len(),
        "region clustering must rediscover the metros"
    );

    // Name each region after the metro of its first member.
    let mut names: Vec<Option<String>> = vec![None; n_regions];
    for (act, region) in &labelled {
        let slot = &mut names[region.0 as usize];
        if slot.is_none() {
            *slot = Some(act.metro.name().to_owned());
        }
    }
    let label_names: Vec<String> =
        names.into_iter().map(|n| n.expect("every region has a member")).collect();

    let mut ds = Dataset::new(label_names);
    for (act, region) in labelled {
        ds.push(Sample {
            elevation: act.elevation_profile(),
            label: region.0,
            path: Some(act.trajectory()),
        })
        .expect("region labels are dense");
    }
    (ds, sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_counts() -> [(CityId, usize); 4] {
        [
            (CityId::WashingtonDc, 30),
            (CityId::Orlando, 20),
            (CityId::NewYorkCity, 10),
            (CityId::SanDiego, 5),
        ]
    }

    #[test]
    fn counts_match_request() {
        let ds = build_with_counts(3, &small_counts());
        assert_eq!(ds.class_counts(), vec![30, 20, 10, 5]);
        assert_eq!(ds.n_classes(), 4);
    }

    #[test]
    fn labels_carry_metro_names() {
        let ds = build_with_counts(3, &small_counts());
        assert_eq!(
            ds.label_names(),
            &["Washington DC", "Orlando", "New York City", "San Diego"]
        );
    }

    #[test]
    fn overlap_is_paper_like() {
        let ds = build_with_counts(3, &[(CityId::WashingtonDc, 60), (CityId::Orlando, 40)]);
        let overlap = ds.mean_overlap_ratio();
        assert!(
            (0.2..=0.55).contains(&overlap),
            "overlap {overlap} outside plausible band"
        );
    }

    #[test]
    fn deterministic() {
        let a = build_with_counts(9, &small_counts());
        let b = build_with_counts(9, &small_counts());
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_are_dense() {
        let ds = build_with_counts(4, &[(CityId::Miami, 5)]);
        for s in ds.samples() {
            assert!(s.elevation.len() > 100, "profile of {}", s.elevation.len());
        }
    }
}
