//! Descriptive statistics over datasets.
//!
//! The mined and user-specific corpora differ in exactly the ways the
//! paper's preprocessing decisions depend on (sampling density,
//! elevation ranges, class balance); [`DatasetStats`] quantifies them
//! so experiment logs and EXPERIMENTS.md can show *what kind* of data a
//! run saw, not just how much.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Five-number summary of a scalar sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let t = idx - lo as f64;
            v[lo] * (1.0 - t) + v[hi] * t
        };
        Self {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: *v.last().expect("non-empty"),
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.1} / q1 {:.1} / med {:.1} / q3 {:.1} / max {:.1} (mean {:.1})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// Corpus-level statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of samples.
    pub n_samples: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Largest class size divided by smallest (1 = balanced).
    pub imbalance_ratio: f64,
    /// Summary of per-sample profile lengths (sampling density proxy).
    pub profile_length: Summary,
    /// Summary of per-sample mean elevations.
    pub mean_elevation: Summary,
    /// Summary of per-sample elevation spans (max − min).
    pub elevation_span: Summary,
}

impl DatasetStats {
    /// Computes statistics for a non-empty dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or if any sample has an empty profile.
    pub fn of(ds: &Dataset) -> Self {
        assert!(!ds.is_empty(), "cannot profile an empty dataset");
        let lengths: Vec<f64> =
            ds.samples().iter().map(|s| s.elevation.len() as f64).collect();
        let means: Vec<f64> = ds
            .samples()
            .iter()
            .map(|s| {
                assert!(!s.elevation.is_empty(), "sample has an empty profile");
                s.elevation.iter().sum::<f64>() / s.elevation.len() as f64
            })
            .collect();
        let spans: Vec<f64> = ds
            .samples()
            .iter()
            .map(|s| {
                let lo = s.elevation.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = s.elevation.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .collect();
        let counts = ds.class_counts();
        let max = counts.iter().copied().max().unwrap_or(1) as f64;
        let min = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(1) as f64;
        Self {
            n_samples: ds.len(),
            n_classes: ds.n_classes(),
            imbalance_ratio: max / min,
            profile_length: Summary::of(&lengths),
            mean_elevation: Summary::of(&means),
            elevation_span: Summary::of(&spans),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} samples, {} classes (imbalance {:.1}x)",
            self.n_samples, self.n_classes, self.imbalance_ratio
        )?;
        writeln!(f, "  profile length: {}", self.profile_length)?;
        writeln!(f, "  mean elevation: {}", self.mean_elevation)?;
        writeln!(f, "  elevation span: {}", self.elevation_span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..6 {
            ds.push(Sample {
                elevation: vec![10.0, 20.0, 30.0 + i as f64],
                label: 0,
                path: None,
            })
            .unwrap();
        }
        ds.push(Sample { elevation: vec![500.0, 520.0], label: 1, path: None }).unwrap();
        ds
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn summary_interpolates_quartiles() {
        let s = Summary::of(&[0.0, 10.0]);
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q3, 7.5);
    }

    #[test]
    fn stats_capture_imbalance_and_ranges() {
        let stats = DatasetStats::of(&toy());
        assert_eq!(stats.n_samples, 7);
        assert_eq!(stats.n_classes, 2);
        assert_eq!(stats.imbalance_ratio, 6.0);
        assert_eq!(stats.profile_length.max, 3.0);
        assert_eq!(stats.profile_length.min, 2.0);
        assert!(stats.mean_elevation.max > 400.0);
        assert_eq!(stats.elevation_span.min, 20.0);
    }

    #[test]
    fn display_is_informative() {
        let text = DatasetStats::of(&toy()).to_string();
        assert!(text.contains("7 samples"));
        assert!(text.contains("elevation span"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_dataset() {
        DatasetStats::of(&Dataset::new(vec!["a".into()]));
    }
}
