//! Splitting utilities: stratified k-fold, balanced downsampling, and
//! the inverse-proportional test split of the image-side evaluations.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Stratified k-fold cross-validation indices.
///
/// Per-class sample indices are shuffled deterministically and dealt
/// round-robin into `k` folds, so every fold preserves the class mix.
/// Returns `k` `(train, test)` pairs.
///
/// # Panics
///
/// Panics if `k < 2` or `labels` has fewer than `k` samples.
///
/// # Examples
///
/// ```
/// let labels = vec![0u32, 0, 0, 1, 1, 1];
/// let folds = datasets::split::stratified_k_fold(&labels, 3, 7);
/// assert_eq!(folds.len(), 3);
/// for (train, test) in &folds {
///     assert_eq!(train.len() + test.len(), labels.len());
/// }
/// ```
pub fn stratified_k_fold(labels: &[u32], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2");
    assert!(labels.len() >= k, "need at least k samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);

    // fold_of[i] = fold index of sample i.
    let mut fold_of = vec![0usize; labels.len()];
    for class in 0..n_classes as u32 {
        let mut idx: Vec<usize> =
            (0..labels.len()).filter(|&i| labels[i] == class).collect();
        idx.shuffle(&mut rng);
        for (j, i) in idx.into_iter().enumerate() {
            fold_of[i] = j % k;
        }
    }

    (0..k)
        .map(|fold| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &f) in fold_of.iter().enumerate() {
                if f == fold {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, test)
        })
        .collect()
}

/// Stratified train/test split with the given test fraction.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1`.
pub fn stratified_train_test(
    labels: &[u32],
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class in 0..n_classes as u32 {
        let mut idx: Vec<usize> =
            (0..labels.len()).filter(|&i| labels[i] == class).collect();
        idx.shuffle(&mut rng);
        let n_test = ((idx.len() as f64) * test_fraction).round() as usize;
        // At least one test sample when the class has >= 2 members.
        let n_test = if idx.len() >= 2 { n_test.clamp(1, idx.len() - 1) } else { 0 };
        test.extend_from_slice(&idx[..n_test]);
        train.extend_from_slice(&idx[n_test..]);
    }
    (train, test)
}

/// Balanced downsampling: `per_class` random samples from each class.
///
/// This is the paper's remedy for unbalanced classes in the TM-1 and
/// TM-3 text evaluations ("a fixed number of samples was randomly
/// selected from each class"); `per_class` is the size of the smallest
/// class kept (the `S` column of Tables IV and V).
///
/// # Panics
///
/// Panics if any class has fewer than `per_class` samples.
pub fn balanced_downsample(ds: &Dataset, per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = ds.labels();
    let mut keep = Vec::new();
    for class in 0..ds.n_classes() as u32 {
        let mut idx: Vec<usize> =
            (0..labels.len()).filter(|&i| labels[i] == class).collect();
        assert!(
            idx.len() >= per_class,
            "class {class} has {} < {per_class} samples",
            idx.len()
        );
        idx.shuffle(&mut rng);
        keep.extend_from_slice(&idx[..per_class]);
    }
    keep.sort_unstable();
    ds.subset(&keep)
}

/// Test-set selection with probability inversely proportional to class
/// size (paper §IV, image-like evaluations: "we assigned probabilities
/// for each class considering the inverse proportion to its size and
/// then randomly select test data with the associated probabilities").
///
/// Selects `test_count` indices by weighted sampling without
/// replacement (Efraimidis–Spirakis keys), weight `1 / class_size`;
/// returns `(train, test)`.
///
/// # Panics
///
/// Panics if `test_count >= labels.len()`.
pub fn inverse_proportional_test_split(
    labels: &[u32],
    test_count: usize,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_count < labels.len(),
        "test_count {test_count} must be < population {}",
        labels.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l as usize] += 1;
    }
    // key_i = u^(1/w_i); the test_count largest keys win.
    let mut keyed: Vec<(f64, usize)> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let w = 1.0 / counts[l as usize] as f64;
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (u.powf(1.0 / w), i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut test: Vec<usize> = keyed[..test_count].iter().map(|&(_, i)| i).collect();
    let mut train: Vec<usize> = keyed[test_count..].iter().map(|&(_, i)| i).collect();
    test.sort_unstable();
    train.sort_unstable();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    fn labels(counts: &[usize]) -> Vec<u32> {
        counts
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(c as u32, n))
            .collect()
    }

    #[test]
    fn k_fold_partitions_cover_everything() {
        let l = labels(&[20, 10, 5]);
        let folds = stratified_k_fold(&l, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; l.len()];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), l.len());
            for &i in test {
                seen[i] += 1;
            }
            // Disjoint within a fold.
            let mut all: Vec<usize> = train.iter().chain(test).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), l.len());
        }
        // Every sample is tested exactly once across folds.
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn k_fold_is_stratified() {
        let l = labels(&[50, 25]);
        for (_, test) in stratified_k_fold(&l, 5, 1) {
            let c0 = test.iter().filter(|&&i| l[i] == 0).count();
            let c1 = test.iter().filter(|&&i| l[i] == 1).count();
            assert_eq!(c0, 10);
            assert_eq!(c1, 5);
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_fold_rejects_k1() {
        stratified_k_fold(&labels(&[4]), 1, 0);
    }

    #[test]
    fn train_test_is_stratified() {
        let l = labels(&[40, 20]);
        let (train, test) = stratified_train_test(&l, 0.25, 9);
        assert_eq!(test.iter().filter(|&&i| l[i] == 0).count(), 10);
        assert_eq!(test.iter().filter(|&&i| l[i] == 1).count(), 5);
        assert_eq!(train.len(), 45);
    }

    #[test]
    fn balanced_downsample_equalizes() {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        for (label, n) in [(0u32, 30usize), (1, 8)] {
            for _ in 0..n {
                ds.push(Sample { elevation: vec![0.0], label, path: None }).unwrap();
            }
        }
        let bal = balanced_downsample(&ds, 8, 3);
        assert_eq!(bal.class_counts(), vec![8, 8]);
    }

    #[test]
    #[should_panic(expected = "has")]
    fn balanced_downsample_rejects_small_class() {
        let mut ds = Dataset::new(vec!["a".into()]);
        ds.push(Sample { elevation: vec![0.0], label: 0, path: None }).unwrap();
        balanced_downsample(&ds, 5, 0);
    }

    #[test]
    fn inverse_proportional_prefers_small_classes() {
        // 90-vs-10 imbalance: with inverse weights the small class is
        // heavily over-represented in the test set relative to 10%.
        let l = labels(&[900, 100]);
        let (_, test) = inverse_proportional_test_split(&l, 200, 7);
        let small = test.iter().filter(|&&i| l[i] == 1).count();
        assert!(small > 60, "small-class test count {small}");
    }

    #[test]
    fn inverse_proportional_partitions() {
        let l = labels(&[30, 10]);
        let (train, test) = inverse_proportional_test_split(&l, 10, 1);
        assert_eq!(train.len() + test.len(), 40);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 40);
    }

    #[test]
    fn splits_are_deterministic() {
        let l = labels(&[25, 25]);
        assert_eq!(stratified_k_fold(&l, 5, 42), stratified_k_fold(&l, 5, 42));
        assert_eq!(
            inverse_proportional_test_split(&l, 10, 42),
            inverse_proportional_test_split(&l, 10, 42)
        );
    }
}
