//! Adaptive grid mining toward a target sample count.

use geoprim::{BoundingBox, LocalProjection};
use routegen::{GridMiner, MinedSegment, SegmentDatabase, SegmentParams};
use terrain::{ElevationModel, ElevationService};

/// Mines a boundary until at least `target` segments are collected,
/// then truncates to exactly `target`.
///
/// The paper gets its Table II/III sample counts from however many
/// segments the real platform hosts per city; our synthetic platform
/// instead *adapts density* until the grid mining yields the published
/// count, preserving the mining pipeline (grid → top-10 per region →
/// elevation augmentation) end to end.
///
/// Returns fewer than `target` only if six density doublings still come
/// up short (degenerate boundaries).
pub fn mine_to_target<M: ElevationModel>(
    seed: u64,
    boundary: &BoundingBox,
    target: usize,
    service: &ElevationService<M>,
) -> Vec<MinedSegment> {
    if target == 0 {
        return Vec::new();
    }
    // Expect ~7 of the top-10 slots to fill per cell.
    let cells_needed = (target as f64 / 7.0).ceil().max(1.0);
    let side = (cells_needed.sqrt().ceil() as usize).max(2);

    // Segment lengths must fit inside a grid cell for full encapsulation.
    let proj = LocalProjection::new(boundary.center());
    let (w, _) = proj.to_meters(boundary.north_east());
    let (sw_x, sw_y) = proj.to_meters(boundary.south_west());
    let (ne_x, ne_y) = proj.to_meters(boundary.north_east());
    let _ = w;
    let span_x = (ne_x - sw_x).abs();
    let span_y = (ne_y - sw_y).abs();
    let cell_min_span = (span_x.min(span_y) / side as f64).max(50.0);
    let len_lo = (cell_min_span * 0.15).clamp(120.0, 2_500.0);
    let len_hi = (cell_min_span * 0.45).clamp(len_lo + 50.0, 3_000.0);

    let mut density_mult = 3.0f64;
    let mut best: Vec<MinedSegment> = Vec::new();
    for attempt in 0..6 {
        let params = SegmentParams {
            count: ((target as f64) * density_mult).ceil() as usize,
            length_m_range: (len_lo, len_hi),
            max_popularity: 5_000,
        };
        let db = SegmentDatabase::generate(seed.wrapping_add(attempt), boundary, &params);
        let miner = GridMiner::new(side, side);
        let mut mined = miner.mine(&db, boundary, service);
        if mined.len() >= target {
            mined.truncate(target);
            return mined;
        }
        if mined.len() > best.len() {
            best = mined;
        }
        density_mult *= 2.0;
    }
    best.truncate(target);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoprim::LatLon;
    use terrain::SyntheticTerrain;

    fn svc() -> ElevationService<SyntheticTerrain> {
        ElevationService::new(SyntheticTerrain::new(1))
    }

    #[test]
    fn hits_exact_target_for_city_sized_box() {
        let dc = BoundingBox::new(LatLon::new(38.80, -77.12), LatLon::new(39.00, -76.91));
        let mined = mine_to_target(5, &dc, 150, &svc());
        assert_eq!(mined.len(), 150);
    }

    #[test]
    fn hits_target_for_tiny_borough() {
        // Chinatown-sized box (~1.5 km).
        let tiny =
            BoundingBox::new(LatLon::new(34.058, -118.245), LatLon::new(34.072, -118.228));
        let mined = mine_to_target(6, &tiny, 46, &svc());
        assert_eq!(mined.len(), 46);
    }

    #[test]
    fn zero_target_is_empty() {
        let dc = BoundingBox::new(LatLon::new(38.80, -77.12), LatLon::new(39.00, -76.91));
        assert!(mine_to_target(7, &dc, 0, &svc()).is_empty());
    }

    #[test]
    fn mining_is_deterministic() {
        let dc = BoundingBox::new(LatLon::new(38.80, -77.12), LatLon::new(39.00, -76.91));
        let a = mine_to_target(8, &dc, 60, &svc());
        let b = mine_to_target(8, &dc, 60, &svc());
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_have_one_value_per_vertex() {
        let dc = BoundingBox::new(LatLon::new(38.80, -77.12), LatLon::new(39.00, -76.91));
        for m in mine_to_target(9, &dc, 30, &svc()) {
            assert_eq!(m.elevation.len(), m.path.len());
            assert!(m.path.len() >= 2);
        }
    }
}
