//! The city-level mined dataset of Table II.

use crate::dataset::{Dataset, Sample};
use crate::mined::mine_to_target;
use terrain::{CityId, ElevationService, SyntheticTerrain};

/// Table II: per-city sample sizes of the city-level dataset.
pub const TABLE_II: [(CityId, usize); 10] = [
    (CityId::NewYorkCity, 2437),
    (CityId::WashingtonDc, 2129),
    (CityId::SanFrancisco, 743),
    (CityId::ColoradoSprings, 369),
    (CityId::Minneapolis, 363),
    (CityId::LosAngeles, 280),
    (CityId::NewJersey, 266),
    (CityId::Duluth, 156),
    (CityId::Miami, 94),
    (CityId::Tampa, 83),
];

/// Builds the city-level dataset with the paper's Table II counts.
///
/// For each city, the Fig. 4 pipeline runs against that city's segment
/// population: grid decomposition of the city boundary, top-10 explore
/// per region, elevation augmentation through the elevation service.
///
/// # Examples
///
/// ```no_run
/// let ds = datasets::city_level::build(42);
/// assert_eq!(ds.len(), 6920);
/// assert_eq!(ds.n_classes(), 10);
/// ```
pub fn build(seed: u64) -> Dataset {
    build_with_counts(seed, &TABLE_II)
}

/// Builds a city-level-style dataset with custom counts (smaller
/// configurations keep tests fast).
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn build_with_counts(seed: u64, counts: &[(CityId, usize)]) -> Dataset {
    assert!(!counts.is_empty(), "need at least one city");
    let terrain = SyntheticTerrain::new(seed);
    let service = ElevationService::new(terrain);
    let catalog = service.model().catalog().clone();

    let label_names: Vec<String> = counts.iter().map(|(c, _)| c.name().to_owned()).collect();
    let mut ds = Dataset::new(label_names);
    for (label, &(city, target)) in counts.iter().enumerate() {
        let boundary = catalog.city(city).bbox;
        let city_seed = seed
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(label as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for m in mine_to_target(city_seed, &boundary, target, &service) {
            ds.push(Sample {
                elevation: m.elevation,
                label: label as u32,
                path: Some(m.path),
            })
            .expect("labels are positional");
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_build_matches_counts() {
        let counts = [(CityId::Miami, 40), (CityId::SanFrancisco, 30), (CityId::Duluth, 20)];
        let ds = build_with_counts(5, &counts);
        assert_eq!(ds.class_counts(), vec![40, 30, 20]);
        assert_eq!(ds.label_names(), &["Miami", "San Francisco", "Duluth"]);
    }

    #[test]
    fn mined_dataset_has_negligible_overlap() {
        // "city-level dataset does not include overlapped samples".
        let counts = [(CityId::Miami, 40), (CityId::Tampa, 40)];
        let ds = build_with_counts(6, &counts);
        assert!(ds.mean_overlap_ratio() < 0.05, "overlap {}", ds.mean_overlap_ratio());
    }

    #[test]
    fn cities_have_distinct_elevation_bands() {
        let counts = [(CityId::Miami, 15), (CityId::ColoradoSprings, 15)];
        let ds = build_with_counts(7, &counts);
        let mean = |s: &Sample| s.elevation.iter().sum::<f64>() / s.elevation.len() as f64;
        for s in ds.samples() {
            if s.label == 0 {
                assert!(mean(s) < 50.0);
            } else {
                assert!(mean(s) > 1_500.0);
            }
        }
    }

    #[test]
    fn deterministic() {
        let counts = [(CityId::Tampa, 12)];
        assert_eq!(build_with_counts(8, &counts), build_with_counts(8, &counts));
    }
}
