//! The borough-level mined dataset of Table III.

use crate::dataset::{Dataset, Sample};
use crate::mined::mine_to_target;
use terrain::{BoroughId, CityId, ElevationService, SyntheticTerrain};

/// Table III: per-borough sample sizes of the borough-level dataset.
pub const TABLE_III: [(BoroughId, usize); 22] = [
    (BoroughId::LaDowntown, 280),
    (BoroughId::LaSantaMonica, 128),
    (BoroughId::LaChinatown, 46),
    (BoroughId::LaBeverlyHills, 38),
    (BoroughId::MiaDowntown, 67),
    (BoroughId::MiaMiamiBeach, 44),
    (BoroughId::MiaVirginiaKey, 18),
    (BoroughId::NjJerseyCity, 266),
    (BoroughId::NjWestNewYork, 23),
    (BoroughId::NjNewark, 28),
    (BoroughId::NycManhattan, 2437),
    (BoroughId::NycQueens, 353),
    (BoroughId::NycBrooklynSouth, 239),
    (BoroughId::NycBrooklynNorth, 205),
    (BoroughId::NycBronx, 142),
    (BoroughId::NycStatenIsland, 119),
    (BoroughId::SfSouthWest, 743),
    (BoroughId::SfSouthEast, 144),
    (BoroughId::SfNorthWest, 130),
    (BoroughId::SfNorthEast, 86),
    (BoroughId::WdcDistrictOfColumbia, 2129),
    (BoroughId::WdcBaltimore, 218),
];

/// Builds the borough-level dataset for **one city** (the paper trains
/// "a model for each of the cities", labelling data by borough).
///
/// # Examples
///
/// ```no_run
/// use terrain::CityId;
///
/// let sf = datasets::borough_level::build_city(42, CityId::SanFrancisco);
/// assert_eq!(sf.n_classes(), 4);
/// assert_eq!(sf.len(), 743 + 144 + 130 + 86);
/// ```
pub fn build_city(seed: u64, city: CityId) -> Dataset {
    let counts: Vec<(BoroughId, usize)> = TABLE_III
        .iter()
        .copied()
        .filter(|(b, _)| b.city() == city)
        .collect();
    build_with_counts(seed, &counts)
}

/// Builds a borough-labelled dataset with custom counts.
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn build_with_counts(seed: u64, counts: &[(BoroughId, usize)]) -> Dataset {
    assert!(!counts.is_empty(), "need at least one borough");
    let terrain = SyntheticTerrain::new(seed);
    let service = ElevationService::new(terrain);
    let catalog = service.model().catalog().clone();

    let label_names: Vec<String> = counts.iter().map(|(b, _)| b.name().to_owned()).collect();
    let mut ds = Dataset::new(label_names);
    for (label, &(borough, target)) in counts.iter().enumerate() {
        let boundary = catalog.borough(borough).bbox;
        let borough_seed = seed
            .wrapping_mul(0xCBF2_9CE4_8422_2325)
            .wrapping_add(borough as u64)
            .wrapping_add(label as u64 * 7919);
        for m in mine_to_target(borough_seed, &boundary, target, &service) {
            ds.push(Sample {
                elevation: m.elevation,
                label: label as u32,
                path: Some(m.path),
            })
            .expect("labels are positional");
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miami_boroughs_build_fully() {
        let ds = build_city(5, CityId::Miami);
        assert_eq!(ds.class_counts(), vec![67, 44, 18]);
        assert_eq!(ds.label_names(), &["Downtown", "Miami Beach", "Virginia Key"]);
    }

    #[test]
    fn table_iii_totals_match_paper() {
        let total: usize = TABLE_III.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 7_883);
        // Per-city class counts match Table III's structure.
        for (city, expect) in [
            (CityId::LosAngeles, 4),
            (CityId::Miami, 3),
            (CityId::NewJersey, 3),
            (CityId::NewYorkCity, 6),
            (CityId::SanFrancisco, 4),
            (CityId::WashingtonDc, 2),
        ] {
            let n = TABLE_III.iter().filter(|(b, _)| b.city() == city).count();
            assert_eq!(n, expect, "{city}");
        }
    }

    #[test]
    fn boroughs_within_a_city_share_elevation_band() {
        // The within-city classification problem must be *hard*: borough
        // mean elevations of flat Miami stay within a few metres.
        let ds = build_city(6, CityId::Miami);
        let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); ds.n_classes()];
        for s in ds.samples() {
            let m = s.elevation.iter().sum::<f64>() / s.elevation.len() as f64;
            per_class[s.label as usize].push(m);
        }
        for means in &per_class {
            let m = means.iter().sum::<f64>() / means.len() as f64;
            assert!(m < 20.0, "Miami borough mean {m}");
        }
    }

    #[test]
    fn deterministic() {
        let counts = [(BoroughId::MiaVirginiaKey, 10)];
        assert_eq!(build_with_counts(8, &counts), build_with_counts(8, &counts));
    }
}
