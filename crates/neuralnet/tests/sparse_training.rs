//! Sparse-input MLP training must reproduce the dense path exactly.
//!
//! `train_sparse` feeds CSR mini-batches to the first Dense layer
//! (sparse×dense forward, scatter backward); everything downstream is
//! the ordinary dense pipeline. Because the sparse kernels skip only
//! exact-zero terms in the same accumulation order, the trained weights,
//! per-epoch losses, and predictions must all match the dense run.

use neuralnet::{models, train, train_sparse, Layer, Sequential, TrainConfig};
use sparsemat::CsrMatrix;
use tensorlite::Tensor;

/// Sparse BoW-like rows: ~80% zeros, L1-normalized, two latent classes.
fn sparse_data(n: usize, dim: usize) -> (Vec<Vec<f32>>, Vec<u32>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = (i % 2) as u32;
        let mut row = vec![0.0f32; dim];
        for t in 0..3 {
            let j = (i * 7 + t * 5 + class as usize * dim / 2) % dim;
            row[j] += 1.0 + ((i + t) % 3) as f32;
        }
        let total: f32 = row.iter().sum();
        for v in &mut row {
            *v /= total;
        }
        rows.push(row);
        labels.push(class);
    }
    (rows, labels)
}

fn weights_of(net: &mut Sequential) -> Vec<u32> {
    let mut bits = Vec::new();
    net.visit_params(&mut |p, _| bits.extend(p.data().iter().map(|v| v.to_bits())));
    bits
}

#[test]
fn sparse_training_matches_dense_bitwise() {
    let (rows, y) = sparse_data(48, 30);
    let x_dense = Tensor::from_rows(&rows);
    let x_csr = CsrMatrix::from_dense_rows(&rows);
    let cfg = TrainConfig { epochs: 6, batch_size: 8, lr: 0.01, ..Default::default() };

    let mut dense_net = models::mlp(30, 16, 2, 11);
    let mut sparse_net = models::mlp(30, 16, 2, 11);
    let dense_report = train(&mut dense_net, &x_dense, &y, &cfg);
    let sparse_report = train_sparse(&mut sparse_net, &x_csr, &y, &cfg);

    // Same losses, bit for bit.
    assert_eq!(dense_report.epoch_losses.len(), sparse_report.epoch_losses.len());
    for (a, b) in dense_report.epoch_losses.iter().zip(&sparse_report.epoch_losses) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // Same trained parameters, bit for bit.
    assert_eq!(weights_of(&mut dense_net), weights_of(&mut sparse_net));
    // Same predictions via either forward.
    assert_eq!(dense_net.predict(&x_dense), sparse_net.predict_sparse(&x_csr));
}

#[test]
fn sparse_forward_logits_match_dense_bitwise() {
    let (rows, _y) = sparse_data(20, 24);
    let x_dense = Tensor::from_rows(&rows);
    let x_csr = CsrMatrix::from_dense_rows(&rows);
    let mut net = models::mlp(24, 10, 3, 5);
    let dense_logits = net.logits(&x_dense);
    let sparse_logits = net.forward_sparse(&x_csr, false).expect("non-empty net");
    assert_eq!(dense_logits.shape(), sparse_logits.shape());
    for (a, b) in dense_logits.data().iter().zip(sparse_logits.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
