//! End-to-end gradient checks: the full Fig. 7 CNN's loss gradient is
//! verified against finite differences through every layer, and
//! training-dynamics invariants are property-tested.

use neuralnet::loss::{cross_entropy, softmax};
use neuralnet::models::{mlp, paper_cnn};
use neuralnet::Layer;
use proptest::prelude::*;
use tensorlite::Tensor;

/// Numerically checks dLoss/dInput of a whole network at a few indices.
fn check_input_gradient(
    net: &mut neuralnet::Sequential,
    x: &Tensor,
    y: &[u32],
    indices: &[usize],
    tol: f32,
) {
    let logits = net.forward(x, true);
    let (_, grad_logits) = cross_entropy(&logits, y, None);
    let dx = net.backward(&grad_logits);
    let eps = 2e-3f32;
    for &i in indices {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let (lp, _) = cross_entropy(&net.forward(&xp, false), y, None);
        let (lm, _) = cross_entropy(&net.forward(&xm, false), y, None);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dx.data()[i];
        assert!(
            (analytic - numeric).abs() < tol,
            "index {i}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

#[test]
fn full_cnn_gradient_matches_finite_differences() {
    let mut net = paper_cnn(3, 11);
    let n = 2;
    let data: Vec<f32> = (0..n * 3 * 32 * 32)
        .map(|i| ((i * 2654435761usize) % 997) as f32 / 997.0)
        .collect();
    let x = Tensor::from_vec(data, &[n, 3, 32, 32]);
    let y = vec![0u32, 2];
    check_input_gradient(&mut net, &x, &y, &[0, 57, 513, 1999, 3071], 2e-3);
}

#[test]
fn full_mlp_gradient_matches_finite_differences() {
    let mut net = mlp(10, 16, 4, 3);
    let x = Tensor::from_rows(&[
        (0..10).map(|i| (i as f32 * 0.37).sin()).collect(),
        (0..10).map(|i| (i as f32 * 0.61).cos()).collect(),
    ]);
    let y = vec![1u32, 3];
    check_input_gradient(&mut net, &x, &y, &[0, 7, 13, 19], 1e-3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn softmax_rows_always_sum_to_one(rows in prop::collection::vec(
        prop::collection::vec(-30.0f32..30.0, 4), 1..8)) {
        let t = Tensor::from_rows(&rows);
        let p = softmax(&t);
        for r in 0..rows.len() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(rows in prop::collection::vec(
        prop::collection::vec(-10.0f32..10.0, 3), 1..8)) {
        let labels: Vec<u32> = (0..rows.len()).map(|i| (i % 3) as u32).collect();
        let t = Tensor::from_rows(&rows);
        let (loss, grad) = cross_entropy(&t, &labels, None);
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to ~0 (softmax minus one-hot property).
        for r in 0..rows.len() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn weighted_loss_reduces_to_unweighted_with_equal_weights(
        rows in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 3), 1..6),
        w in 0.1f32..5.0,
    ) {
        let labels: Vec<u32> = (0..rows.len()).map(|i| (i % 3) as u32).collect();
        let t = Tensor::from_rows(&rows);
        let (l0, g0) = cross_entropy(&t, &labels, None);
        let (l1, g1) = cross_entropy(&t, &labels, Some(&[w, w, w]));
        prop_assert!((l0 - l1).abs() < 1e-4);
        for (a, b) in g0.data().iter().zip(g1.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn prediction_is_invariant_to_shared_logit_shift(
        row in prop::collection::vec(-5.0f32..5.0, 4),
        shift in -10.0f32..10.0,
    ) {
        let mut net = mlp(4, 8, 3, 9);
        let x = Tensor::from_rows(std::slice::from_ref(&row));
        let shifted = Tensor::from_rows(&[row.iter().map(|v| v + 0.0).collect::<Vec<_>>()]);
        // Same input twice: predictions must be stable across calls.
        let p1 = net.predict(&x);
        let p2 = net.predict(&shifted);
        prop_assert_eq!(p1, p2);
        let _ = shift;
    }
}
