//! Training-dynamics tests: the behavioural claims the paper's method
//! comparison rests on, verified on controlled synthetic data.

use neuralnet::finetune::{fine_tune, make_rounds, FineTuneConfig};
use neuralnet::loss::inverse_frequency_weights;
use neuralnet::models::mlp;
use neuralnet::{train, Sgd, TrainConfig};
use neuralnet::Layer;
use tensorlite::Tensor;

/// Imbalanced two-blob data: `majority : minority = ratio : 1`.
fn imbalanced_blobs(minority: usize, ratio: usize) -> (Tensor, Vec<u32>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..minority * ratio {
        let j = (i as f32 * 0.37).sin() * 0.8;
        rows.push(vec![-1.0 + j, 0.5 - j]);
        labels.push(0u32);
    }
    for i in 0..minority {
        let j = (i as f32 * 0.59).cos() * 0.8;
        rows.push(vec![1.2 + j, -0.6 + j]);
        labels.push(1u32);
    }
    (Tensor::from_rows(&rows), labels)
}

fn minority_recall(net: &mut neuralnet::Sequential, x: &Tensor, y: &[u32]) -> f64 {
    let preds = net.predict(x);
    let (mut tp, mut total) = (0usize, 0usize);
    for (p, &t) in preds.iter().zip(y) {
        if t == 1 {
            total += 1;
            if *p == 1 {
                tp += 1;
            }
        }
    }
    tp as f64 / total.max(1) as f64
}

#[test]
fn weighted_loss_lifts_minority_recall() {
    // The paper's §IV-B claim: class weights "signify samples of small
    // classes ... their effect does not easily wear off".
    let (x, y) = imbalanced_blobs(6, 12);
    let short = TrainConfig { epochs: 6, lr: 5e-3, ..Default::default() };

    let mut unweighted = mlp(2, 12, 2, 3);
    train(&mut unweighted, &x, &y, &short);
    let r_unweighted = minority_recall(&mut unweighted, &x, &y);

    let mut weighted = mlp(2, 12, 2, 3);
    let cfg = TrainConfig {
        class_weights: Some(inverse_frequency_weights(&y, 2)),
        ..short
    };
    train(&mut weighted, &x, &y, &cfg);
    let r_weighted = minority_recall(&mut weighted, &x, &y);

    assert!(
        r_weighted >= r_unweighted,
        "weighted {r_weighted} < unweighted {r_unweighted}"
    );
    assert!(r_weighted > 0.8, "weighted minority recall {r_weighted}");
}

#[test]
fn fine_tuning_covers_classes_plain_training_starves() {
    // Severe imbalance + tiny budget: rounds guarantee the minority is
    // seen at full weight in the first executed (largest-classes-last)
    // schedule.
    let (x, y) = imbalanced_blobs(5, 20);
    let rounds = make_rounds(&y, 2, &[], 7);
    assert_eq!(rounds.len(), 1);
    assert_eq!(rounds[0].per_class, 5); // balanced at the minority size

    let mut net = mlp(2, 12, 2, 9);
    fine_tune(
        &mut net,
        &x,
        &y,
        &rounds,
        &FineTuneConfig { epochs_per_round: 60, lr: 5e-3, final_lr: 5e-3, ..Default::default() },
    );
    assert!(minority_recall(&mut net, &x, &y) > 0.8);
}

#[test]
fn adam_outpaces_sgd_on_tiny_bow_scale_features() {
    // Adam's per-parameter step normalization is why the paper (and
    // sklearn's MLP default) uses it: the BoW probability vectors have
    // coordinates ~1e-2, so raw gradients are tiny and plain SGD at the
    // same learning rate barely moves, while Adam steps at the lr scale
    // regardless of gradient magnitude.
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..40 {
        let j = (i as f32 * 0.41).sin() * 0.002;
        rows.push(vec![0.01 + j, 0.002 - j]);
        labels.push(0u32);
        rows.push(vec![0.002 - j, 0.01 + j]);
        labels.push(1u32);
    }
    let x = Tensor::from_rows(&rows);

    let loss_after = |use_adam: bool| -> f32 {
        let mut net = mlp(2, 8, 2, 11);
        if use_adam {
            let report = train(
                &mut net,
                &x,
                &labels,
                &TrainConfig { epochs: 120, lr: 1e-3, ..Default::default() },
            );
            report.final_loss()
        } else {
            let mut sgd = Sgd::new(1e-3, 0.0);
            let mut last = f32::NAN;
            for _ in 0..120 {
                net.zero_grad();
                let logits = net.forward(&x, true);
                let (loss, grad) = neuralnet::loss::cross_entropy(&logits, &labels, None);
                net.backward(&grad);
                sgd.step(&mut net);
                last = loss;
            }
            last
        }
    };
    let adam_loss = loss_after(true);
    let sgd_loss = loss_after(false);
    // SGD stalls at the ln(2) plateau (gradients ~1e-5 × lr 1e-3);
    // Adam makes visible progress in the same budget.
    assert!(sgd_loss > 0.67, "sgd unexpectedly escaped the plateau: {sgd_loss}");
    assert!(
        adam_loss < sgd_loss - 0.01,
        "adam {adam_loss} should clearly beat sgd {sgd_loss} on tiny-scale features"
    );
}

#[test]
fn more_epochs_never_hurt_fit_on_separable_data() {
    let (x, y) = imbalanced_blobs(10, 2);
    let mut accs = Vec::new();
    for epochs in [2usize, 10, 40] {
        let mut net = mlp(2, 8, 2, 5);
        train(&mut net, &x, &y, &TrainConfig { epochs, lr: 5e-3, ..Default::default() });
        let correct = net
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        accs.push(correct as f64 / y.len() as f64);
    }
    assert!(accs[2] >= accs[0], "{accs:?}");
    assert!(accs[2] > 0.95, "{accs:?}");
}
