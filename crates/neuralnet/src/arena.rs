//! Persistent training arenas: reusable scratch for the mini-batch
//! loop and the per-lane state of the sharded trainer.
//!
//! A [`TrainArena`] owns every buffer the training loop would otherwise
//! reallocate per batch — the gathered mini-batch, the label vector,
//! the broadcast weight image, the per-sample gradient stages and their
//! reduction accumulator, plus one replica network per gradient lane.
//! Holding one arena across repeated fits (fine-tuning rounds, threat
//! model sweeps) makes steady-state training allocate only the layer
//! output tensors.

use crate::layer::Layer;
use crate::loss::cross_entropy_with_norm;
use crate::net::Sequential;
use std::ops::Range;
use std::sync::Mutex;
use tensorlite::Tensor;

/// Reusable scratch state for [`train_in_arena`](crate::train_in_arena)
/// and [`train_sparse_in_arena`](crate::train_sparse_in_arena).
///
/// An arena is tied to one network *shape*: lane replicas are cloned
/// from the first network trained with it and rebuilt if a structurally
/// different one shows up. Creating one is cheap — buffers grow lazily
/// to the sizes the training loop needs.
#[derive(Debug, Default)]
pub struct TrainArena {
    /// Mini-batch labels (reused across batches).
    yb: Vec<u32>,
    /// Backing storage of the gathered dense mini-batch.
    xb_data: Vec<f32>,
    /// Flat parameter image broadcast to the lanes each step.
    weight_stage: Vec<f32>,
    /// Fixed-order reduction accumulator (`n_params` floats).
    grad_accum: Vec<f32>,
    /// One replica network + per-sample gradient stage per lane.
    lanes: Vec<Mutex<Lane>>,
}

impl TrainArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the chunk's labels into the reused label buffer.
    pub(crate) fn fill_labels(&mut self, chunk: &[usize], y: &[u32]) {
        self.yb.clear();
        self.yb.extend(chunk.iter().map(|&i| y[i]));
    }

    /// The labels of the current mini-batch.
    pub(crate) fn labels(&self) -> &[u32] {
        &self.yb
    }

    /// Gathers `chunk`'s samples along the leading axis into a tensor
    /// backed by the arena's reused buffer. Return it with
    /// [`recycle`](Self::recycle) so the allocation survives.
    pub(crate) fn gather(&mut self, x: &Tensor, chunk: &[usize]) -> Tensor {
        let n = x.shape()[0];
        let slen = x.len() / n;
        let mut buf = std::mem::take(&mut self.xb_data);
        buf.clear();
        buf.reserve(chunk.len() * slen);
        for &i in chunk {
            assert!(i < n, "sample index out of range");
            buf.extend_from_slice(&x.data()[i * slen..(i + 1) * slen]);
        }
        let mut shape = x.shape().to_vec();
        shape[0] = chunk.len();
        Tensor::from_vec(buf, &shape)
    }

    /// Takes a gathered batch's backing storage back for the next one.
    pub(crate) fn recycle(&mut self, xb: Tensor) {
        self.xb_data = xb.into_data();
    }

    /// The weight-broadcast buffer, for [`Sequential::export_params`].
    pub(crate) fn weight_stage_mut(&mut self) -> &mut Vec<f32> {
        &mut self.weight_stage
    }

    /// Grows (or rebuilds, when the network shape changed) the lane
    /// pool to at least `n` replicas of `net`.
    pub(crate) fn ensure_lanes(&mut self, net: &mut Sequential, n: usize) {
        let want_params = net.n_params();
        let compatible = self.lanes.first().is_none_or(|slot| {
            let mut lane = slot.lock().expect("lane lock");
            lane.net.n_params() == want_params && lane.net.n_layers() == net.n_layers()
        });
        if !compatible {
            self.lanes.clear();
        }
        while self.lanes.len() < n {
            self.lanes.push(Mutex::new(Lane::new(net)));
        }
    }

    /// Shared view of the first `n` lanes plus the broadcast weights
    /// and current labels — everything an `Executor::map` over lane
    /// indices needs.
    pub(crate) fn lane_view(&self, n: usize) -> (&[Mutex<Lane>], &[f32], &[u32]) {
        (&self.lanes[..n], &self.weight_stage, &self.yb)
    }

    /// Folds the lanes' per-sample gradient stages into `grad_accum`
    /// and returns the unnormalized loss, both in global sample order
    /// (lanes ascending, samples within a lane ascending). The
    /// accumulator starts from fresh `+0.0`s, exactly like the batch
    /// kernels' own sample-axis accumulation.
    pub(crate) fn reduce(&mut self, n_lanes: usize, n_params: usize) -> f32 {
        self.grad_accum.clear();
        self.grad_accum.resize(n_params, 0.0);
        let mut raw = 0.0f32;
        for slot in &self.lanes[..n_lanes] {
            let lane = slot.lock().expect("lane lock");
            for stage in lane.stage.chunks_exact(n_params) {
                for (a, &v) in self.grad_accum.iter_mut().zip(stage) {
                    *a += v;
                }
            }
            for &l in &lane.losses {
                raw += l;
            }
        }
        raw
    }

    /// The reduced gradient image of the last [`reduce`](Self::reduce).
    pub(crate) fn grad_accum(&self) -> &[f32] {
        &self.grad_accum
    }
}

/// One gradient lane: a replica network plus the per-sample stages it
/// produced for its shard of the current mini-batch.
#[derive(Debug)]
pub(crate) struct Lane {
    net: Sequential,
    /// Reused single-sample input tensor `[1, ...]`.
    x1: Option<Tensor>,
    /// `shard_len × n_params` per-sample gradient images, sample order.
    stage: Vec<f32>,
    /// Raw (unnormalized) per-sample losses, sample order.
    losses: Vec<f32>,
}

impl Lane {
    fn new(net: &Sequential) -> Self {
        Self { net: net.clone(), x1: None, stage: Vec::new(), losses: Vec::new() }
    }

    /// Replays batch positions `range` one sample at a time: sync
    /// weights from the broadcast image, then per sample zero the
    /// replica's gradients, forward, score against the *batch-wide*
    /// `norm`, backward, and append the flat gradient image to `stage`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        &mut self,
        range: Range<usize>,
        x: &Tensor,
        chunk: &[usize],
        labels: &[u32],
        cw: Option<&[f32]>,
        norm: f32,
        weights: &[f32],
        n_params: usize,
    ) {
        self.net.import_params(weights);
        self.stage.clear();
        self.stage.reserve(range.len() * n_params);
        self.losses.clear();
        let slen = x.len() / x.shape()[0];
        let mut shape = x.shape().to_vec();
        shape[0] = 1;
        for pos in range {
            let idx = chunk[pos];
            let src = &x.data()[idx * slen..(idx + 1) * slen];
            let x1 = match self.x1.take() {
                Some(t) if t.len() == slen => {
                    let mut t = t.reshaped(&shape);
                    t.data_mut().copy_from_slice(src);
                    t
                }
                _ => Tensor::from_vec(src.to_vec(), &shape),
            };
            self.net.zero_grad();
            let logits = self.net.forward(&x1, true);
            let (loss, grad) =
                cross_entropy_with_norm(&logits, &labels[pos..pos + 1], cw, norm);
            self.net.backward(&grad);
            self.net.export_grads(&mut self.stage);
            self.losses.push(loss);
            self.x1 = Some(x1);
        }
    }
}
