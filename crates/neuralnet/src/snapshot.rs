//! Network parameter snapshots: save and restore trained models.
//!
//! `Sequential` holds type-erased layers, so full serde is impractical;
//! instead a [`NetSnapshot`] pairs an architecture descriptor (enough to
//! rebuild the empty network) with the flat parameter tensors captured
//! in visit order. This is what lets a trained attacker be stored on
//! disk and reloaded without retraining.

use crate::models::{mlp, paper_cnn};
use crate::net::Sequential;
use crate::Layer;
use serde::{Deserialize, Serialize};
use tensorlite::Tensor;

/// The architectures this crate can rebuild from a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchSpec {
    /// [`mlp`] with the given dimensions.
    Mlp {
        /// Input features.
        input_dim: usize,
        /// Hidden units.
        hidden: usize,
        /// Output classes.
        n_classes: usize,
    },
    /// [`paper_cnn`] with the given class count.
    PaperCnn {
        /// Output classes.
        n_classes: usize,
    },
}

impl ArchSpec {
    /// Builds an untrained network of this architecture.
    pub fn build(&self, seed: u64) -> Sequential {
        match *self {
            ArchSpec::Mlp { input_dim, hidden, n_classes } => {
                mlp(input_dim, hidden, n_classes, seed)
            }
            ArchSpec::PaperCnn { n_classes } => paper_cnn(n_classes, seed),
        }
    }
}

/// A serializable snapshot of a trained network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSnapshot {
    /// How to rebuild the empty network.
    pub arch: ArchSpec,
    /// Parameter tensors in visit order.
    params: Vec<Tensor>,
}

impl NetSnapshot {
    /// Captures the parameters of `net`, which must have been built
    /// with (or be structurally identical to) `arch`.
    pub fn capture(arch: ArchSpec, net: &mut Sequential) -> Self {
        let mut params = Vec::new();
        net.visit_params(&mut |p, _| params.push(p.clone()));
        Self { arch, params }
    }

    /// Rebuilds the network and restores the captured parameters.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter shapes do not match the
    /// architecture (corrupt or hand-edited snapshot).
    pub fn restore(&self) -> Sequential {
        let mut net = self.arch.build(0);
        let mut iter = self.params.iter();
        net.visit_params(&mut |p, _| {
            let saved = iter.next().expect("snapshot has enough tensors");
            assert_eq!(saved.shape(), p.shape(), "snapshot shape mismatch");
            *p = saved.clone();
        });
        assert!(iter.next().is_none(), "snapshot has extra tensors");
        net
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshots always serialize")
    }

    /// Deserializes from [`NetSnapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the serde error message for malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{train, TrainConfig};

    fn trained_mlp() -> (Sequential, Tensor, Vec<u32>) {
        let x = Tensor::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.1, 0.9],
        ]);
        let y = vec![0u32, 0, 1, 1];
        let mut net = mlp(2, 8, 2, 5);
        train(&mut net, &x, &y, &TrainConfig { epochs: 50, lr: 0.01, ..Default::default() });
        (net, x, y)
    }

    #[test]
    fn snapshot_roundtrips_predictions() {
        let (mut net, x, y) = trained_mlp();
        assert_eq!(net.predict(&x), y);
        let arch = ArchSpec::Mlp { input_dim: 2, hidden: 8, n_classes: 2 };
        let snap = NetSnapshot::capture(arch, &mut net);
        let mut restored = snap.restore();
        assert_eq!(restored.predict(&x), y);
        // Logits identical, not just argmax.
        let a = net.logits(&x);
        let b = restored.logits(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip() {
        let (mut net, x, _) = trained_mlp();
        let arch = ArchSpec::Mlp { input_dim: 2, hidden: 8, n_classes: 2 };
        let snap = NetSnapshot::capture(arch, &mut net);
        let back = NetSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.restore().logits(&x), net.logits(&x));
    }

    #[test]
    fn cnn_snapshot_restores() {
        let mut net = paper_cnn(3, 9);
        let arch = ArchSpec::PaperCnn { n_classes: 3 };
        let snap = NetSnapshot::capture(arch, &mut net);
        let mut restored = snap.restore();
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        assert_eq!(net.logits(&x), restored.logits(&x));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn restoring_into_wrong_arch_panics() {
        let (mut net, _, _) = trained_mlp();
        let wrong = ArchSpec::Mlp { input_dim: 3, hidden: 8, n_classes: 2 };
        let mut snap = NetSnapshot::capture(wrong, &mut net);
        // Shapes recorded from the real net (2 inputs) conflict with the
        // declared 3-input architecture at restore time.
        snap.restore();
        let _ = &mut snap;
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(NetSnapshot::from_json("{not json").is_err());
    }
}
