//! Round-based fine-tuning for unbalanced datasets (paper Figs. 10–11).
//!
//! The paper's third remedy for class imbalance: build a series of
//! *round datasets* from the unbalanced corpus — the first round holds
//! every class balanced at the smallest class size; each consecutive
//! round drops the smallest class(es) and rebalances at the (larger)
//! new minimum — then train in **reverse creation order** (largest
//! classes first, all classes last), carrying parameters across rounds
//! and optionally lowering the learning rate for the final round.

use crate::arena::TrainArena;
use crate::net::{gather_samples, train_in_arena, Sequential, TrainConfig, TrainReport};
use crate::optim::Adam;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tensorlite::Tensor;

/// One round dataset: the sample indices it trains on and the classes
/// it still contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Indices into the full dataset (balanced across `classes`).
    pub indices: Vec<usize>,
    /// Classes present in this round.
    pub classes: Vec<u32>,
    /// Per-class sample count in this round.
    pub per_class: usize,
}

/// Builds round datasets from labels.
///
/// `drops[i]` is how many of the smallest remaining classes are removed
/// *after* round `i` (the paper's TM-3 run uses `[1, 2, 1, 2]` to go
/// from 10 classes to 5 rounds). Rounds are returned in creation order
/// (round 0 = all classes); training should iterate them in reverse.
///
/// # Panics
///
/// Panics if labels are empty, a drop count is zero, or the drops
/// exhaust all classes before the last round (at least two classes must
/// remain in the final round).
pub fn make_rounds(labels: &[u32], n_classes: usize, drops: &[usize], seed: u64) -> Vec<Round> {
    assert!(!labels.is_empty(), "cannot build rounds from no samples");
    let mut rng = StdRng::seed_from_u64(seed);

    // Per-class index pools, shuffled once for random selection.
    let mut pools: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!((l as usize) < n_classes, "label {l} out of range");
        pools[l as usize].push(i);
    }
    for pool in &mut pools {
        pool.shuffle(&mut rng);
    }
    // Classes sorted ascending by size; empty classes are excluded.
    let mut remaining: Vec<u32> = (0..n_classes as u32)
        .filter(|&c| !pools[c as usize].is_empty())
        .collect();
    remaining.sort_by_key(|&c| (pools[c as usize].len(), c));

    let mut rounds = Vec::with_capacity(drops.len() + 1);
    let mut drop_iter = drops.iter();
    loop {
        assert!(
            remaining.len() >= 2,
            "rounds must keep at least two classes; too many drops"
        );
        let per_class = remaining
            .iter()
            .map(|&c| pools[c as usize].len())
            .min()
            .expect("remaining is non-empty");
        let mut indices = Vec::with_capacity(per_class * remaining.len());
        for &c in &remaining {
            indices.extend_from_slice(&pools[c as usize][..per_class]);
        }
        indices.sort_unstable();
        rounds.push(Round { indices, classes: remaining.clone(), per_class });
        match drop_iter.next() {
            Some(&d) => {
                assert!(d > 0, "drop counts must be positive");
                let d = d.min(remaining.len().saturating_sub(2));
                remaining.drain(..d);
            }
            None => break,
        }
    }
    rounds
}

/// Fine-tuning schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneConfig {
    /// Epochs per round (the paper sweeps 500/1000/2000 total across
    /// rounds; see Table VIII).
    pub epochs_per_round: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for all but the last round.
    pub lr: f32,
    /// Learning rate for the final (all-classes) round; the paper
    /// suggests reducing it "to find the loss minima".
    pub final_lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Gradient lanes per mini-batch (see [`TrainConfig::shards`]).
    pub shards: Option<usize>,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            epochs_per_round: 30,
            batch_size: 32,
            lr: 1e-3,
            final_lr: 1e-3,
            seed: 0,
            shards: None,
        }
    }
}

/// Runs the Fig. 11 pipeline: trains `net` on the rounds in reverse
/// creation order, passing parameters (and optimizer state) forward.
///
/// Returns one [`TrainReport`] per executed round.
pub fn fine_tune(
    net: &mut Sequential,
    x: &Tensor,
    y: &[u32],
    rounds: &[Round],
    config: &FineTuneConfig,
) -> Vec<TrainReport> {
    let mut adam = Adam::new(config.lr);
    // One arena across all rounds: the lane replicas and staging
    // buffers are sized by the (fixed) network, so every round after
    // the first trains allocation-free in steady state.
    let mut arena = TrainArena::new();
    let mut reports = Vec::with_capacity(rounds.len());
    for (step, round) in rounds.iter().rev().enumerate() {
        let is_last = step + 1 == rounds.len();
        let xb = gather_samples(x, &round.indices);
        let yb: Vec<u32> = round.indices.iter().map(|&i| y[i]).collect();
        let cfg = TrainConfig {
            epochs: config.epochs_per_round,
            batch_size: config.batch_size,
            lr: if is_last { config.final_lr } else { config.lr },
            seed: config.seed.wrapping_add(step as u64),
            class_weights: None,
            shards: config.shards,
        };
        reports.push(train_in_arena(net, &xb, &yb, &cfg, &mut adam, &mut arena));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;

    fn unbalanced_labels() -> Vec<u32> {
        // Class sizes: 0 → 40, 1 → 12, 2 → 6.
        let mut y = vec![0u32; 40];
        y.extend(vec![1u32; 12]);
        y.extend(vec![2u32; 6]);
        y
    }

    #[test]
    fn rounds_shrink_classes_and_grow_per_class() {
        let y = unbalanced_labels();
        let rounds = make_rounds(&y, 3, &[1], 1);
        assert_eq!(rounds.len(), 2);
        // Round 0: all three classes at the smallest size (6).
        assert_eq!(rounds[0].classes.len(), 3);
        assert_eq!(rounds[0].per_class, 6);
        assert_eq!(rounds[0].indices.len(), 18);
        // Round 1: smallest class dropped, balanced at 12.
        assert_eq!(rounds[1].classes, vec![1, 0]);
        assert_eq!(rounds[1].per_class, 12);
        assert_eq!(rounds[1].indices.len(), 24);
    }

    #[test]
    fn round_indices_match_declared_classes() {
        let y = unbalanced_labels();
        for round in make_rounds(&y, 3, &[1], 5) {
            for &i in &round.indices {
                assert!(round.classes.contains(&y[i]));
            }
            // Balanced: every class appears per_class times.
            for &c in &round.classes {
                let n = round.indices.iter().filter(|&&i| y[i] == c).count();
                assert_eq!(n, round.per_class);
            }
        }
    }

    #[test]
    fn paper_tm3_round_structure() {
        // 10 classes, drops [1, 2, 1, 2] → 5 rounds ending with 4 classes.
        let mut y = Vec::new();
        for c in 0..10u32 {
            y.extend(vec![c; 10 + c as usize * 15]);
        }
        let rounds = make_rounds(&y, 10, &[1, 2, 1, 2], 3);
        assert_eq!(rounds.len(), 5);
        let class_counts: Vec<usize> = rounds.iter().map(|r| r.classes.len()).collect();
        assert_eq!(class_counts, vec![10, 9, 7, 6, 4]);
    }

    #[test]
    fn rounds_are_deterministic() {
        let y = unbalanced_labels();
        assert_eq!(make_rounds(&y, 3, &[1], 7), make_rounds(&y, 3, &[1], 7));
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_exhausting_drops() {
        // 2 classes: dropping even one leaves a single class → clamped,
        // but an initial single-class dataset must panic.
        make_rounds(&[0u32, 0, 0], 1, &[], 0);
    }

    #[test]
    fn fine_tune_trains_all_classes() {
        // Separable 1-D blobs at -3, 0, +3 with unbalanced sizes.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, (center, n)) in [(-3.0f32, 30usize), (0.0, 12), (3.0, 6)].iter().enumerate() {
            for i in 0..*n {
                rows.push(vec![center + ((i as f32) * 0.61).sin() * 0.4]);
                y.push(c as u32);
            }
        }
        let x = Tensor::from_rows(&rows);
        let rounds = make_rounds(&y, 3, &[1], 11);
        let mut net = mlp(1, 16, 3, 2);
        let cfg = FineTuneConfig {
            epochs_per_round: 80,
            lr: 0.01,
            final_lr: 0.005,
            ..Default::default()
        };
        let reports = fine_tune(&mut net, &x, &y, &rounds, &cfg);
        assert_eq!(reports.len(), 2);
        let pred = net.predict(&x);
        let correct = pred.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct as f64 >= y.len() as f64 * 0.9, "{correct}/{}", y.len());
    }
}
