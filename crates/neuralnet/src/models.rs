//! The paper's two deep models.

use crate::conv::{Conv2d, MaxPool2d};
use crate::layer::{Dense, Flatten, Layer, Relu};
use crate::net::Sequential;

/// The paper's MLP: one hidden layer of `hidden` units with ReLU.
///
/// The paper "use(s) the standard MLP with 100 hidden layers and Adam
/// solver" — scikit-learn's `MLPClassifier(hidden_layer_sizes=(100,))`,
/// i.e. one hidden layer of 100 units (the phrase describes the default
/// layer *size*).
///
/// # Panics
///
/// Panics on zero dimensions.
pub fn mlp(input_dim: usize, hidden: usize, n_classes: usize, seed: u64) -> Sequential {
    assert!(n_classes >= 2, "need at least two classes");
    Sequential::new(vec![
        Box::new(Dense::new(input_dim, hidden, seed)) as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(Dense::new(hidden, n_classes, seed.wrapping_add(1))),
    ])
}

/// Image side length the CNN expects (32×32 inputs, paper Fig. 7).
pub const CNN_INPUT_SIZE: usize = 32;

/// Input channels (RGB line graphs).
pub const CNN_INPUT_CHANNELS: usize = 3;

/// The Fig. 7 CNN.
///
/// Two consecutive CONV(k=5, s=1, p=2) + ReLU + MAXPOOL(k=2, s=2)
/// stages reduce 32×32 to 8×8, followed by a fully-connected layer
/// producing class logits. Channel widths are 3 → 8 → 16, so the FC
/// layer consumes the 16·8·8 = 1024-dim flattened feature map.
///
/// # Panics
///
/// Panics if `n_classes < 2`.
pub fn paper_cnn(n_classes: usize, seed: u64) -> Sequential {
    assert!(n_classes >= 2, "need at least two classes");
    Sequential::new(vec![
        Box::new(Conv2d::new(CNN_INPUT_CHANNELS, 8, 5, 1, 2, seed)) as Box<dyn Layer>,
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Conv2d::new(8, 16, 5, 1, 2, seed.wrapping_add(1))),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dense::new(16 * 8 * 8, n_classes, seed.wrapping_add(2))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{train, TrainConfig};
    use tensorlite::Tensor;

    #[test]
    fn cnn_shapes_flow_as_in_fig7() {
        let mut net = paper_cnn(4, 1);
        let x = Tensor::zeros(&[2, 3, 32, 32]);
        let logits = net.logits(&x);
        assert_eq!(logits.shape(), &[2, 4]);
    }

    #[test]
    fn mlp_has_expected_parameter_count() {
        let mut net = mlp(50, 100, 4, 1);
        assert_eq!(net.n_params(), 50 * 100 + 100 + 100 * 4 + 4);
    }

    #[test]
    fn cnn_learns_color_classes() {
        // Two classes of trivially separable images: red-ish vs blue-ish.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            let v = 0.5 + (i as f32) * 0.02;
            let mut red = vec![0.0f32; 3 * 32 * 32];
            red[..32 * 32].iter_mut().for_each(|p| *p = v);
            rows.push(red);
            labels.push(0u32);
            let mut blue = vec![0.0f32; 3 * 32 * 32];
            blue[2 * 32 * 32..].iter_mut().for_each(|p| *p = v);
            rows.push(blue);
            labels.push(1u32);
        }
        let n = rows.len();
        let data: Vec<f32> = rows.concat();
        let x = Tensor::from_vec(data, &[n, 3, 32, 32]);
        let mut net = paper_cnn(2, 3);
        let cfg = TrainConfig { epochs: 8, batch_size: 8, lr: 5e-3, ..Default::default() };
        train(&mut net, &x, &labels, &cfg);
        assert_eq!(net.predict(&x), labels);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class() {
        mlp(10, 10, 1, 0);
    }
}
