//! The layer abstraction and the dense building blocks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparsemat::CsrMatrix;
use tensorlite::Tensor;

/// A differentiable network layer.
///
/// `forward` caches whatever `backward` needs; `backward` receives the
/// loss gradient w.r.t. the layer's output, accumulates parameter
/// gradients internally, and returns the gradient w.r.t. its input.
///
/// `Send` so whole networks can move to (or be replicated onto) the
/// sharded trainer's worker threads.
pub trait Layer: Send {
    /// Forward pass. `train` enables training-only caching.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Forward pass over a sparse CSR batch, for layers that can consume
    /// nonzeros directly (the MLP's input [`Dense`] layer). Returns
    /// `None` when the layer has no sparse path and the caller should
    /// densify instead.
    fn forward_sparse(&mut self, _input: &CsrMatrix, _train: bool) -> Option<Tensor> {
        None
    }

    /// Backward pass; must be called after a `forward` with `train=true`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits `(parameter, gradient)` pairs in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Zeroes accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.scale(0.0));
    }

    /// Clones the layer — parameters, gradients, and caches — into a
    /// boxed trait object. The sharded trainer uses this to build one
    /// replica network per lane.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Drops any persistent scratch buffers (im2col columns, argmax
    /// maps, cached inputs) so the next forward pass re-allocates them.
    /// Benchmarks call this to emulate the pre-arena allocation
    /// behavior; it never changes computed values.
    fn reset_scratch(&mut self) {}

    /// Whether running samples through this layer one at a time (with
    /// `train=true`) produces bit-identical activations and parameter
    /// gradients to running them as one batch. True for every stateless
    /// or per-row layer; false for layers that consume an RNG stream
    /// per forward call (dropout), which the sharded trainer must not
    /// split.
    fn per_sample_deterministic(&self) -> bool {
        true
    }
}

/// Stores `src` in `slot`, reusing the existing allocation when the
/// element count matches (shapes may differ, e.g. the last short batch
/// of an epoch).
pub(crate) fn cache_assign(slot: &mut Option<Tensor>, src: &Tensor) {
    if let Some(t) = slot.take() {
        if t.len() == src.len() {
            let mut t = t.reshaped(src.shape());
            t.data_mut().copy_from_slice(src.data());
            *slot = Some(t);
            return;
        }
    }
    *slot = Some(src.clone());
}

/// Fully-connected layer: `Y = X·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Tensor,       // [in, out]
    b: Tensor,       // [out]
    dw: Tensor,
    db: Tensor,
    input: Option<Tensor>,
    sparse_input: Option<CsrMatrix>,
}

impl Dense {
    /// Kaiming-uniform initialized dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense dimensions must be nonzero");
        let mut rng = StdRng::seed_from_u64(seed);
        // Xavier-uniform: keeps initial logits near zero so training
        // starts from the ~ln(C) loss plateau instead of above it.
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let w = Tensor::from_vec(
            (0..in_dim * out_dim).map(|_| rng.gen_range(-bound..bound)).collect(),
            &[in_dim, out_dim],
        );
        Self {
            w,
            b: Tensor::zeros(&[out_dim]),
            dw: Tensor::zeros(&[in_dim, out_dim]),
            db: Tensor::zeros(&[out_dim]),
            input: None,
            sparse_input: None,
        }
    }

    /// The weight matrix (for inspection/tests).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }
}

impl Dense {
    fn accumulate_db(&mut self, grad_output: &Tensor) {
        for r in 0..grad_output.shape()[0] {
            let row = grad_output.row(r);
            for (g, &v) in self.db.data_mut().iter_mut().zip(row) {
                *g += v;
            }
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().len(), 2, "dense input must be [N, features]");
        assert_eq!(input.shape()[1], self.in_dim(), "dense input width");
        let out = input.matmul_add_bias(&self.w, self.b.data());
        if train {
            cache_assign(&mut self.input, input);
            self.sparse_input = None;
        }
        out
    }

    fn forward_sparse(&mut self, input: &CsrMatrix, train: bool) -> Option<Tensor> {
        assert_eq!(input.n_cols(), self.in_dim(), "dense input width");
        let mut out = input.matmul_dense(&self.w);
        let out_dim = self.out_dim();
        for r in 0..out.shape()[0] {
            let row = &mut out.data_mut()[r * out_dim..(r + 1) * out_dim];
            for (o, &bias) in row.iter_mut().zip(self.b.data()) {
                *o += bias;
            }
        }
        if train {
            self.sparse_input = Some(input.clone());
            self.input = None;
        }
        Some(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        if let Some(csr) = self.sparse_input.take() {
            // dW += Xᵀ·dY, scattered over the row nonzeros: for each
            // sample p (ascending) each nonzero X[p,j] rank-1 updates
            // dW's row j — the `matmul_at` accumulation order with the
            // zero terms skipped, so dW is bit-identical to the dense
            // backward's.
            let (in_dim, out_dim) = (self.in_dim(), self.out_dim());
            let mut dt = Tensor::zeros(&[in_dim, out_dim]);
            {
                let dtd = dt.data_mut();
                for p in 0..csr.n_rows() {
                    let (idx, val) = csr.row(p);
                    let gr = grad_output.row(p);
                    for (&j, &v) in idx.iter().zip(val) {
                        let dst =
                            &mut dtd[j as usize * out_dim..(j as usize + 1) * out_dim];
                        for (d, &g) in dst.iter_mut().zip(gr) {
                            *d += v * g;
                        }
                    }
                }
            }
            self.dw.add_assign(&dt);
            self.accumulate_db(grad_output);
            self.sparse_input = Some(csr);
            // Sparse input only ever feeds the network's first layer,
            // whose input gradient the trainer discards.
            return Tensor::zeros(&[grad_output.shape()[0], in_dim]);
        }
        let input = self.input.as_ref().expect("backward before forward(train=true)");
        // dW += Xᵀ·dY ; db += Σ_rows dY ; dX = dY·Wᵀ — both products via
        // the fused transpose kernels (no explicit transposed() copies).
        self.dw.add_assign(&input.matmul_at(grad_output));
        self.accumulate_db(grad_output);
        grad_output.matmul_bt(&self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        self.input = None;
        self.sparse_input = None;
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            let mask = self.mask.get_or_insert_with(Vec::new);
            mask.clear();
            mask.extend(input.data().iter().map(|&x| x > 0.0));
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward(train=true)");
        let data = grad_output
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        self.mask = None;
    }
}

/// Inverted dropout: during training, zeroes each activation with
/// probability `p` and rescales survivors by `1/(1-p)`; identity at
/// inference. An extension over the paper's architecture for users who
/// train the CNN on larger corpora.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Self { p, rng: StdRng::seed_from_u64(seed), mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let mask: Vec<bool> = (0..input.len()).map(|_| self.rng.gen::<f32>() >= self.p).collect();
        let scale = 1.0 / (1.0 - self.p);
        let data = input
            .data()
            .iter()
            .zip(&mask)
            .map(|(&x, &keep)| if keep { x * scale } else { 0.0 })
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_output.clone(),
            Some(mask) => {
                let scale = 1.0 / (1.0 - self.p);
                let data = grad_output
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &keep)| if keep { g * scale } else { 0.0 })
                    .collect();
                Tensor::from_vec(data, grad_output.shape())
            }
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        self.mask = None;
    }

    /// Dropout draws from its RNG once per forward call, so batch-split
    /// replays consume the stream differently than the whole batch.
    fn per_sample_deterministic(&self) -> bool {
        self.p == 0.0
    }
}

/// Flattens `[N, ...]` to `[N, prod]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// A fresh Flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            self.input_shape = Some(input.shape().to_vec());
        }
        input.clone().reshaped(&[n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before forward(train=true)");
        grad_output.clone().reshaped(shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        self.input_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_matches_manual() {
        let mut d = Dense::new(2, 2, 1);
        // Overwrite with known weights.
        d.w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        d.b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_rows(&[vec![1.0, 1.0]]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]);
        assert_eq!(r.forward(&x, true).data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_vec(vec![5.0, 5.0, 5.0], &[1, 3]));
        assert_eq!(g.data(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        assert_eq!(d.forward(&x, false), x);
        // Backward after inference forward passes gradients through.
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn dropout_preserves_expected_activation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::full(&[1, 10_000], 1.0);
        let y = d.forward(&x, true);
        let mean = y.sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Roughly p of activations are zeroed.
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn dropout_backward_uses_forward_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(&[1, 100], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full(&[1, 100], 1.0));
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0, "mask mismatch");
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn dense_init_is_seeded() {
        let a = Dense::new(4, 3, 42);
        let b = Dense::new(4, 3, 42);
        let c = Dense::new(4, 3, 43);
        assert_eq!(a.weights(), b.weights());
        assert_ne!(a.weights(), c.weights());
    }

    /// Finite-difference check of Dense gradients.
    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut d = Dense::new(3, 2, 7);
        let x = Tensor::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.3, -0.7]]);
        // Scalar loss = sum of outputs.
        let y = d.forward(&x, true);
        let ones = Tensor::full(y.shape(), 1.0);
        let dx = d.backward(&ones);

        let eps = 1e-3f32;
        // Check dW numerically.
        let mut dw_expected = vec![0.0f32; 6];
        for (i, slot) in dw_expected.iter_mut().enumerate() {
            let mut dp = d.clone();
            dp.w.data_mut()[i] += eps;
            let mut dm = d.clone();
            dm.w.data_mut()[i] -= eps;
            let lp = dp.forward(&x, false).sum();
            let lm = dm.forward(&x, false).sum();
            *slot = (lp - lm) / (2.0 * eps);
        }
        for (a, e) in d.dw.data().iter().zip(&dw_expected) {
            assert!((a - e).abs() < 1e-2, "analytic {a} vs numeric {e}");
        }
        // Check dX numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut dd = d.clone();
            let lp = dd.forward(&xp, false).sum();
            let lm = dd.forward(&xm, false).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((dx.data()[i] - num).abs() < 1e-2);
        }
    }
}
