//! The Adam optimizer (Kingma & Ba, the paper's choice throughout).

use crate::layer::Layer;
use tensorlite::Tensor;

/// Adam with the standard defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
///
/// Per-parameter state is keyed by visit order, which every layer keeps
/// stable; reusing one `Adam` across structurally different networks is
/// a programming error and panics on a size mismatch.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    /// (first moment, second moment) per parameter tensor.
    state: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not a positive finite number.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, state: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Changes the learning rate (fine-tuning reduces it for the last
    /// round, per the paper).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not a positive finite number.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step from the accumulated gradients of `net`.
    pub fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let state = &mut self.state;
        let t_idx = std::cell::Cell::new(0usize);
        net.visit_params(&mut |param: &mut Tensor, grad: &mut Tensor| {
            let i = t_idx.get();
            t_idx.set(i + 1);
            if state.len() <= i {
                state.push((vec![0.0; param.len()], vec![0.0; param.len()]));
            }
            let (m, v) = &mut state[i];
            assert_eq!(m.len(), param.len(), "optimizer reused across different networks");
            let pd = param.data_mut();
            let gd = grad.data();
            for j in 0..pd.len() {
                let g = gd[j];
                m[j] = b1 * m[j] + (1.0 - b1) * g;
                v[j] = b2 * v[j] + (1.0 - b2) * g * g;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                pd[j] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

/// Plain stochastic gradient descent with optional momentum — the
/// reference optimizer Adam is compared against in the optimizer
/// ablation tests.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive-finite or momentum is outside
    /// `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Applies one update step from the accumulated gradients of `net`.
    pub fn step(&mut self, net: &mut dyn Layer) {
        let (lr, mu) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        let idx = std::cell::Cell::new(0usize);
        net.visit_params(&mut |param: &mut Tensor, grad: &mut Tensor| {
            let i = idx.get();
            idx.set(i + 1);
            if velocity.len() <= i {
                velocity.push(vec![0.0; param.len()]);
            }
            let v = &mut velocity[i];
            assert_eq!(v.len(), param.len(), "optimizer reused across different networks");
            let pd = param.data_mut();
            let gd = grad.data();
            for j in 0..pd.len() {
                v[j] = mu * v[j] - lr * gd[j];
                pd[j] += v[j];
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Dense;

    /// Adam minimizes a simple quadratic through a Dense layer.
    #[test]
    fn adam_descends_a_quadratic() {
        // Loss = ||W x||² for fixed x; optimum W = 0.
        let mut layer = Dense::new(2, 2, 3);
        let x = tensorlite::Tensor::from_rows(&[vec![1.0, -0.5]]);
        let mut adam = Adam::new(0.05);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            layer.zero_grad();
            let y = layer.forward(&x, true);
            let loss: f32 = y.data().iter().map(|v| v * v).sum();
            let grad = y.map(|v| 2.0 * v);
            layer.backward(&grad);
            adam.step(&mut layer);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.01, "loss {last_loss}");
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut layer = Dense::new(2, 2, 3);
        let x = tensorlite::Tensor::from_rows(&[vec![1.0, -0.5]]);
        let mut sgd = Sgd::new(0.05, 0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            layer.zero_grad();
            let y = layer.forward(&x, true);
            let loss: f32 = y.data().iter().map(|v| v * v).sum();
            layer.backward(&y.map(|v| 2.0 * v));
            sgd.step(&mut layer);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.01, "loss {last}");
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn sgd_rejects_bad_momentum() {
        Sgd::new(0.1, 1.0);
    }

    #[test]
    fn set_lr_updates() {
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.001);
        assert_eq!(adam.lr(), 0.001);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        Adam::new(0.0);
    }
}
