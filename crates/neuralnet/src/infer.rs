//! Allocation-free MLP inference over a flat weight image.
//!
//! [`Sequential::forward`] allocates one output tensor per layer per
//! call — fine for training, fatal for a serving hot path that must not
//! touch the heap per request. [`FlatMlp`] is the inference-side
//! counterpart of the training arenas: the [`crate::models::mlp`]
//! architecture reduced to its flat parameter image (the same
//! `export_params` visit-order image the sharded trainer broadcasts),
//! evaluated into caller-owned [`InferScratch`] buffers.
//!
//! The arithmetic replays the training stack exactly: the sparse input
//! layer accumulates in ascending-nonzero order with the bias added
//! after the products (`Dense::forward_sparse`), ReLU is `max(0.0)`,
//! and the dense output layer accumulates in ascending-`k` order with
//! the bias added after (`matmul_add_bias`'s blocked kernel reorders
//! nothing). Predictions are therefore bit-identical to
//! [`Sequential::predict_sparse`] on the network the image came from —
//! asserted by this module's tests, not just argued.

use crate::models::mlp;
use crate::net::Sequential;
use sparsemat::SparseVec;

/// A one-hidden-layer ReLU MLP flattened to its parameter image, laid
/// out in `visit_params` order: `w1 [input_dim × hidden]` row-major,
/// `b1 [hidden]`, `w2 [hidden × n_classes]` row-major, `b2 [n_classes]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMlp {
    input_dim: usize,
    hidden: usize,
    n_classes: usize,
    params: Vec<f32>,
}

impl FlatMlp {
    /// Expected flat-image length for the given dimensions.
    pub fn param_len(input_dim: usize, hidden: usize, n_classes: usize) -> usize {
        input_dim * hidden + hidden + hidden * n_classes + n_classes
    }

    /// Wraps an existing flat image.
    ///
    /// # Errors
    ///
    /// Rejects zero dimensions and images whose length does not match
    /// the dimensions.
    pub fn from_params(
        input_dim: usize,
        hidden: usize,
        n_classes: usize,
        params: Vec<f32>,
    ) -> Result<Self, String> {
        if input_dim == 0 || hidden == 0 || n_classes < 2 {
            return Err(format!(
                "bad MLP dimensions: input_dim={input_dim} hidden={hidden} n_classes={n_classes}"
            ));
        }
        let want = Self::param_len(input_dim, hidden, n_classes);
        if params.len() != want {
            return Err(format!("parameter image length {} != expected {want}", params.len()));
        }
        Ok(Self { input_dim, hidden, n_classes, params })
    }

    /// Captures the flat image of a trained [`mlp`] network.
    ///
    /// # Panics
    ///
    /// Panics if `net`'s parameter count does not match the dimensions.
    pub fn capture(net: &mut Sequential, input_dim: usize, hidden: usize, n_classes: usize) -> Self {
        let mut params = Vec::new();
        net.export_params(&mut params);
        assert_eq!(
            params.len(),
            Self::param_len(input_dim, hidden, n_classes),
            "network shape does not match the declared MLP dimensions"
        );
        Self { input_dim, hidden, n_classes, params }
    }

    /// Rebuilds a full [`Sequential`] carrying these weights (for
    /// cross-checks and further training).
    pub fn to_net(&self) -> Sequential {
        let mut net = mlp(self.input_dim, self.hidden, self.n_classes, 0);
        net.import_params(&self.params);
        net
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Output class count.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The flat parameter image (visit order).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Writes class logits for one sparse row into `scratch` and
    /// returns them; performs no heap allocation once the scratch has
    /// warmed to this network's shape.
    ///
    /// # Panics
    ///
    /// Panics if `row.dim()` differs from `input_dim`.
    pub fn logits_sparse<'s>(&self, row: &SparseVec, scratch: &'s mut InferScratch) -> &'s [f32] {
        assert_eq!(row.dim(), self.input_dim, "feature width mismatch");
        let (h, c) = (self.hidden, self.n_classes);
        let w1 = &self.params[..self.input_dim * h];
        let b1 = &self.params[self.input_dim * h..self.input_dim * h + h];
        let off2 = self.input_dim * h + h;
        let w2 = &self.params[off2..off2 + h * c];
        let b2 = &self.params[off2 + h * c..];

        scratch.hidden.clear();
        scratch.hidden.resize(h, 0.0);
        // Input layer: ascending-nonzero accumulation, bias after —
        // exactly `Dense::forward_sparse` on a one-row CSR.
        for (i, v) in row.iter() {
            let wrow = &w1[i * h..(i + 1) * h];
            for (d, &w) in scratch.hidden.iter_mut().zip(wrow) {
                *d += v * w;
            }
        }
        for (d, &b) in scratch.hidden.iter_mut().zip(b1) {
            *d += b;
        }
        for d in scratch.hidden.iter_mut() {
            *d = d.max(0.0);
        }

        scratch.logits.clear();
        scratch.logits.resize(c, 0.0);
        // Output layer: ascending-k accumulation, bias after — the
        // blocked `matmul_add_bias` kernel's exact operand order.
        for (k, &a) in scratch.hidden.iter().enumerate() {
            let wrow = &w2[k * c..(k + 1) * c];
            for (d, &w) in scratch.logits.iter_mut().zip(wrow) {
                *d += a * w;
            }
        }
        for (d, &b) in scratch.logits.iter_mut().zip(b2) {
            *d += b;
        }
        &scratch.logits
    }

    /// Predicted class for one sparse row (argmax, first maximum wins —
    /// the [`Sequential::predict_sparse`] tie rule).
    pub fn predict_sparse(&self, row: &SparseVec, scratch: &mut InferScratch) -> u32 {
        let logits = self.logits_sparse(row, scratch);
        let mut best = 0usize;
        for j in 1..logits.len() {
            if logits[j] > logits[best] {
                best = j;
            }
        }
        best as u32
    }
}

/// Reusable per-worker buffers for [`FlatMlp`] inference. Buffers grow
/// to the network's shape on first use and are reused afterwards, so
/// steady-state inference performs zero heap allocations.
#[derive(Debug, Default)]
pub struct InferScratch {
    hidden: Vec<f32>,
    logits: Vec<f32>,
}

impl InferScratch {
    /// An empty scratch (buffers grow lazily).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows the buffers for a network so even the first request
    /// stays allocation-free.
    pub fn warm(&mut self, net: &FlatMlp) {
        self.hidden.reserve(net.hidden());
        self.logits.reserve(net.n_classes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::net::{train_sparse, TrainConfig};
    use sparsemat::CsrMatrix;

    fn toy_rows(n: usize, dim: usize) -> (CsrMatrix, Vec<u32>) {
        // Two sparse regimes: low indices hot vs high indices hot.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let cls = (i % 2) as u32;
            let base = if cls == 0 { 0 } else { dim / 2 };
            let v = 0.5 + (i as f32 * 0.37).sin().abs();
            rows.push(SparseVec::new(
                dim,
                vec![base as u32, (base + 2 + i % 3) as u32],
                vec![v, 1.0 - v * 0.25],
            ));
            y.push(cls);
        }
        (CsrMatrix::from_rows(rows.iter()), y)
    }

    #[test]
    fn flat_mlp_matches_sequential_bit_for_bit() {
        let dim = 24;
        let (x, y) = toy_rows(40, dim);
        let mut net = mlp(dim, 16, 2, 7);
        train_sparse(&mut net, &x, &y, &TrainConfig { epochs: 8, lr: 1e-2, ..Default::default() });

        let flat = FlatMlp::capture(&mut net, dim, 16, 2);
        let mut scratch = InferScratch::new();
        let want = net.predict_sparse(&x);
        for (i, &want_i) in want.iter().enumerate() {
            let row = x.row_vec(i);
            // Logits, not just argmax: the flat path must replay the
            // layer arithmetic exactly.
            let logits = flat.logits_sparse(&row, &mut scratch).to_vec();
            let dense = net
                .forward_sparse(&CsrMatrix::from_rows([row.clone()].iter()), false)
                .expect("mlp takes sparse input");
            assert_eq!(logits.as_slice(), dense.data(), "row {i} logits diverged");
            assert_eq!(flat.predict_sparse(&row, &mut scratch), want_i);
        }
    }

    #[test]
    fn roundtrips_through_net() {
        let dim = 12;
        let (x, y) = toy_rows(20, dim);
        let mut net = mlp(dim, 8, 2, 3);
        train_sparse(&mut net, &x, &y, &TrainConfig { epochs: 4, lr: 1e-2, ..Default::default() });
        let flat = FlatMlp::capture(&mut net, dim, 8, 2);
        let mut back = flat.to_net();
        assert_eq!(back.predict_sparse(&x), net.predict_sparse(&x));
        let again = FlatMlp::capture(&mut back, dim, 8, 2);
        assert_eq!(again, flat);
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(FlatMlp::from_params(0, 4, 2, vec![]).is_err());
        assert!(FlatMlp::from_params(4, 4, 2, vec![0.0; 5]).is_err());
        let ok = FlatMlp::from_params(4, 4, 2, vec![0.0; FlatMlp::param_len(4, 4, 2)]);
        assert!(ok.is_ok());
    }
}
