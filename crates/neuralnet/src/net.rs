//! Sequential networks and the mini-batch training loop.

use crate::arena::TrainArena;
use crate::loss::{cross_entropy_with_norm, weight_norm};
use crate::layer::Layer;
use crate::optim::Adam;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparsemat::CsrMatrix;
use std::time::Instant;
use tensorlite::Tensor;

/// A stack of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self { layers: self.layers.iter().map(|l| l.clone_box()).collect() }
    }
}

impl Sequential {
    /// Builds a network from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn n_params(&mut self) -> usize {
        let mut n = 0usize;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Class predictions (argmax of logits). Takes `&mut self` because
    /// layer forward passes reuse internal buffers.
    pub fn predict(&mut self, x: &Tensor) -> Vec<u32> {
        let logits = self.forward(x, false);
        let c = logits.shape()[1];
        (0..logits.shape()[0])
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for j in 1..c {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }

    /// Raw logits for a batch.
    pub fn logits(&mut self, x: &Tensor) -> Tensor {
        self.forward(x, false)
    }

    /// Class predictions over a sparse batch: the first layer consumes
    /// the CSR rows directly (sparse×dense matmul) when it can.
    pub fn predict_sparse(&mut self, x: &CsrMatrix) -> Vec<u32> {
        let logits = self.forward_sparse(x, false).expect("empty network");
        let c = logits.shape()[1];
        (0..logits.shape()[0])
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for j in 1..c {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }

    /// Appends every parameter tensor, in `visit_params` order, to a
    /// flat buffer (cleared first). The sharded trainer broadcasts this
    /// image to its lane replicas each step, and the model registry
    /// persists it as the network's on-disk weight image.
    pub fn export_params(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |p, _| out.extend_from_slice(p.data()));
    }

    /// Overwrites every parameter from a flat buffer written by
    /// [`export_params`](Self::export_params) on a structurally
    /// identical network.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `src` is not exactly the
    /// network's parameter count; release builds truncate/ignore.
    pub fn import_params(&mut self, src: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p, _| {
            let n = p.len();
            p.data_mut().copy_from_slice(&src[off..off + n]);
            off += n;
        });
        debug_assert_eq!(off, src.len(), "parameter count mismatch");
    }

    /// Appends every gradient tensor, in `visit_params` order, to a
    /// flat buffer (without clearing — lanes append one image per
    /// sample).
    pub(crate) fn export_grads(&mut self, out: &mut Vec<f32>) {
        self.visit_params(&mut |_, g| out.extend_from_slice(g.data()));
    }

    /// Adds a flat gradient image (visit order) onto the network's
    /// accumulated gradients.
    pub(crate) fn add_grads(&mut self, src: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |_, g| {
            let n = g.len();
            for (d, &s) in g.data_mut().iter_mut().zip(&src[off..off + n]) {
                *d += s;
            }
            off += n;
        });
        debug_assert_eq!(off, src.len(), "gradient count mismatch");
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return input.clone();
        };
        let mut cur = first.forward(input, train);
        for layer in rest {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Feeds CSR rows to the first layer's sparse path when it has one
    /// (densifying otherwise), then proceeds densely. The sparse×dense
    /// first matmul skips only exact-zero terms of the dense product, so
    /// the logits match the dense forward bit for bit.
    fn forward_sparse(&mut self, input: &CsrMatrix, train: bool) -> Option<Tensor> {
        let (first, rest) = self.layers.split_first_mut()?;
        let mut cur = match first.forward_sparse(input, train) {
            Some(t) => t,
            None => first.forward(&Tensor::from_rows(&input.to_dense_rows()), train),
        };
        for layer in rest {
            cur = layer.forward(&cur, train);
        }
        Some(cur)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let Some((last, rest)) = self.layers.split_last_mut() else {
            return grad_output.clone();
        };
        let mut grad = last.backward(grad_output);
        for layer in rest.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        for layer in &mut self.layers {
            layer.reset_scratch();
        }
    }

    fn per_sample_deterministic(&self) -> bool {
        self.layers.iter().all(|l| l.per_sample_deterministic())
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Optional per-class loss weights (the paper's weighted loss).
    pub class_weights: Option<Vec<f32>>,
    /// Number of parallel gradient lanes per mini-batch (dense path).
    /// `None` sizes lanes from [`exec::inner_threads_from_env`]. Either
    /// way the trained weights are bit-identical to the serial loop —
    /// per-sample gradients are reduced in global sample order — so
    /// this only trades memory for wall-clock.
    pub shards: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 50, batch_size: 32, lr: 1e-3, seed: 0, class_weights: None, shards: None }
    }
}

/// Per-epoch training record.
///
/// Equality compares only `epoch_losses`: wall-clock timings are
/// machine-dependent and excluded so determinism tests can compare
/// whole reports.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds spent in each epoch.
    pub epoch_seconds: Vec<f64>,
}

impl PartialEq for TrainReport {
    fn eq(&self, other: &Self) -> bool {
        self.epoch_losses == other.epoch_losses
    }
}

impl TrainReport {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }

    /// Total wall-clock seconds across all epochs.
    pub fn total_seconds(&self) -> f64 {
        self.epoch_seconds.iter().sum()
    }
}

/// Trains `net` on `(x, y)` with softmax cross-entropy and Adam.
///
/// `x` is `[N, ...]` with one leading sample axis; `y` holds one label
/// per sample.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the sample count, the batch size
/// is zero, or `x` is empty.
pub fn train(net: &mut Sequential, x: &Tensor, y: &[u32], config: &TrainConfig) -> TrainReport {
    train_with_optimizer(net, x, y, config, &mut Adam::new(config.lr))
}

/// [`train`] with an externally owned optimizer, so fine-tuning rounds
/// can share Adam state across rounds while changing data and learning
/// rate.
pub fn train_with_optimizer(
    net: &mut Sequential,
    x: &Tensor,
    y: &[u32],
    config: &TrainConfig,
    adam: &mut Adam,
) -> TrainReport {
    train_in_arena(net, x, y, config, adam, &mut TrainArena::new())
}

/// Largest `n_params × batch_size` (in floats) the sharded trainer will
/// stage per-sample gradients for: 2²⁴ floats = 64 MB. Beyond that the
/// staging traffic outweighs the parallel compute and the serial loop
/// is used instead.
const MAX_STAGE_FLOATS: usize = 1 << 24;

/// Splits `n` samples into `shards` contiguous ranges whose sizes
/// differ by at most one (longer shards first). A pure function of its
/// arguments — shard boundaries never depend on the machine's thread
/// count, only on how many worker threads pick the shards up.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The dense training loop against caller-owned optimizer *and* arena,
/// so repeated fits (fine-tuning rounds, threat-model sweeps) reuse
/// every scratch allocation.
///
/// When the network is [per-sample deterministic]
/// (crate::Layer::per_sample_deterministic), more than one lane is
/// requested (`config.shards`, default [`exec::inner_threads_from_env`])
/// and the staging buffers fit the [`MAX_STAGE_FLOATS`] cap, each
/// mini-batch fans out across `Executor` lanes: every lane replays its
/// contiguous shard of the batch one sample at a time into a per-sample
/// gradient stage, and the main thread folds the stages in global
/// sample order. Because every kernel accumulates ascending over the
/// sample axis from +0.0, that fold reproduces the serial batch
/// gradient bit for bit — the trained weights are identical at any
/// `ELEV_THREADS`/`ELEV_INNER_THREADS`/shard setting.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the sample count, the batch size
/// is zero, or `x` is empty.
pub fn train_in_arena(
    net: &mut Sequential,
    x: &Tensor,
    y: &[u32],
    config: &TrainConfig,
    adam: &mut Adam,
    arena: &mut TrainArena,
) -> TrainReport {
    let n = x.shape()[0];
    assert_eq!(n, y.len(), "one label per sample");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(n > 0, "cannot train on an empty dataset");
    adam.set_lr(config.lr);

    let inner = exec::Executor::inner_from_env();
    let lanes_req = config.shards.unwrap_or_else(|| inner.threads()).max(1);
    let n_params = net.n_params();
    let staged = lanes_req > 1
        && net.per_sample_deterministic()
        && n_params.saturating_mul(config.batch_size.min(n)) <= MAX_STAGE_FLOATS;
    let cw = config.class_weights.as_deref();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut epoch_seconds = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let t0 = Instant::now();
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            arena.fill_labels(chunk, y);
            let norm = weight_norm(arena.labels(), cw);
            let raw = if staged && chunk.len() > 1 {
                staged_step(net, x, chunk, cw, norm, lanes_req, inner, n_params, arena)
            } else {
                serial_step(net, x, chunk, cw, norm, arena)
            };
            adam.step(net);
            total += raw / norm;
            batches += 1;
        }
        epoch_losses.push(total / batches.max(1) as f32);
        epoch_seconds.push(t0.elapsed().as_secs_f64());
    }
    TrainReport { epoch_losses, epoch_seconds }
}

/// One serial mini-batch step; returns the unnormalized batch loss.
/// Identical arithmetic to the original training loop — the batch is
/// gathered (into the arena's reused buffer), forwarded whole, and the
/// backward pass accumulates gradients in place.
fn serial_step(
    net: &mut Sequential,
    x: &Tensor,
    chunk: &[usize],
    cw: Option<&[f32]>,
    norm: f32,
    arena: &mut TrainArena,
) -> f32 {
    let xb = arena.gather(x, chunk);
    net.zero_grad();
    let logits = net.forward(&xb, true);
    let (raw, grad) = cross_entropy_with_norm(&logits, arena.labels(), cw, norm);
    net.backward(&grad);
    arena.recycle(xb);
    raw
}

/// One sharded mini-batch step; returns the unnormalized batch loss
/// (folded in global sample order). Lanes replay disjoint contiguous
/// shards of the batch per sample against a broadcast weight image;
/// the main thread reduces the per-sample gradient stages ascending.
#[allow(clippy::too_many_arguments)]
fn staged_step(
    net: &mut Sequential,
    x: &Tensor,
    chunk: &[usize],
    cw: Option<&[f32]>,
    norm: f32,
    lanes_req: usize,
    inner: exec::Executor,
    n_params: usize,
    arena: &mut TrainArena,
) -> f32 {
    let n_lanes = lanes_req.min(chunk.len());
    arena.ensure_lanes(net, n_lanes);
    net.export_params(arena.weight_stage_mut());
    let ranges = shard_ranges(chunk.len(), n_lanes);

    {
        let (lanes, weights, labels) = arena.lane_view(n_lanes);
        let exec = exec::Executor::new(inner.threads().min(n_lanes));
        exec.map(&ranges, |j, range| {
            let mut lane = lanes[j].lock().expect("lane lock");
            lane.run(range.clone(), x, chunk, labels, cw, norm, weights, n_params);
        });
    }

    // Fixed-order reduction: lanes ascending, samples within each lane
    // ascending — i.e. global sample order, independent of which worker
    // thread ran which lane (or how many workers there were).
    let raw = arena.reduce(n_lanes, n_params);
    net.zero_grad();
    net.add_grads(arena.grad_accum());
    raw
}

/// [`train`] over CSR feature rows: mini-batches are gathered as CSR
/// row slices and the network's first layer runs the sparse×dense
/// matmul, so dense feature batches are never materialized.
///
/// Same shuffling RNG, loss, and optimizer schedule as [`train`]; the
/// sparse forward/backward are bit-compatible with the dense ones, so a
/// given seed yields the same report and the same trained weights.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the sample count, the batch size
/// is zero, `x` is empty, or the network has no layers.
pub fn train_sparse(
    net: &mut Sequential,
    x: &CsrMatrix,
    y: &[u32],
    config: &TrainConfig,
) -> TrainReport {
    train_sparse_with_optimizer(net, x, y, config, &mut Adam::new(config.lr))
}

/// [`train_sparse`] with an externally owned optimizer.
pub fn train_sparse_with_optimizer(
    net: &mut Sequential,
    x: &CsrMatrix,
    y: &[u32],
    config: &TrainConfig,
    adam: &mut Adam,
) -> TrainReport {
    train_sparse_in_arena(net, x, y, config, adam, &mut TrainArena::new())
}

/// The sparse training loop against a caller-owned optimizer and arena.
///
/// Stays sample-serial regardless of `config.shards`: the sparse
/// backward touches only the nonzero rows of `dW`, so staging a dense
/// per-sample gradient image would cost orders of magnitude more than
/// the compute it parallelizes. Serial execution is trivially
/// independent of thread count, which is what the determinism
/// invariant checks.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the sample count, the batch size
/// is zero, `x` is empty, or the network has no layers.
pub fn train_sparse_in_arena(
    net: &mut Sequential,
    x: &CsrMatrix,
    y: &[u32],
    config: &TrainConfig,
    adam: &mut Adam,
    arena: &mut TrainArena,
) -> TrainReport {
    let n = x.n_rows();
    assert_eq!(n, y.len(), "one label per sample");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(n > 0, "cannot train on an empty dataset");
    adam.set_lr(config.lr);
    let cw = config.class_weights.as_deref();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut epoch_seconds = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        let t0 = Instant::now();
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let xb = x.gather(chunk);
            arena.fill_labels(chunk, y);
            let norm = weight_norm(arena.labels(), cw);
            net.zero_grad();
            let logits = net.forward_sparse(&xb, true).expect("empty network");
            let (raw, grad) = cross_entropy_with_norm(&logits, arena.labels(), cw, norm);
            net.backward(&grad);
            adam.step(net);
            total += raw / norm;
            batches += 1;
        }
        epoch_losses.push(total / batches.max(1) as f32);
        epoch_seconds.push(t0.elapsed().as_secs_f64());
    }
    TrainReport { epoch_losses, epoch_seconds }
}

/// Gathers samples along the leading axis.
pub fn gather_samples(x: &Tensor, indices: &[usize]) -> Tensor {
    let n = x.shape()[0];
    let sample_len = x.len() / n;
    let mut data = Vec::with_capacity(indices.len() * sample_len);
    for &i in indices {
        assert!(i < n, "sample index out of range");
        data.extend_from_slice(&x.data()[i * sample_len..(i + 1) * sample_len]);
    }
    let mut shape = x.shape().to_vec();
    shape[0] = indices.len();
    Tensor::from_vec(data, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};

    fn two_blob_data(n_per: usize) -> (Tensor, Vec<u32>) {
        // Two well-separated Gaussian-ish blobs on a line.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            let jitter = (i as f32 * 0.37).sin() * 0.3;
            rows.push(vec![-2.0 + jitter, 1.0]);
            labels.push(0u32);
            rows.push(vec![2.0 - jitter, -1.0]);
            labels.push(1u32);
        }
        (Tensor::from_rows(&rows), labels)
    }

    #[test]
    fn trains_to_separate_blobs() {
        let (x, y) = two_blob_data(30);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, 1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, 2)),
        ]);
        let report =
            train(&mut net, &x, &y, &TrainConfig { epochs: 60, lr: 0.01, ..Default::default() });
        assert!(report.final_loss() < 0.1, "loss {}", report.final_loss());
        assert_eq!(net.predict(&x), y);
    }

    #[test]
    fn loss_decreases_over_training() {
        let (x, y) = two_blob_data(20);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 4, 5)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, 6)),
        ]);
        let report = train(&mut net, &x, &y, &TrainConfig { epochs: 30, ..Default::default() });
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = two_blob_data(10);
        let make = || {
            Sequential::new(vec![
                Box::new(Dense::new(2, 4, 7)) as Box<dyn Layer>,
                Box::new(Relu::new()),
                Box::new(Dense::new(4, 2, 8)),
            ])
        };
        let mut a = make();
        let mut b = make();
        let cfg = TrainConfig { epochs: 5, ..Default::default() };
        let ra = train(&mut a, &x, &y, &cfg);
        let rb = train(&mut b, &x, &y, &cfg);
        assert_eq!(ra, rb);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn gather_samples_keeps_shape_tail() {
        let x = Tensor::zeros(&[4, 3, 2, 2]);
        let g = gather_samples(&x, &[1, 3]);
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
    }

    #[test]
    fn n_params_counts_weights_and_biases() {
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(10, 5, 1)) as Box<dyn Layer>,
            Box::new(Dense::new(5, 3, 2)),
        ]);
        assert_eq!(net.n_params(), 10 * 5 + 5 + 5 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn rejects_label_mismatch() {
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 1)) as Box<dyn Layer>]);
        train(&mut net, &Tensor::zeros(&[3, 2]), &[0, 1], &TrainConfig::default());
    }

    /// Bit patterns of every parameter, for exact comparisons.
    fn weight_bits(net: &mut Sequential) -> Vec<u32> {
        let mut bits = Vec::new();
        net.visit_params(&mut |p, _| bits.extend(p.data().iter().map(|v| v.to_bits())));
        bits
    }

    #[test]
    fn shard_ranges_partition_contiguously_and_balanced() {
        for n in [0usize, 1, 2, 5, 31, 32, 33, 100] {
            for shards in [1usize, 2, 3, 7, 8, 64] {
                let ranges = shard_ranges(n, shards);
                // Contiguous cover of 0..n in order.
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} shards={shards}");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "n={n} shards={shards} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn shard_ranges_ignore_thread_environment() {
        // Boundaries are a pure function of (n, shards): recomputing
        // them under any executor fan-out yields the same answer as on
        // the caller's thread, so a machine's core count (or
        // ELEV_THREADS) can never move a sample between shards.
        let expect = shard_ranges(37, 5);
        for workers in [1usize, 2, 4, 8] {
            let inside =
                exec::Executor::new(workers).map(&[(); 3], |_, _| shard_ranges(37, 5));
            for got in inside {
                assert_eq!(got, expect, "workers={workers}");
            }
        }
    }

    /// The tentpole guarantee: the staged (sharded) trainer reproduces
    /// the serial trainer's weights *bit for bit*, at every lane count.
    #[test]
    fn staged_training_is_bit_identical_to_serial() {
        let (x, y) = two_blob_data(13); // 26 samples → uneven batches
        let make = || {
            Sequential::new(vec![
                Box::new(Dense::new(2, 8, 7)) as Box<dyn Layer>,
                Box::new(Relu::new()),
                Box::new(Dense::new(8, 2, 8)),
            ])
        };
        let base_cfg =
            TrainConfig { epochs: 4, batch_size: 8, lr: 0.01, shards: Some(1), ..Default::default() };
        let mut serial = make();
        let r0 = train(&mut serial, &x, &y, &base_cfg);
        let expect = weight_bits(&mut serial);
        for lanes in [2usize, 3, 8] {
            let mut net = make();
            let cfg = TrainConfig { shards: Some(lanes), ..base_cfg.clone() };
            let r = train(&mut net, &x, &y, &cfg);
            assert_eq!(r.epoch_losses, r0.epoch_losses, "lanes={lanes}");
            assert_eq!(weight_bits(&mut net), expect, "lanes={lanes}");
        }
    }

    /// Same guarantee for the conv stack (the paper CNN's layer types),
    /// including class weights in the loss.
    #[test]
    fn staged_cnn_training_matches_serial_bitwise() {
        use crate::models::paper_cnn;
        // 12 tiny images, 3 classes, unbalanced so weights matter.
        let n = 12usize;
        let x = Tensor::from_vec(
            (0..n * 3 * 32 * 32).map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.02).collect(),
            &[n, 3, 32, 32],
        );
        let y: Vec<u32> = (0..n as u32).map(|i| if i < 7 { 0 } else if i < 11 { 1 } else { 2 }).collect();
        let cw = crate::loss::inverse_frequency_weights(&y, 3);
        let base_cfg = TrainConfig {
            epochs: 2,
            batch_size: 5,
            lr: 2e-3,
            class_weights: Some(cw),
            shards: Some(1),
            ..Default::default()
        };
        let mut serial = paper_cnn(3, 0);
        let r0 = train(&mut serial, &x, &y, &base_cfg);
        let expect = weight_bits(&mut serial);
        for lanes in [2usize, 4] {
            let mut net = paper_cnn(3, 0);
            let cfg = TrainConfig { shards: Some(lanes), ..base_cfg.clone() };
            let r = train(&mut net, &x, &y, &cfg);
            assert_eq!(r.epoch_losses, r0.epoch_losses, "lanes={lanes}");
            assert_eq!(weight_bits(&mut net), expect, "lanes={lanes}");
        }
    }

    #[test]
    fn dropout_networks_fall_back_to_the_serial_path() {
        use crate::layer::Dropout;
        // A dropout net is not per-sample deterministic; the trainer
        // must keep the whole-batch path so the RNG stream is consumed
        // exactly as in the serial loop.
        let (x, y) = two_blob_data(8);
        let make = || {
            Sequential::new(vec![
                Box::new(Dense::new(2, 8, 3)) as Box<dyn Layer>,
                Box::new(Dropout::new(0.4, 9)),
                Box::new(Dense::new(8, 2, 4)),
            ])
        };
        assert!(!make().per_sample_deterministic());
        let mut a = make();
        let mut b = make();
        let ra = train(&mut a, &x, &y, &TrainConfig { epochs: 3, shards: Some(1), ..Default::default() });
        let rb = train(&mut b, &x, &y, &TrainConfig { epochs: 3, shards: Some(4), ..Default::default() });
        assert_eq!(ra, rb);
        assert_eq!(weight_bits(&mut a), weight_bits(&mut b));
    }

    #[test]
    fn arena_reuse_across_fits_changes_nothing() {
        use crate::arena::TrainArena;
        use crate::optim::Adam;
        let (x, y) = two_blob_data(10);
        let make = || {
            Sequential::new(vec![
                Box::new(Dense::new(2, 4, 5)) as Box<dyn Layer>,
                Box::new(Relu::new()),
                Box::new(Dense::new(4, 2, 6)),
            ])
        };
        let cfg = TrainConfig { epochs: 3, batch_size: 4, shards: Some(2), ..Default::default() };
        // Fresh arena per fit vs one arena across two fits.
        let mut n1 = make();
        train_with_optimizer(&mut n1, &x, &y, &cfg, &mut Adam::new(cfg.lr));
        let expect = weight_bits(&mut n1);
        let mut arena = TrainArena::new();
        let mut n2 = make();
        train_in_arena(&mut n2, &x, &y, &cfg, &mut Adam::new(cfg.lr), &mut arena);
        assert_eq!(weight_bits(&mut n2), expect);
        let mut n3 = make();
        train_in_arena(&mut n3, &x, &y, &cfg, &mut Adam::new(cfg.lr), &mut arena);
        assert_eq!(weight_bits(&mut n3), expect);
    }

    #[test]
    fn train_report_timing_is_recorded_but_not_compared() {
        let (x, y) = two_blob_data(5);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 1)) as Box<dyn Layer>]);
        let r = train(&mut net, &x, &y, &TrainConfig { epochs: 3, ..Default::default() });
        assert_eq!(r.epoch_seconds.len(), 3);
        assert!(r.total_seconds() >= 0.0);
        let mut other = r.clone();
        other.epoch_seconds = vec![999.0; 3];
        assert_eq!(r, other, "equality ignores wall-clock");
    }
}
