//! Sequential networks and the mini-batch training loop.

use crate::layer::Layer;
use crate::loss::cross_entropy;
use crate::optim::Adam;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sparsemat::CsrMatrix;
use tensorlite::Tensor;

/// A stack of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Builds a network from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn n_params(&mut self) -> usize {
        let mut n = 0usize;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Class predictions (argmax of logits). Takes `&mut self` because
    /// layer forward passes reuse internal buffers.
    pub fn predict(&mut self, x: &Tensor) -> Vec<u32> {
        let logits = self.forward(x, false);
        let c = logits.shape()[1];
        (0..logits.shape()[0])
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for j in 1..c {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }

    /// Raw logits for a batch.
    pub fn logits(&mut self, x: &Tensor) -> Tensor {
        self.forward(x, false)
    }

    /// Class predictions over a sparse batch: the first layer consumes
    /// the CSR rows directly (sparse×dense matmul) when it can.
    pub fn predict_sparse(&mut self, x: &CsrMatrix) -> Vec<u32> {
        let logits = self.forward_sparse(x, false).expect("empty network");
        let c = logits.shape()[1];
        (0..logits.shape()[0])
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for j in 1..c {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    /// Feeds CSR rows to the first layer's sparse path when it has one
    /// (densifying otherwise), then proceeds densely. The sparse×dense
    /// first matmul skips only exact-zero terms of the dense product, so
    /// the logits match the dense forward bit for bit.
    fn forward_sparse(&mut self, input: &CsrMatrix, train: bool) -> Option<Tensor> {
        let (first, rest) = self.layers.split_first_mut()?;
        let mut cur = match first.forward_sparse(input, train) {
            Some(t) => t,
            None => first.forward(&Tensor::from_rows(&input.to_dense_rows()), train),
        };
        for layer in rest {
            cur = layer.forward(&cur, train);
        }
        Some(cur)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Optional per-class loss weights (the paper's weighted loss).
    pub class_weights: Option<Vec<f32>>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 50, batch_size: 32, lr: 1e-3, seed: 0, class_weights: None }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }
}

/// Trains `net` on `(x, y)` with softmax cross-entropy and Adam.
///
/// `x` is `[N, ...]` with one leading sample axis; `y` holds one label
/// per sample.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the sample count, the batch size
/// is zero, or `x` is empty.
pub fn train(net: &mut Sequential, x: &Tensor, y: &[u32], config: &TrainConfig) -> TrainReport {
    train_with_optimizer(net, x, y, config, &mut Adam::new(config.lr))
}

/// [`train`] with an externally owned optimizer, so fine-tuning rounds
/// can share Adam state across rounds while changing data and learning
/// rate.
pub fn train_with_optimizer(
    net: &mut Sequential,
    x: &Tensor,
    y: &[u32],
    config: &TrainConfig,
    adam: &mut Adam,
) -> TrainReport {
    let n = x.shape()[0];
    assert_eq!(n, y.len(), "one label per sample");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(n > 0, "cannot train on an empty dataset");
    adam.set_lr(config.lr);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let xb = gather_samples(x, chunk);
            let yb: Vec<u32> = chunk.iter().map(|&i| y[i]).collect();
            net.zero_grad();
            let logits = net.forward(&xb, true);
            let (loss, grad) =
                cross_entropy(&logits, &yb, config.class_weights.as_deref());
            net.backward(&grad);
            adam.step(net);
            total += loss;
            batches += 1;
        }
        epoch_losses.push(total / batches.max(1) as f32);
    }
    TrainReport { epoch_losses }
}

/// [`train`] over CSR feature rows: mini-batches are gathered as CSR
/// row slices and the network's first layer runs the sparse×dense
/// matmul, so dense feature batches are never materialized.
///
/// Same shuffling RNG, loss, and optimizer schedule as [`train`]; the
/// sparse forward/backward are bit-compatible with the dense ones, so a
/// given seed yields the same report and the same trained weights.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the sample count, the batch size
/// is zero, `x` is empty, or the network has no layers.
pub fn train_sparse(
    net: &mut Sequential,
    x: &CsrMatrix,
    y: &[u32],
    config: &TrainConfig,
) -> TrainReport {
    train_sparse_with_optimizer(net, x, y, config, &mut Adam::new(config.lr))
}

/// [`train_sparse`] with an externally owned optimizer.
pub fn train_sparse_with_optimizer(
    net: &mut Sequential,
    x: &CsrMatrix,
    y: &[u32],
    config: &TrainConfig,
    adam: &mut Adam,
) -> TrainReport {
    let n = x.n_rows();
    assert_eq!(n, y.len(), "one label per sample");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(n > 0, "cannot train on an empty dataset");
    adam.set_lr(config.lr);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let xb = x.gather(chunk);
            let yb: Vec<u32> = chunk.iter().map(|&i| y[i]).collect();
            net.zero_grad();
            let logits = net.forward_sparse(&xb, true).expect("empty network");
            let (loss, grad) =
                cross_entropy(&logits, &yb, config.class_weights.as_deref());
            net.backward(&grad);
            adam.step(net);
            total += loss;
            batches += 1;
        }
        epoch_losses.push(total / batches.max(1) as f32);
    }
    TrainReport { epoch_losses }
}

/// Gathers samples along the leading axis.
pub fn gather_samples(x: &Tensor, indices: &[usize]) -> Tensor {
    let n = x.shape()[0];
    let sample_len = x.len() / n;
    let mut data = Vec::with_capacity(indices.len() * sample_len);
    for &i in indices {
        assert!(i < n, "sample index out of range");
        data.extend_from_slice(&x.data()[i * sample_len..(i + 1) * sample_len]);
    }
    let mut shape = x.shape().to_vec();
    shape[0] = indices.len();
    Tensor::from_vec(data, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};

    fn two_blob_data(n_per: usize) -> (Tensor, Vec<u32>) {
        // Two well-separated Gaussian-ish blobs on a line.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per {
            let jitter = (i as f32 * 0.37).sin() * 0.3;
            rows.push(vec![-2.0 + jitter, 1.0]);
            labels.push(0u32);
            rows.push(vec![2.0 - jitter, -1.0]);
            labels.push(1u32);
        }
        (Tensor::from_rows(&rows), labels)
    }

    #[test]
    fn trains_to_separate_blobs() {
        let (x, y) = two_blob_data(30);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, 1)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 2, 2)),
        ]);
        let report =
            train(&mut net, &x, &y, &TrainConfig { epochs: 60, lr: 0.01, ..Default::default() });
        assert!(report.final_loss() < 0.1, "loss {}", report.final_loss());
        assert_eq!(net.predict(&x), y);
    }

    #[test]
    fn loss_decreases_over_training() {
        let (x, y) = two_blob_data(20);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 4, 5)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, 6)),
        ]);
        let report = train(&mut net, &x, &y, &TrainConfig { epochs: 30, ..Default::default() });
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = two_blob_data(10);
        let make = || {
            Sequential::new(vec![
                Box::new(Dense::new(2, 4, 7)) as Box<dyn Layer>,
                Box::new(Relu::new()),
                Box::new(Dense::new(4, 2, 8)),
            ])
        };
        let mut a = make();
        let mut b = make();
        let cfg = TrainConfig { epochs: 5, ..Default::default() };
        let ra = train(&mut a, &x, &y, &cfg);
        let rb = train(&mut b, &x, &y, &cfg);
        assert_eq!(ra, rb);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn gather_samples_keeps_shape_tail() {
        let x = Tensor::zeros(&[4, 3, 2, 2]);
        let g = gather_samples(&x, &[1, 3]);
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
    }

    #[test]
    fn n_params_counts_weights_and_biases() {
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(10, 5, 1)) as Box<dyn Layer>,
            Box::new(Dense::new(5, 3, 2)),
        ]);
        assert_eq!(net.n_params(), 10 * 5 + 5 + 5 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn rejects_label_mismatch() {
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, 1)) as Box<dyn Layer>]);
        train(&mut net, &Tensor::zeros(&[3, 2]), &[0, 1], &TrainConfig::default());
    }
}
