//! Softmax cross-entropy, optionally class-weighted.

use tensorlite::Tensor;

/// Numerically stable softmax over the last axis of `[N, C]` logits.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "softmax expects [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    for r in 0..n {
        let row = &mut out.data_mut()[r * c..(r + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Cross-entropy loss with optional per-class weights.
///
/// With weights `w`, the loss is `Σᵢ w[yᵢ]·(−log pᵢ[yᵢ]) / Σᵢ w[yᵢ]`
/// (PyTorch's `CrossEntropyLoss(weight=...)` semantics); without
/// weights it is the plain batch mean. The paper assigns "a class
/// weight that is inversely proportional to the sample size of the
/// class" to keep minority classes from washing out.
///
/// Returns `(loss, grad_logits)`.
///
/// # Panics
///
/// Panics if shapes disagree, a label is out of range, or a weight
/// vector of the wrong length is supplied.
pub fn cross_entropy(
    logits: &Tensor,
    labels: &[u32],
    class_weights: Option<&[f32]>,
) -> (f32, Tensor) {
    let norm = weight_norm(labels, class_weights);
    let (raw, grad) = cross_entropy_with_norm(logits, labels, class_weights, norm);
    (raw / norm, grad)
}

/// The batch normalizer `Σᵢ w[yᵢ]` (or the sample count without
/// weights), folded in sample order; clamped to 1 when all weights are
/// zero. Exposed so the sharded trainer can compute one batch-wide norm
/// and then score each sample chunk independently with
/// [`cross_entropy_with_norm`].
pub fn weight_norm(labels: &[u32], class_weights: Option<&[f32]>) -> f32 {
    let mut weight_sum = 0.0f32;
    for &label in labels {
        weight_sum += class_weights.map_or(1.0, |cw| cw[label as usize]);
    }
    if weight_sum > 0.0 {
        weight_sum
    } else {
        1.0
    }
}

/// [`cross_entropy`] against an externally supplied normalizer.
///
/// Returns `(raw_loss, grad_logits)` where `raw_loss` is the
/// *unnormalized* `Σᵢ w[yᵢ]·(−log pᵢ[yᵢ])` over these rows (the caller
/// divides by `norm` once — per-chunk division would change the
/// float-op sequence) while `grad_logits` is already scaled by
/// `1/norm`. Every per-row operation is row-local, so evaluating a
/// batch one row at a time produces bit-identical gradient rows and
/// raw-loss terms to evaluating it whole.
///
/// # Panics
///
/// Panics if shapes disagree, a label is out of range, or a weight
/// vector of the wrong length is supplied.
pub fn cross_entropy_with_norm(
    logits: &Tensor,
    labels: &[u32],
    class_weights: Option<&[f32]>,
    norm: f32,
) -> (f32, Tensor) {
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "one label per row");
    if let Some(w) = class_weights {
        assert_eq!(w.len(), c, "one weight per class");
    }
    let probs = softmax(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!((label as usize) < c, "label {label} out of range for {c} classes");
        let w = class_weights.map_or(1.0, |cw| cw[label as usize]);
        let p = probs.data()[r * c + label as usize].max(1e-12);
        loss += -p.ln() * w;
        // grad row = w * (softmax - onehot); normalized below.
        let row = &mut grad.data_mut()[r * c..(r + 1) * c];
        row[label as usize] -= 1.0;
        for v in row.iter_mut() {
            *v *= w;
        }
    }
    grad.scale(1.0 / norm);
    (loss, grad)
}

/// Inverse-frequency class weights: `w_c = N / (C · count_c)`.
///
/// Classes absent from `labels` get weight 0 (they can never appear in
/// the loss anyway).
pub fn inverse_frequency_weights(labels: &[u32], n_classes: usize) -> Vec<f32> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l as usize] += 1;
    }
    let n = labels.len() as f32;
    counts
        .iter()
        .map(|&cnt| {
            if cnt == 0 {
                0.0
            } else {
                n / (n_classes as f32 * cnt as f32)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]));
        let b = softmax(&Tensor::from_rows(&[vec![101.0, 102.0, 103.0]]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 3]);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 0], None);
        assert!((loss - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_tiny_loss() {
        let logits = Tensor::from_rows(&[vec![20.0, 0.0], vec![0.0, 20.0]]);
        let (loss, _) = cross_entropy(&logits, &[0, 1], None);
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_rows(&[vec![0.3, -0.2, 0.9], vec![1.5, 0.1, -0.4]]);
        let labels = [2u32, 0];
        let weights = [0.5f32, 1.0, 2.0];
        let (_, grad) = cross_entropy(&logits, &labels, Some(&weights));
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = cross_entropy(&lp, &labels, Some(&weights));
            let (fm, _) = cross_entropy(&lm, &labels, Some(&weights));
            let num = (fp - fm) / (2.0 * eps);
            assert!((grad.data()[i] - num).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn weights_emphasize_minority_class() {
        // Same wrong prediction on both rows; weighting class 1 higher
        // makes the class-1 mistake dominate the loss.
        let logits = Tensor::from_rows(&[vec![2.0, 0.0], vec![2.0, 0.0]]);
        let (unweighted, _) = cross_entropy(&logits, &[1, 1], None);
        let (weighted, _) = cross_entropy(&logits, &[1, 1], Some(&[1.0, 10.0]));
        // Normalized by weight sum, per-sample loss is identical here;
        // check instead mixed batches:
        let logits2 = Tensor::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
        // Row 0: correct class 0. Row 1: correct class 1. Both confident.
        let (l_a, _) = cross_entropy(&logits2, &[0, 0], Some(&[1.0, 10.0]));
        let (l_b, _) = cross_entropy(&logits2, &[1, 1], Some(&[1.0, 10.0]));
        // Class-1 labels weigh 10x but normalization keeps scale; the
        // *gradient* allocation is what shifts:
        let (_, g) = cross_entropy(&logits2, &[0, 1], Some(&[1.0, 10.0]));
        let row0_mag: f32 = g.row(0).iter().map(|v| v.abs()).sum();
        let row1_mag: f32 = g.row(1).iter().map(|v| v.abs()).sum();
        assert!(row1_mag > row0_mag * 5.0);
        let _ = (unweighted, weighted, l_a, l_b);
    }

    #[test]
    fn inverse_frequency_weights_balance() {
        let labels = [0u32, 0, 0, 0, 1];
        let w = inverse_frequency_weights(&labels, 2);
        // 4·w0 == 1·w1: each class contributes equally in aggregate.
        assert!((4.0 * w[0] - w[1]).abs() < 1e-6);
    }

    #[test]
    fn absent_classes_get_zero_weight() {
        let w = inverse_frequency_weights(&[0u32, 0], 3);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        cross_entropy(&Tensor::zeros(&[1, 2]), &[5], None);
    }
}
