//! From-scratch neural networks for the elevation-privacy attack.
//!
//! Implements exactly the deep models the paper uses, with manual
//! backpropagation over [`tensorlite::Tensor`]s:
//!
//! - [`models::mlp`]: the paper's MLP — one hidden layer of 100 units
//!   (scikit-learn's `MLPClassifier` default, which the paper describes
//!   as "100 hidden layers") trained with Adam,
//! - [`models::paper_cnn`]: the Fig. 7 CNN — two 5×5 conv layers
//!   (stride 1, padding 2) each followed by ReLU and 2×2 max-pooling,
//!   reducing 32×32 to 8×8, then a fully-connected head; cross-entropy
//!   loss with the Adam optimizer,
//! - [`loss`]: softmax cross-entropy, optionally **class-weighted**
//!   (the paper's "weighted loss function" for unbalanced datasets),
//! - [`finetune`]: the round-based fine-tuning scheme of Figs. 10–11.
//!
//! Every layer's backward pass is verified against finite differences
//! in the test suite.
//!
//! # Examples
//!
//! ```
//! use neuralnet::{models, train, TrainConfig};
//! use tensorlite::Tensor;
//!
//! // Learn XOR with a tiny MLP.
//! let x = Tensor::from_rows(&[
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ]);
//! let y = vec![0u32, 1, 1, 0];
//! let mut net = models::mlp(2, 16, 2, 7);
//! train(&mut net, &x, &y, &TrainConfig { epochs: 300, lr: 0.01, ..Default::default() });
//! assert_eq!(net.predict(&x), y);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod conv;
pub mod finetune;
pub mod infer;
pub mod layer;
pub mod loss;
pub mod models;
pub mod optim;
pub mod snapshot;

mod net;

pub use arena::TrainArena;
pub use infer::{FlatMlp, InferScratch};
pub use layer::{Dense, Dropout, Flatten, Layer, Relu};
pub use net::{
    gather_samples, shard_ranges, train, train_in_arena, train_sparse, train_sparse_in_arena,
    train_sparse_with_optimizer, train_with_optimizer, Sequential, TrainConfig, TrainReport,
};
pub use optim::{Adam, Sgd};
pub use snapshot::{ArchSpec, NetSnapshot};
