//! Convolution and pooling layers (the Fig. 7 building blocks).

use crate::layer::Layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensorlite::Tensor;

/// 2-D convolution over `[N, C, H, W]` inputs.
///
/// Forward/backward stage each sample through a persistent im2col
/// column buffer (`col`) and a persistent `[OC, C·K·K]` weight view
/// (`wmat`), so steady-state training allocates only the layer's
/// output tensors — not the ~300 KB of per-batch scratch the naive
/// path rebuilt every call.
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: Tensor, // [OC, C, K, K]
    b: Tensor, // [OC]
    dw: Tensor,
    db: Tensor,
    stride: usize,
    padding: usize,
    input: Option<Tensor>,
    /// Reused im2col column matrix `[C·K·K, OH·OW]`.
    col: Option<Tensor>,
    /// Reused `[OC, C·K·K]` copy of `w` (refreshed every forward).
    wmat: Option<Tensor>,
    /// Reused per-sample grad-output view `[OC, OH·OW]` (backward).
    go: Option<Tensor>,
    /// Reused dW accumulator `[OC, C·K·K]` (backward).
    dw_acc: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics on zero channels/kernel or zero stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "zero conv dims");
        assert!(stride > 0, "stride must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let w = Tensor::from_vec(
            (0..out_channels * in_channels * kernel * kernel)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            &[out_channels, in_channels, kernel, kernel],
        );
        Self {
            w,
            b: Tensor::zeros(&[out_channels]),
            dw: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            db: Tensor::zeros(&[out_channels]),
            stride,
            padding,
            input: None,
            col: None,
            wmat: None,
            go: None,
            dw_acc: None,
        }
    }

    fn dims(&self) -> (usize, usize, usize) {
        let s = self.w.shape();
        (s[0], s[1], s[2]) // (oc, c, k)
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let (_, _, k) = self.dims();
        (
            (h + 2 * self.padding - k) / self.stride + 1,
            (w + 2 * self.padding - k) / self.stride + 1,
        )
    }
}

/// Hands out `slot`'s tensor resized/reshaped to `shape`, reusing its
/// allocation when the element count already matches.
fn take_scratch(slot: &mut Option<Tensor>, shape: &[usize]) -> Tensor {
    let want: usize = shape.iter().product();
    match slot.take() {
        Some(t) if t.len() == want => t.reshaped(shape),
        _ => Tensor::zeros(shape),
    }
}

/// Fills `col` with the im2col matrix `[C·K·K, OH·OW]` for one sample.
/// Zero-fills first, exactly like building the matrix from
/// `Tensor::zeros`, so padded positions stay 0.0.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    col: &mut Tensor,
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
) {
    let data = col.data_mut();
    data.fill(0.0);
    let (s, p) = (stride as isize, padding as isize);
    let mut row = 0usize;
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let base = row * oh * ow;
                for oy in 0..oh {
                    let iy = oy as isize * s - p + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = ox as isize * s - p + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        data[base + oy * ow + ox] = x[src_row + ix as usize];
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatter-adds a column matrix back into an image (inverse of im2col).
#[allow(clippy::too_many_arguments)]
fn col2im(
    col: &Tensor,
    dx: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
) {
    let data = col.data();
    let (s, p) = (stride as isize, padding as isize);
    let mut row = 0usize;
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let base = row * oh * ow;
                for oy in 0..oh {
                    let iy = oy as isize * s - p + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = ox as isize * s - p + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dx[dst_row + ix as usize] += data[base + oy * ow + ox];
                    }
                }
                row += 1;
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (oc, c, k) = self.dims();
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "conv input must be [N, C, H, W]");
        assert_eq!(shape[1], c, "conv input channels");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.out_size(h, w);
        // Weight as [OC, C·K·K]; per sample: W_mat × col = [OC, OH·OW].
        // The weights change every optimizer step, so the flat view is
        // refreshed each call — into the same allocation.
        let mut w_mat = take_scratch(&mut self.wmat, &[oc, c * k * k]);
        w_mat.data_mut().copy_from_slice(self.w.data());
        let mut col = take_scratch(&mut self.col, &[c * k * k, oh * ow]);
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let sample_in = c * h * w;
        let sample_out = oc * oh * ow;
        for ni in 0..n {
            im2col_into(
                &mut col,
                &input.data()[ni * sample_in..(ni + 1) * sample_in],
                c, h, w, k, self.stride, self.padding, oh, ow,
            );
            let y = w_mat.matmul(&col); // [OC, OH·OW]
            let dst = &mut out.data_mut()[ni * sample_out..(ni + 1) * sample_out];
            for oci in 0..oc {
                let bias = self.b.data()[oci];
                let src = &y.data()[oci * oh * ow..(oci + 1) * oh * ow];
                let d = &mut dst[oci * oh * ow..(oci + 1) * oh * ow];
                for (o, &v) in d.iter_mut().zip(src) {
                    *o = v + bias;
                }
            }
        }
        self.wmat = Some(w_mat);
        self.col = Some(col);
        if train {
            crate::layer::cache_assign(&mut self.input, input);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("backward before forward(train=true)");
        let (oc, c, k) = self.dims();
        let (n, h, w) = (input.shape()[0], input.shape()[2], input.shape()[3]);
        let (oh, ow) = (grad_output.shape()[2], grad_output.shape()[3]);
        // `wmat` was refreshed by the forward pass of this step and the
        // weights have not changed since.
        let w_mat = self.wmat.as_ref().expect("backward before forward(train=true)");
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let sample_in = c * h * w;
        let sample_out = oc * oh * ow;
        let mut col = take_scratch(&mut self.col, &[c * k * k, oh * ow]);
        let mut go = take_scratch(&mut self.go, &[oc, oh * ow]);
        let mut dw_acc = take_scratch(&mut self.dw_acc, &[oc, c * k * k]);
        dw_acc.data_mut().fill(0.0);
        for ni in 0..n {
            im2col_into(
                &mut col,
                &input.data()[ni * sample_in..(ni + 1) * sample_in],
                c, h, w, k, self.stride, self.padding, oh, ow,
            );
            go.data_mut()
                .copy_from_slice(&grad_output.data()[ni * sample_out..(ni + 1) * sample_out]);
            // dW += dY × colᵀ ; db += row sums of dY ; dcol = Wᵀ × dY.
            // Both transposes are fused into the kernels — no [C·K²,
            // OH·OW] or [C·K², OC] copies per sample.
            dw_acc.add_assign(&go.matmul_bt(&col));
            for oci in 0..oc {
                self.db.data_mut()[oci] +=
                    go.data()[oci * oh * ow..(oci + 1) * oh * ow].iter().sum::<f32>();
            }
            let dcol = w_mat.matmul_at(&go);
            col2im(
                &dcol,
                &mut dx.data_mut()[ni * sample_in..(ni + 1) * sample_in],
                c, h, w, k, self.stride, self.padding, oh, ow,
            );
        }
        for (d, &s) in self.dw.data_mut().iter_mut().zip(dw_acc.data()) {
            *d += s;
        }
        self.col = Some(col);
        self.go = Some(go);
        self.dw_acc = Some(dw_acc);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        self.input = None;
        self.col = None;
        self.wmat = None;
        self.go = None;
        self.dw_acc = None;
    }
}

/// 2-D max pooling over `[N, C, H, W]`.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    /// Argmax input index per output element.
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// A pooling layer (the paper uses kernel 2, stride 2).
    ///
    /// # Panics
    ///
    /// Panics on zero kernel/stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "pool dims must be positive");
        Self { kernel, stride, argmax: None, input_shape: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "pool input must be [N, C, H, W]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = (h - self.kernel) / self.stride + 1;
        let ow = (w - self.kernel) / self.stride + 1;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let x = input.data();
        let out_data = out.data_mut();
        // Argmax indices are only needed for backward; inference skips
        // recording them. The buffer persists across training batches.
        let mut argmax = if train {
            let mut a = self.argmax.take().unwrap_or_default();
            a.clear();
            a.resize(n * c * oh * ow, 0);
            Some(a)
        } else {
            None
        };
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let xi = ((ni * c + ci) * h + iy) * w + ix;
                                if x[xi] > best {
                                    best = x[xi];
                                    best_i = xi;
                                }
                            }
                        }
                        let oi = ((ni * c + ci) * oh + oy) * ow + ox;
                        out_data[oi] = best;
                        if let Some(a) = argmax.as_mut() {
                            a[oi] = best_i;
                        }
                    }
                }
            }
        }
        if train {
            self.argmax = argmax;
            self.input_shape = Some(shape.to_vec());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward(train=true)");
        let shape = self.input_shape.as_ref().expect("backward before forward(train=true)");
        let mut dx = Tensor::zeros(shape);
        let dxd = dx.data_mut();
        for (oi, &xi) in argmax.iter().enumerate() {
            dxd[xi] += grad_output.data()[oi];
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn reset_scratch(&mut self) {
        self.argmax = None;
        self.input_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_size_matches_fig7() {
        // k=5, s=1, p=2 preserves 32×32.
        let conv = Conv2d::new(3, 8, 5, 1, 2, 1);
        assert_eq!(conv.out_size(32, 32), (32, 32));
    }

    #[test]
    fn pool_halves_dimensions() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::zeros(&[1, 2, 32, 32]);
        assert_eq!(pool.forward(&x, false).shape(), &[1, 2, 16, 16]);
    }

    #[test]
    fn conv_identity_kernel_is_identity() {
        // 1×1 kernel with weight 1, no padding: output == input.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 1);
        conv.w = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        conv.b = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        assert_eq!(conv.forward(&x, false).data(), x.data());
    }

    #[test]
    fn conv_known_sum_kernel() {
        // 2×2 all-ones kernel, stride 1, no padding on a 3×3 ramp.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 1);
        conv.w = Tensor::full(&[1, 1, 2, 2], 1.0);
        conv.b = Tensor::zeros(&[1]);
        let x = Tensor::from_vec((1..=9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn maxpool_picks_maxima_and_routes_gradient() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                0.1, 0.2, 0.5, 0.6, //
                0.3, 0.9, 0.7, 0.4,
            ],
            &[1, 1, 4, 4],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 8.0, 0.9, 0.7]);
        let g = pool.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        // Gradients land exactly on the argmax positions.
        assert_eq!(g.data()[5], 1.0); // value 4.0
        assert_eq!(g.data()[7], 2.0); // value 8.0
        assert_eq!(g.data()[13], 3.0); // value 0.9
        assert_eq!(g.data()[14], 4.0); // value 0.7
        assert_eq!(g.sum(), 10.0);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 5);
        let x = Tensor::from_vec(
            (0..2 * 2 * 4 * 4).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.1).collect(),
            &[2, 2, 4, 4],
        );
        let y = conv.forward(&x, true);
        let ones = Tensor::full(y.shape(), 1.0);
        let dx = conv.backward(&ones);
        let eps = 1e-2f32;

        // Weights: sample a few indices.
        for &i in &[0usize, 7, 16, 35] {
            let mut cp = conv.clone();
            cp.w.data_mut()[i] += eps;
            let mut cm = conv.clone();
            cm.w.data_mut()[i] -= eps;
            let num = (cp.forward(&x, false).sum() - cm.forward(&x, false).sum()) / (2.0 * eps);
            let ana = conv.dw.data()[i];
            assert!((ana - num).abs() < 0.05, "w[{i}]: analytic {ana} vs numeric {num}");
        }
        // Inputs: sample a few indices.
        for &i in &[0usize, 13, 31, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut c2 = conv.clone();
            let num = (c2.forward(&xp, false).sum() - c2.forward(&xm, false).sum()) / (2.0 * eps);
            assert!((dx.data()[i] - num).abs() < 0.05);
        }
        // Bias gradient: dL/db = number of output positions.
        let per_channel = 2.0 * 4.0 * 4.0; // n=2, 4x4 outputs
        for &db in conv.db.data() {
            assert!((db - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn conv_rejects_zero_stride() {
        Conv2d::new(1, 1, 3, 0, 1, 1);
    }
}
