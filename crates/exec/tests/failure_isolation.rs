//! Executor behaviour under task failure: a panicking task must not
//! deadlock the pool, poison its queues, or disturb any other task's
//! result — and the full outcome vector must be deterministic across
//! thread counts.

use exec::{Executor, TaskPanic};

/// A workload where every third task panics with an index-derived
/// message and the rest compute a value.
fn mixed_workload(exec: &Executor, n: usize) -> Vec<Result<u64, TaskPanic>> {
    let items: Vec<u64> = (0..n as u64).collect();
    exec.try_map(&items, |i, &x| {
        if i % 3 == 2 {
            panic!("task {i} refused item {x}");
        }
        x.wrapping_mul(0x9E3779B97F4A7C15) ^ i as u64
    })
}

#[test]
fn panics_are_isolated_and_results_complete() {
    let out = mixed_workload(&Executor::new(4), 60);
    assert_eq!(out.len(), 60);
    for (i, slot) in out.iter().enumerate() {
        if i % 3 == 2 {
            let err = slot.as_ref().unwrap_err();
            assert_eq!(err.index, i);
            assert_eq!(err.message, format!("task {i} refused item {i}"));
        } else {
            assert!(slot.is_ok(), "task {i} should have succeeded");
        }
    }
}

#[test]
fn failure_pattern_is_identical_across_thread_counts() {
    let base = mixed_workload(&Executor::new(1), 97);
    for threads in [2, 3, 4, 8] {
        assert_eq!(mixed_workload(&Executor::new(threads), 97), base, "threads={threads}");
    }
}

#[test]
fn pool_is_reusable_after_failures() {
    let exec = Executor::new(4);
    // A batch where *every* task panics must still return (no deadlock).
    let all_fail = exec.try_map(&[1u8, 2, 3, 4, 5, 6, 7, 8], |_, _| -> u8 { panic!("boom") });
    assert!(all_fail.iter().all(Result::is_err));
    // The same executor value still runs clean batches afterwards — no
    // poisoned state survives (queues are per-call, and workers never
    // unwind while holding a lock).
    let items: Vec<u32> = (0..50).collect();
    let clean = exec.map(&items, |i, &x| x + i as u32);
    assert_eq!(clean, (0..50).map(|i| i * 2).collect::<Vec<u32>>());
    let retry = exec.try_map(&items, |_, &x| x);
    assert!(retry.iter().all(Result::is_ok));
}

#[test]
fn nested_try_map_composes_under_failure() {
    let exec = Executor::new(3);
    let rows: Vec<usize> = (0..6).collect();
    let out = exec.try_map(&rows, |_, &row| {
        let cols: Vec<usize> = (0..8).collect();
        let inner = exec.try_map(&cols, |_, &col| {
            if col == row {
                panic!("diagonal {row}");
            }
            row * 10 + col
        });
        inner.into_iter().filter_map(Result::ok).sum::<usize>()
    });
    for (row, slot) in out.iter().enumerate() {
        let expect: usize = (0..8).filter(|&c| c != row).map(|c| row * 10 + c).sum();
        assert_eq!(slot.as_ref().copied().unwrap(), expect);
    }
}

#[test]
fn non_string_panic_payloads_are_reported() {
    let out = Executor::new(2).try_map(&[0u8], |_, _| -> u8 {
        std::panic::panic_any(42i32);
    });
    assert_eq!(out[0].as_ref().unwrap_err().message, "<non-string panic>");
}

#[test]
fn sequential_batches_are_deterministic_across_thread_counts() {
    // The conformance fuzz driver streams many sequential try_map
    // batches through one executor; the concatenated outcome vector
    // must be independent of both thread count and batch boundary.
    fn campaign(threads: usize, batch: usize) -> Vec<Result<u64, u64>> {
        let exec = Executor::new(threads);
        let mut out = Vec::new();
        let mut next = 0u64;
        while next < 100 {
            let items: Vec<u64> = (next..(next + batch as u64).min(100)).collect();
            let results = exec.try_map(&items, |_, &i| {
                let h = exec::mix_seed(0xCAFE, i);
                if h.is_multiple_of(5) {
                    panic!("mutant {i}");
                }
                h
            });
            // TaskPanic carries the per-batch index; rebase it to the
            // campaign-global item id before comparing across batch sizes.
            out.extend(results.into_iter().map(|r| r.map_err(|e| next + e.index as u64)));
            next += batch as u64;
        }
        out
    }
    let base = campaign(1, 7);
    for (threads, batch) in [(4, 7), (8, 7), (4, 100), (2, 1)] {
        assert_eq!(campaign(threads, batch), base, "threads={threads} batch={batch}");
    }
}

#[test]
fn empty_input_yields_empty_output() {
    let out = Executor::new(4).try_map(&[] as &[u8], |_, &b| b);
    assert!(out.is_empty());
}
